//! Critical/benign fault labelling.
//!
//! The paper (Section III) calls a fault *critical* if it alters the top-1
//! prediction for at least one sample of the available dataset, and
//! *benign* otherwise. This labelling requires a full fault-simulation
//! campaign over the dataset — the step the paper's Table II reports as
//! taking days on an A100 at paper scale, and the very cost the proposed
//! test-generation algorithm avoids during optimization.

use crate::{parallel, sim::faulty_output, Fault, FaultSimConfig, FaultUniverse, Injection};
use serde::{Deserialize, Serialize};
use snn_model::{Network, RecordOptions, Trace};
use snn_tensor::Tensor;
use std::time::Duration;

/// Configuration for the criticality campaign.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CriticalityConfig {
    /// Worker threads (0 = all cores).
    pub threads: usize,
    /// Cap on the number of dataset samples examined per fault (`None`
    /// uses the whole set). A fault is labelled with respect to the capped
    /// set, mirroring how the paper's labelling depends on the available
    /// dataset.
    pub max_samples: Option<usize>,
}

/// Result of the labelling campaign.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CriticalityReport {
    /// `critical[i]` labels `faults[i]` as critical.
    pub critical: Vec<bool>,
    /// Wall-clock duration of the campaign.
    pub elapsed: Duration,
}

impl CriticalityReport {
    /// Number of critical faults.
    pub fn critical_count(&self) -> usize {
        self.critical.iter().filter(|&&c| c).count()
    }

    /// Number of benign faults.
    pub fn benign_count(&self) -> usize {
        self.critical.len() - self.critical_count()
    }
}

/// Labels every fault critical or benign against `dataset` (inputs only;
/// labels are irrelevant because criticality compares against the
/// fault-free top-1 prediction, not the ground truth).
///
/// Prefix caching and early exit accelerate each (fault, sample) run, and
/// a fault is labelled critical at the first sample whose prediction
/// flips.
///
/// # Panics
///
/// Panics if `dataset` is empty.
///
/// # Example
///
/// ```
/// use rand::SeedableRng;
/// use snn_faults::{criticality, FaultUniverse};
/// use snn_model::{LifParams, NetworkBuilder};
/// use snn_tensor::Shape;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let net = NetworkBuilder::new(4, LifParams::default()).dense(3).build(&mut rng);
/// let u = FaultUniverse::standard(&net);
/// let data = vec![snn_tensor::init::bernoulli(&mut rng, Shape::d2(15, 4), 0.5)];
/// let report = criticality::classify(&net, &u, u.faults(), &data, Default::default());
/// assert_eq!(report.critical.len(), u.len());
/// ```
pub fn classify(
    net: &Network,
    universe: &FaultUniverse,
    faults: &[Fault],
    dataset: &[Tensor],
    cfg: CriticalityConfig,
) -> CriticalityReport {
    assert!(!dataset.is_empty(), "criticality labelling needs at least one sample");
    let start = snn_obs::clock::monotonic();
    let take = cfg.max_samples.unwrap_or(dataset.len()).min(dataset.len());
    let samples = &dataset[..take];

    let baselines: Vec<Trace> =
        samples.iter().map(|s| net.forward(s, RecordOptions::spikes_only())).collect();
    let predictions: Vec<usize> = baselines.iter().map(|b| b.predict()).collect();
    let activity: Vec<crate::sim::ActivitySummary> = samples
        .iter()
        .zip(baselines.iter())
        .map(|(s, b)| crate::sim::ActivitySummary::new(net, s, b))
        .collect();

    let sim_cfg = FaultSimConfig { threads: cfg.threads, ..FaultSimConfig::default() };
    let critical = parallel::map_indexed(
        faults.len(),
        cfg.threads,
        || net.clone(),
        |worker, i| {
            let injection = Injection::for_fault(net, universe, &faults[i])
                // snn-lint: allow(L-PANIC): faults come from the same universe that enumerated them, so they are well-formed
                .expect("universe faults are well-formed");
            // Criticality labelling is outside the detection campaign's
            // phase accounting; the scratch recorder is discarded.
            let mut scratch = snn_obs::phase::LocalPhases::new();
            for (k, ((sample, baseline), &pred)) in
                samples.iter().zip(baselines.iter()).zip(predictions.iter()).enumerate()
            {
                if crate::sim::provably_undetectable(net, &activity[k], &faults[i]) {
                    continue; // no activity change ⇒ same prediction
                }
                let Some(output) =
                    faulty_output(worker, baseline, sample, &injection, sim_cfg, &mut scratch)
                else {
                    continue; // identical output ⇒ same prediction
                };
                if predict_from_output(&output) != pred {
                    return true;
                }
            }
            false
        },
    );

    CriticalityReport { critical, elapsed: snn_obs::clock::monotonic().saturating_sub(start) }
}

/// Fraction of evaluation samples whose top-1 prediction a single fault
/// flips — the *accuracy-delta criticality* shared by the detection path
/// (critical/benign labelling above is `accuracy_delta > 0`) and
/// snn-reliability's per-region criticality ranking.
///
/// `predictions[k]` is the fault-free top-1 of `samples[k]` (typically
/// precomputed once per campaign). An empty evaluation set yields `0.0`,
/// not NaN: with nothing to misclassify, a fault costs no accuracy.
pub fn accuracy_delta(
    net: &Network,
    universe: &FaultUniverse,
    fault: &Fault,
    samples: &[Tensor],
    predictions: &[usize],
) -> f32 {
    assert_eq!(samples.len(), predictions.len(), "one fault-free prediction per sample");
    if samples.is_empty() {
        return 0.0;
    }
    let injection = Injection::for_fault(net, universe, fault)
        // snn-lint: allow(L-PANIC): faults come from the same universe that enumerated them, so they are well-formed
        .expect("universe faults are well-formed");
    let mut worker = net.clone();
    let cfg = FaultSimConfig { threads: 1, ..FaultSimConfig::default() };
    let mut scratch = snn_obs::phase::LocalPhases::new();
    let mut flipped = 0usize;
    for (sample, &pred) in samples.iter().zip(predictions.iter()) {
        let baseline = net.forward(sample, RecordOptions::spikes_only());
        let Some(output) =
            faulty_output(&mut worker, &baseline, sample, &injection, cfg, &mut scratch)
        else {
            continue; // identical output ⇒ same prediction
        };
        if predict_from_output(&output) != pred {
            flipped += 1;
        }
    }
    // snn-lint: allow(L-CAST): sample counts are far below f32's 2^24 exact-integer range
    flipped as f32 / samples.len() as f32
}

/// Top-1 class from final-layer spike trains `[T × classes]`.
fn predict_from_output(output: &Tensor) -> usize {
    let dims = output.shape().dims();
    let (steps, classes) = (dims[0], dims[1]);
    let data = output.as_slice();
    let mut counts = vec![0.0f32; classes];
    for t in 0..steps {
        for (c, v) in counts.iter_mut().zip(data[t * classes..(t + 1) * classes].iter()) {
            *c += v;
        }
    }
    let mut best = 0;
    for (i, &c) in counts.iter().enumerate() {
        if c > counts[best] {
            best = i;
        }
    }
    best
}

#[cfg(test)]
#[allow(clippy::float_cmp)] // tests assert exact accuracy deltas
mod tests {
    use super::*;
    use crate::{FaultKind, FaultSite};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use snn_model::{DenseLayer, Layer, LifParams, NetworkBuilder};
    use snn_tensor::Shape;

    #[test]
    fn dead_output_neuron_of_winning_class_is_critical() {
        // Hand-built net: two outputs, output 1 wins under all-ones input.
        let lif = LifParams { threshold: 0.5, leak: 1.0, refrac_steps: 0 };
        let net = Network::new(
            Shape::d1(1),
            vec![Layer::Dense(DenseLayer::new(
                snn_tensor::Tensor::from_vec(Shape::d2(2, 1), vec![0.3, 0.9]).unwrap(),
                lif,
            ))],
        );
        let u = FaultUniverse::standard(&net);
        let data = vec![snn_tensor::Tensor::full(Shape::d2(10, 1), 1.0)];
        let report = classify(&net, &u, u.faults(), &data, CriticalityConfig::default());

        for (f, &crit) in u.faults().iter().zip(report.critical.iter()) {
            if let (FaultSite::Neuron { index: 1, .. }, FaultKind::NeuronDead) = (f.site, f.kind) {
                assert!(crit, "killing the winning output must flip the top-1");
            }
        }
        assert!(report.critical_count() + report.benign_count() == u.len());
    }

    #[test]
    fn fault_free_clone_labels_match_any_thread_count() {
        let mut rng = StdRng::seed_from_u64(1);
        let net = NetworkBuilder::new(5, LifParams::default()).dense(8).dense(3).build(&mut rng);
        let u = FaultUniverse::standard(&net);
        let data: Vec<_> =
            (0..3).map(|_| snn_tensor::init::bernoulli(&mut rng, Shape::d2(20, 5), 0.5)).collect();
        let a = classify(
            &net,
            &u,
            u.faults(),
            &data,
            CriticalityConfig { threads: 1, max_samples: None },
        );
        let b = classify(
            &net,
            &u,
            u.faults(),
            &data,
            CriticalityConfig { threads: 4, max_samples: None },
        );
        assert_eq!(a.critical, b.critical);
    }

    #[test]
    fn max_samples_caps_the_campaign() {
        let mut rng = StdRng::seed_from_u64(2);
        let net = NetworkBuilder::new(4, LifParams::default()).dense(3).build(&mut rng);
        let u = FaultUniverse::standard(&net);
        let data: Vec<_> =
            (0..5).map(|_| snn_tensor::init::bernoulli(&mut rng, Shape::d2(12, 4), 0.4)).collect();
        // With a cap of 1 sample, criticality is judged on sample 0 only —
        // the result must equal running on just that sample.
        let capped = classify(
            &net,
            &u,
            u.faults(),
            &data,
            CriticalityConfig { threads: 1, max_samples: Some(1) },
        );
        let single = classify(
            &net,
            &u,
            u.faults(),
            &data[..1],
            CriticalityConfig { threads: 1, max_samples: None },
        );
        assert_eq!(capped.critical, single.critical);
    }

    #[test]
    fn accuracy_delta_on_empty_set_is_zero_not_nan() {
        let mut rng = StdRng::seed_from_u64(4);
        let net = NetworkBuilder::new(3, LifParams::default()).dense(2).build(&mut rng);
        let u = FaultUniverse::standard(&net);
        let d = accuracy_delta(&net, &u, &u.faults()[0], &[], &[]);
        assert_eq!(d, 0.0);
        assert!(!d.is_nan());
    }

    #[test]
    fn accuracy_delta_agrees_with_critical_labelling() {
        // classify() says critical ⇔ accuracy_delta > 0 on the same set.
        let mut rng = StdRng::seed_from_u64(5);
        let net = NetworkBuilder::new(4, LifParams::default()).dense(6).dense(3).build(&mut rng);
        let u = FaultUniverse::standard(&net);
        let data: Vec<_> =
            (0..3).map(|_| snn_tensor::init::bernoulli(&mut rng, Shape::d2(15, 4), 0.5)).collect();
        let predictions: Vec<usize> =
            data.iter().map(|s| net.forward(s, RecordOptions::spikes_only()).predict()).collect();
        let report = classify(&net, &u, u.faults(), &data, CriticalityConfig::default());
        for (fault, &crit) in u.faults().iter().zip(report.critical.iter()) {
            let delta = accuracy_delta(&net, &u, fault, &data, &predictions);
            assert!((0.0..=1.0).contains(&delta));
            assert_eq!(delta > 0.0, crit, "fault {}", fault.id);
        }
    }

    #[test]
    fn dead_winning_output_costs_full_accuracy_on_a_single_sample() {
        let lif = LifParams { threshold: 0.5, leak: 1.0, refrac_steps: 0 };
        let net = Network::new(
            Shape::d1(1),
            vec![Layer::Dense(DenseLayer::new(
                snn_tensor::Tensor::from_vec(Shape::d2(2, 1), vec![0.3, 0.9]).unwrap(),
                lif,
            ))],
        );
        let u = FaultUniverse::standard(&net);
        let data = vec![snn_tensor::Tensor::full(Shape::d2(10, 1), 1.0)];
        let predictions = vec![net.forward(&data[0], RecordOptions::spikes_only()).predict()];
        let fault = u
            .faults()
            .iter()
            .find(|f| {
                matches!(
                    (f.site, f.kind),
                    (FaultSite::Neuron { index: 1, .. }, FaultKind::NeuronDead)
                )
            })
            .unwrap();
        assert_eq!(accuracy_delta(&net, &u, fault, &data, &predictions), 1.0);
    }

    #[test]
    #[should_panic(expected = "at least one sample")]
    fn classify_requires_samples() {
        let mut rng = StdRng::seed_from_u64(3);
        let net = NetworkBuilder::new(2, LifParams::default()).dense(2).build(&mut rng);
        let u = FaultUniverse::standard(&net);
        let _ = classify(&net, &u, u.faults(), &[], CriticalityConfig::default());
    }
}
