//! Critical/benign fault labelling.
//!
//! The paper (Section III) calls a fault *critical* if it alters the top-1
//! prediction for at least one sample of the available dataset, and
//! *benign* otherwise. This labelling requires a full fault-simulation
//! campaign over the dataset — the step the paper's Table II reports as
//! taking days on an A100 at paper scale, and the very cost the proposed
//! test-generation algorithm avoids during optimization.

use crate::{parallel, sim::faulty_output, Fault, FaultSimConfig, FaultUniverse, Injection};
use serde::{Deserialize, Serialize};
use snn_model::{Network, RecordOptions, Trace};
use snn_tensor::Tensor;
use std::time::Duration;

/// Configuration for the criticality campaign.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CriticalityConfig {
    /// Worker threads (0 = all cores).
    pub threads: usize,
    /// Cap on the number of dataset samples examined per fault (`None`
    /// uses the whole set). A fault is labelled with respect to the capped
    /// set, mirroring how the paper's labelling depends on the available
    /// dataset.
    pub max_samples: Option<usize>,
}

/// Result of the labelling campaign.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CriticalityReport {
    /// `critical[i]` labels `faults[i]` as critical.
    pub critical: Vec<bool>,
    /// Wall-clock duration of the campaign.
    pub elapsed: Duration,
}

impl CriticalityReport {
    /// Number of critical faults.
    pub fn critical_count(&self) -> usize {
        self.critical.iter().filter(|&&c| c).count()
    }

    /// Number of benign faults.
    pub fn benign_count(&self) -> usize {
        self.critical.len() - self.critical_count()
    }
}

/// Labels every fault critical or benign against `dataset` (inputs only;
/// labels are irrelevant because criticality compares against the
/// fault-free top-1 prediction, not the ground truth).
///
/// Prefix caching and early exit accelerate each (fault, sample) run, and
/// a fault is labelled critical at the first sample whose prediction
/// flips.
///
/// # Panics
///
/// Panics if `dataset` is empty.
///
/// # Example
///
/// ```
/// use rand::SeedableRng;
/// use snn_faults::{criticality, FaultUniverse};
/// use snn_model::{LifParams, NetworkBuilder};
/// use snn_tensor::Shape;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let net = NetworkBuilder::new(4, LifParams::default()).dense(3).build(&mut rng);
/// let u = FaultUniverse::standard(&net);
/// let data = vec![snn_tensor::init::bernoulli(&mut rng, Shape::d2(15, 4), 0.5)];
/// let report = criticality::classify(&net, &u, u.faults(), &data, Default::default());
/// assert_eq!(report.critical.len(), u.len());
/// ```
pub fn classify(
    net: &Network,
    universe: &FaultUniverse,
    faults: &[Fault],
    dataset: &[Tensor],
    cfg: CriticalityConfig,
) -> CriticalityReport {
    assert!(!dataset.is_empty(), "criticality labelling needs at least one sample");
    let start = snn_obs::clock::monotonic();
    let take = cfg.max_samples.unwrap_or(dataset.len()).min(dataset.len());
    let samples = &dataset[..take];

    let baselines: Vec<Trace> =
        samples.iter().map(|s| net.forward(s, RecordOptions::spikes_only())).collect();
    let predictions: Vec<usize> = baselines.iter().map(|b| b.predict()).collect();
    let activity: Vec<crate::sim::ActivitySummary> = samples
        .iter()
        .zip(baselines.iter())
        .map(|(s, b)| crate::sim::ActivitySummary::new(net, s, b))
        .collect();

    let sim_cfg = FaultSimConfig { threads: cfg.threads, ..FaultSimConfig::default() };
    let critical = parallel::map_indexed(
        faults.len(),
        cfg.threads,
        || net.clone(),
        |worker, i| {
            let injection = Injection::for_fault(net, universe, &faults[i])
                // snn-lint: allow(L-PANIC): faults come from the same universe that enumerated them, so they are well-formed
                .expect("universe faults are well-formed");
            for (k, ((sample, baseline), &pred)) in
                samples.iter().zip(baselines.iter()).zip(predictions.iter()).enumerate()
            {
                if crate::sim::provably_undetectable(net, &activity[k], &faults[i]) {
                    continue; // no activity change ⇒ same prediction
                }
                let Some(output) = faulty_output(worker, baseline, sample, &injection, sim_cfg)
                else {
                    continue; // identical output ⇒ same prediction
                };
                if predict_from_output(&output) != pred {
                    return true;
                }
            }
            false
        },
    );

    CriticalityReport { critical, elapsed: snn_obs::clock::monotonic().saturating_sub(start) }
}

/// Top-1 class from final-layer spike trains `[T × classes]`.
fn predict_from_output(output: &Tensor) -> usize {
    let dims = output.shape().dims();
    let (steps, classes) = (dims[0], dims[1]);
    let data = output.as_slice();
    let mut counts = vec![0.0f32; classes];
    for t in 0..steps {
        for (c, v) in counts.iter_mut().zip(data[t * classes..(t + 1) * classes].iter()) {
            *c += v;
        }
    }
    let mut best = 0;
    for (i, &c) in counts.iter().enumerate() {
        if c > counts[best] {
            best = i;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FaultKind, FaultSite};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use snn_model::{DenseLayer, Layer, LifParams, NetworkBuilder};
    use snn_tensor::Shape;

    #[test]
    fn dead_output_neuron_of_winning_class_is_critical() {
        // Hand-built net: two outputs, output 1 wins under all-ones input.
        let lif = LifParams { threshold: 0.5, leak: 1.0, refrac_steps: 0 };
        let net = Network::new(
            Shape::d1(1),
            vec![Layer::Dense(DenseLayer::new(
                snn_tensor::Tensor::from_vec(Shape::d2(2, 1), vec![0.3, 0.9]).unwrap(),
                lif,
            ))],
        );
        let u = FaultUniverse::standard(&net);
        let data = vec![snn_tensor::Tensor::full(Shape::d2(10, 1), 1.0)];
        let report = classify(&net, &u, u.faults(), &data, CriticalityConfig::default());

        for (f, &crit) in u.faults().iter().zip(report.critical.iter()) {
            if let (FaultSite::Neuron { index: 1, .. }, FaultKind::NeuronDead) = (f.site, f.kind) {
                assert!(crit, "killing the winning output must flip the top-1");
            }
        }
        assert!(report.critical_count() + report.benign_count() == u.len());
    }

    #[test]
    fn fault_free_clone_labels_match_any_thread_count() {
        let mut rng = StdRng::seed_from_u64(1);
        let net = NetworkBuilder::new(5, LifParams::default()).dense(8).dense(3).build(&mut rng);
        let u = FaultUniverse::standard(&net);
        let data: Vec<_> =
            (0..3).map(|_| snn_tensor::init::bernoulli(&mut rng, Shape::d2(20, 5), 0.5)).collect();
        let a = classify(
            &net,
            &u,
            u.faults(),
            &data,
            CriticalityConfig { threads: 1, max_samples: None },
        );
        let b = classify(
            &net,
            &u,
            u.faults(),
            &data,
            CriticalityConfig { threads: 4, max_samples: None },
        );
        assert_eq!(a.critical, b.critical);
    }

    #[test]
    fn max_samples_caps_the_campaign() {
        let mut rng = StdRng::seed_from_u64(2);
        let net = NetworkBuilder::new(4, LifParams::default()).dense(3).build(&mut rng);
        let u = FaultUniverse::standard(&net);
        let data: Vec<_> =
            (0..5).map(|_| snn_tensor::init::bernoulli(&mut rng, Shape::d2(12, 4), 0.4)).collect();
        // With a cap of 1 sample, criticality is judged on sample 0 only —
        // the result must equal running on just that sample.
        let capped = classify(
            &net,
            &u,
            u.faults(),
            &data,
            CriticalityConfig { threads: 1, max_samples: Some(1) },
        );
        let single = classify(
            &net,
            &u,
            u.faults(),
            &data[..1],
            CriticalityConfig { threads: 1, max_samples: None },
        );
        assert_eq!(capped.critical, single.critical);
    }

    #[test]
    #[should_panic(expected = "at least one sample")]
    fn classify_requires_samples() {
        let mut rng = StdRng::seed_from_u64(3);
        let net = NetworkBuilder::new(2, LifParams::default()).dense(2).build(&mut rng);
        let u = FaultUniverse::standard(&net);
        let _ = classify(&net, &u, u.faults(), &[], CriticalityConfig::default());
    }
}
