//! Fault dictionaries: from detection to **diagnosis**.
//!
//! A detection campaign answers "is the device faulty?"; production flows
//! also want "*which* fault is it?" so failing parts can be binned, and
//! in-field systems can remap around the damaged resource. A fault
//! dictionary stores, for every detected fault, the output *signature*
//! the optimized test elicits (per-class spike-count difference vector —
//! the same data behind the paper's Fig. 9). Diagnosis then looks up an
//! observed signature and returns the candidate faults ranked by
//! signature distance.

use crate::{CampaignOutcome, Fault};
use serde::{Deserialize, Serialize};

/// A diagnosis candidate: fault id plus its signature distance to the
/// observation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Diagnosis {
    /// Fault id in the originating universe.
    pub fault_id: usize,
    /// L1 distance between the observed and stored signatures.
    pub distance: f32,
}

/// Signature dictionary built from a campaign run with
/// [`FaultSimConfig::record_class_diffs`](crate::FaultSimConfig) enabled.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultDictionary {
    entries: Vec<(usize, Vec<f32>)>,
    classes: usize,
}

impl FaultDictionary {
    /// Builds the dictionary from campaign outcomes. Only detected faults
    /// with recorded signatures are included.
    ///
    /// # Panics
    ///
    /// Panics if the campaign was run without class-difference recording
    /// (no detected fault carries a signature) while detections exist.
    pub fn from_campaign(faults: &[Fault], campaign: &CampaignOutcome) -> Self {
        let mut entries = Vec::new();
        let mut classes = 0usize;
        let mut detected_without_sig = 0usize;
        for (f, o) in faults.iter().zip(campaign.per_fault.iter()) {
            if !o.detected {
                continue;
            }
            match &o.class_diff {
                Some(sig) => {
                    classes = sig.len();
                    entries.push((f.id, sig.clone()));
                }
                None => detected_without_sig += 1,
            }
        }
        assert!(
            entries.len() + detected_without_sig == 0 || !entries.is_empty(),
            "campaign lacks signatures; run with record_class_diffs = true"
        );
        Self { entries, classes }
    }

    /// Number of distinguishable entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` if the dictionary has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Fraction of dictionary faults whose signature is unique — the
    /// *diagnostic resolution* of the test (1.0 = every detected fault is
    /// fully locatable from its signature alone).
    pub fn resolution(&self) -> f64 {
        if self.entries.is_empty() {
            return 0.0;
        }
        let mut unique = 0usize;
        for (i, (_, sig)) in self.entries.iter().enumerate() {
            let clash =
                self.entries.iter().enumerate().any(|(j, (_, other))| i != j && sig == other);
            if !clash {
                unique += 1;
            }
        }
        unique as f64 / self.entries.len() as f64
    }

    /// Ranks dictionary faults by L1 distance to the observed per-class
    /// spike-count difference, returning the best `top_k`.
    ///
    /// # Panics
    ///
    /// Panics if `observed.len()` mismatches the dictionary's class count.
    pub fn diagnose(&self, observed: &[f32], top_k: usize) -> Vec<Diagnosis> {
        assert!(
            self.is_empty() || observed.len() == self.classes,
            "observed signature has {} classes, dictionary has {}",
            observed.len(),
            self.classes
        );
        let mut ranked: Vec<Diagnosis> = self
            .entries
            .iter()
            .map(|(id, sig)| Diagnosis {
                fault_id: *id,
                distance: sig.iter().zip(observed.iter()).map(|(a, b)| (a - b).abs()).sum(),
            })
            .collect();
        // snn-lint: allow(L-PANIC): distances are sums of |finite − finite| signature entries, so partial_cmp cannot return None
        ranked.sort_by(|a, b| a.distance.partial_cmp(&b.distance).expect("finite distances"));
        ranked.truncate(top_k);
        ranked
    }
}

#[cfg(test)]
#[allow(clippy::float_cmp)] // tests assert exact spike/gradient values
mod tests {
    use super::*;
    use crate::{FaultSimConfig, FaultSimulator, FaultUniverse};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use snn_model::{LifParams, NetworkBuilder};
    use snn_tensor::Shape;

    fn campaign() -> (FaultUniverse, CampaignOutcome) {
        let mut rng = StdRng::seed_from_u64(8);
        let net = NetworkBuilder::new(5, LifParams { refrac_steps: 1, ..LifParams::default() })
            .dense(8)
            .dense(3)
            .build(&mut rng);
        let u = FaultUniverse::standard(&net);
        let test = snn_tensor::init::bernoulli(&mut rng, Shape::d2(30, 5), 0.5);
        let sim = FaultSimulator::new(
            &net,
            FaultSimConfig { record_class_diffs: true, threads: 1, ..FaultSimConfig::default() },
        );
        let out = sim.detect(&u, u.faults(), std::slice::from_ref(&test));
        (u, out)
    }

    #[test]
    fn dictionary_contains_exactly_the_detected_faults() {
        let (u, out) = campaign();
        let dict = FaultDictionary::from_campaign(u.faults(), &out);
        assert_eq!(dict.len(), out.detected_count());
        assert!(!dict.is_empty());
    }

    #[test]
    fn self_diagnosis_ranks_the_true_fault_first() {
        let (u, out) = campaign();
        let dict = FaultDictionary::from_campaign(u.faults(), &out);
        // Feeding a stored signature back must return its own fault at
        // distance 0 (possibly tied with signature-equivalent faults).
        let (some_id, sig) = out
            .per_fault
            .iter()
            .find_map(|o| o.class_diff.as_ref().map(|s| (o.fault_id, s.clone())))
            .expect("campaign detected something");
        let top = dict.diagnose(&sig, 5);
        assert_eq!(top[0].distance, 0.0);
        assert!(
            top.iter().any(|d| d.fault_id == some_id && d.distance == 0.0),
            "true fault missing from the zero-distance candidates"
        );
    }

    #[test]
    fn resolution_is_a_valid_fraction() {
        let (u, out) = campaign();
        let dict = FaultDictionary::from_campaign(u.faults(), &out);
        let r = dict.resolution();
        assert!((0.0..=1.0).contains(&r));
    }

    #[test]
    fn diagnose_truncates_to_top_k() {
        let (u, out) = campaign();
        let dict = FaultDictionary::from_campaign(u.faults(), &out);
        let sig = vec![0.0; 3];
        assert_eq!(dict.diagnose(&sig, 3).len(), 3.min(dict.len()));
        // Distances must be sorted ascending.
        let all = dict.diagnose(&sig, dict.len());
        for w in all.windows(2) {
            assert!(w[0].distance <= w[1].distance);
        }
    }

    #[test]
    #[should_panic(expected = "record_class_diffs")]
    fn rejects_signatureless_campaigns() {
        let mut rng = StdRng::seed_from_u64(9);
        let net = NetworkBuilder::new(4, LifParams::default()).dense(2).build(&mut rng);
        let u = FaultUniverse::standard(&net);
        let test = snn_tensor::init::bernoulli(&mut rng, Shape::d2(25, 4), 0.6);
        let sim =
            FaultSimulator::new(&net, FaultSimConfig { threads: 1, ..FaultSimConfig::default() });
        let out = sim.detect(&u, u.faults(), std::slice::from_ref(&test));
        let _ = FaultDictionary::from_campaign(u.faults(), &out);
    }
}
