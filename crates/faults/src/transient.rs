//! Transient fault injection: faults active only inside a timestep window.
//!
//! Permanent faults (the paper's Section III model) corrupt the network
//! for an entire forward pass. Soft errors in accelerator memories —
//! the SoftSNN/ReSpawn reliability setting — are *transient*: a bit is
//! wrong for some interval and then scrubbed or overwritten. This module
//! models that as a half-open window `[start, end)` of global timesteps
//! during which a set of weight patches and behavioural neuron faults is
//! live, and simulates the pass in up to three segments (clean prefix,
//! faulty window, clean suffix) over the resumable
//! [`snn_model::LayerState`] path, so the stitched run is bit-identical
//! to an unsegmented run of the same per-tick fault schedule.
//!
//! Semantics worth pinning down: membrane potentials and refractory
//! counters carry *across* the window boundaries (a transient fault's
//! damage persists in analog state after the fault clears), and forced
//! dead/saturated neurons freeze their carried potential for the window's
//! duration, exactly as the simulator's permanent forced branches do.

use serde::{Deserialize, Serialize};
use snn_model::{LayerState, Network, NeuronFaultMap, RecordOptions, Trace, WeightRef};
use snn_tensor::{Shape, Tensor};

/// Half-open window `[start, end)` of global timesteps during which a
/// transient fault is live.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TransientWindow {
    /// First faulty timestep (inclusive).
    pub start: usize,
    /// First timestep after the fault clears (exclusive).
    pub end: usize,
}

impl TransientWindow {
    /// Creates the window `[start, end)`.
    pub fn new(start: usize, end: usize) -> Self {
        Self { start, end }
    }

    /// The window intersected with a run of `steps` ticks.
    pub fn clamped(&self, steps: usize) -> Self {
        let start = self.start.min(steps);
        Self { start, end: self.end.clamp(start, steps) }
    }

    /// `true` if the window covers no timestep.
    pub fn is_empty(&self) -> bool {
        self.end <= self.start
    }
}

/// One time segment of a windowed run: its global tick range and whether
/// the fault set is live during it.
#[derive(Debug, Clone, Copy)]
struct Segment {
    start: usize,
    end: usize,
    faulty: bool,
}

/// Forward pass with a fault configuration active either permanently
/// (`window == None`) or only inside `window`.
///
/// `patches` are weight overwrites and `neuron_faults` behavioural
/// overrides, both applied together while the fault is live. The network
/// is used as mutable scratch for weight patching and is restored to its
/// original weights before returning.
///
/// # Panics
///
/// Panics if `input` is not rank-2 or a patch address is out of range.
pub fn windowed_forward(
    net: &mut Network,
    input: &Tensor,
    patches: &[(WeightRef, f32)],
    neuron_faults: &NeuronFaultMap,
    window: Option<TransientWindow>,
    record: RecordOptions,
) -> Trace {
    let steps = input.shape().dim(0);
    let window = window.map(|w| w.clamped(steps));
    match window {
        None => {
            let saved = apply_patches(net, patches);
            let trace = net.forward_faulty(input, record, neuron_faults);
            restore_patches(net, &saved);
            trace
        }
        Some(w) if w.is_empty() => net.forward(input, record),
        Some(w) => {
            let segments = [
                Segment { start: 0, end: w.start, faulty: false },
                Segment { start: w.start, end: w.end, faulty: true },
                Segment { start: w.end, end: steps, faulty: false },
            ];
            run_segments(net, input, patches, neuron_faults, &segments, record)
        }
    }
}

fn run_segments(
    net: &mut Network,
    input: &Tensor,
    patches: &[(WeightRef, f32)],
    neuron_faults: &NeuronFaultMap,
    segments: &[Segment],
    record: RecordOptions,
) -> Trace {
    let dims = input.shape().dims();
    assert_eq!(dims.len(), 2, "input must be [T × features]");
    let (steps, features) = (dims[0], dims[1]);
    let n_layers = net.layers().len();
    let empty = NeuronFaultMap::new();

    let mut states: Vec<LayerState> = vec![LayerState::default(); n_layers];
    let mut outputs: Vec<Vec<f32>> = vec![Vec::new(); n_layers];
    let mut potentials: Vec<Vec<f32>> = vec![Vec::new(); n_layers];
    let mut gates: Vec<Vec<f32>> = vec![Vec::new(); n_layers];
    let mut widths: Vec<usize> = vec![0; n_layers];

    let in_data = input.as_slice();
    for seg in segments.iter().filter(|s| s.end > s.start) {
        let seg_len = seg.end - seg.start;
        let seg_input = Tensor::from_vec(
            Shape::d2(seg_len, features),
            in_data[seg.start * features..seg.end * features].to_vec(),
        )
        // snn-lint: allow(L-PANIC): shape and data length agree by construction
        .expect("segment rows match the declared shape");
        let faults = if seg.faulty { neuron_faults } else { &empty };
        let saved = if seg.faulty { apply_patches(net, patches) } else { Vec::new() };

        let mut current = seg_input;
        for (idx, state) in states.iter_mut().enumerate() {
            let trace = net.forward_layer_segment(idx, &current, seg.start, record, faults, state);
            widths[idx] = trace.output.shape().dim(1);
            outputs[idx].extend_from_slice(trace.output.as_slice());
            if let Some(p) = &trace.potential {
                potentials[idx].extend_from_slice(p.as_slice());
            }
            if let Some(g) = &trace.gate {
                gates[idx].extend_from_slice(g.as_slice());
            }
            current = trace.output;
        }

        if seg.faulty {
            restore_patches(net, &saved);
        }
    }

    let layers = (0..n_layers)
        .map(|idx| {
            let n = widths[idx];
            let to_tensor = |data: &Vec<f32>| {
                (!data.is_empty()).then(|| {
                    Tensor::from_vec(Shape::d2(steps, n), data.clone())
                        // snn-lint: allow(L-PANIC): segments partition the run, so rows sum to `steps`
                        .expect("stitched rows cover the full run")
                })
            };
            snn_model::LayerTrace {
                // snn-lint: allow(L-PANIC): every layer emits output rows for every segment
                output: to_tensor(&outputs[idx]).expect("layer output recorded"),
                potential: to_tensor(&potentials[idx]),
                gate: to_tensor(&gates[idx]),
            }
        })
        .collect();
    Trace { steps, layers }
}

/// Applies weight patches, returning the displaced values for restore.
fn apply_patches(net: &mut Network, patches: &[(WeightRef, f32)]) -> Vec<(WeightRef, f32)> {
    patches.iter().map(|&(at, v)| (at, net.set_weight(at, v))).collect()
}

/// Undoes [`apply_patches`] (iterated in reverse so overlapping patches
/// restore the original value).
fn restore_patches(net: &mut Network, saved: &[(WeightRef, f32)]) {
    for &(at, old) in saved.iter().rev() {
        net.set_weight(at, old);
    }
}

#[cfg(test)]
#[allow(clippy::float_cmp)] // tests assert exact spike values
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use snn_model::{LifParams, NetworkBuilder, NeuronBehaviorFault};

    fn net_and_input(seed: u64) -> (Network, Tensor) {
        let mut rng = StdRng::seed_from_u64(seed);
        let net = NetworkBuilder::new(4, LifParams::default()).dense(6).dense(3).build(&mut rng);
        let input = snn_tensor::init::bernoulli(&mut rng, Shape::d2(12, 4), 0.5);
        (net, input)
    }

    #[test]
    fn permanent_path_matches_forward_faulty() {
        let (mut net, input) = net_and_input(0);
        let faults = NeuronFaultMap::single(0, 2, NeuronBehaviorFault::Dead);
        let expected = net.forward_faulty(&input, RecordOptions::spikes_only(), &faults);
        let got =
            windowed_forward(&mut net, &input, &[], &faults, None, RecordOptions::spikes_only());
        assert_eq!(got, expected);
    }

    #[test]
    fn full_span_window_matches_permanent_fault() {
        let (mut net, input) = net_and_input(1);
        let steps = input.shape().dim(0);
        let faults = NeuronFaultMap::single(1, 0, NeuronBehaviorFault::Saturated);
        let permanent =
            windowed_forward(&mut net, &input, &[], &faults, None, RecordOptions::spikes_only());
        let windowed = windowed_forward(
            &mut net,
            &input,
            &[],
            &faults,
            Some(TransientWindow::new(0, steps)),
            RecordOptions::spikes_only(),
        );
        assert_eq!(windowed.output(), permanent.output());
    }

    #[test]
    fn empty_window_matches_fault_free() {
        let (mut net, input) = net_and_input(2);
        let clean = net.forward(&input, RecordOptions::spikes_only());
        let faults = NeuronFaultMap::single(0, 0, NeuronBehaviorFault::Saturated);
        let got = windowed_forward(
            &mut net,
            &input,
            &[],
            &faults,
            Some(TransientWindow::new(5, 5)),
            RecordOptions::spikes_only(),
        );
        assert_eq!(got, clean);
    }

    #[test]
    fn window_restricts_saturation_to_its_ticks() {
        // Saturated output neuron with zero input: spikes exactly inside
        // the window, nowhere else.
        let mut rng = StdRng::seed_from_u64(3);
        let mut net = NetworkBuilder::new(2, LifParams::default()).dense(2).build(&mut rng);
        let input = Tensor::zeros(Shape::d2(10, 2));
        let faults = NeuronFaultMap::single(0, 1, NeuronBehaviorFault::Saturated);
        let trace = windowed_forward(
            &mut net,
            &input,
            &[],
            &faults,
            Some(TransientWindow::new(3, 7)),
            RecordOptions::spikes_only(),
        );
        let counts = trace.layers[0].spike_counts();
        assert_eq!(counts, vec![0.0, 4.0]);
        let out = trace.output().as_slice();
        for t in 0..10 {
            let expect = if (3..7).contains(&t) { 1.0 } else { 0.0 };
            assert_eq!(out[t * 2 + 1], expect, "tick {t}");
        }
    }

    #[test]
    fn weights_are_restored_after_windowed_patching() {
        let (mut net, input) = net_and_input(4);
        let at = WeightRef { layer: 0, tensor: 0, offset: 3 };
        let before = net.weight(at);
        let _ = windowed_forward(
            &mut net,
            &input,
            &[(at, 123.0)],
            &NeuronFaultMap::new(),
            Some(TransientWindow::new(2, 9)),
            RecordOptions::spikes_only(),
        );
        assert_eq!(net.weight(at), before);
        let _ = windowed_forward(
            &mut net,
            &input,
            &[(at, 123.0)],
            &NeuronFaultMap::new(),
            None,
            RecordOptions::spikes_only(),
        );
        assert_eq!(net.weight(at), before);
    }

    #[test]
    fn out_of_range_window_is_fault_free() {
        let (mut net, input) = net_and_input(5);
        let clean = net.forward(&input, RecordOptions::spikes_only());
        let faults = NeuronFaultMap::single(0, 0, NeuronBehaviorFault::Dead);
        let got = windowed_forward(
            &mut net,
            &input,
            &[],
            &faults,
            Some(TransientWindow::new(50, 80)),
            RecordOptions::spikes_only(),
        );
        assert_eq!(got, clean);
    }

    #[test]
    fn windowed_weight_patch_only_perturbs_window_ticks_upstream() {
        // A weight patched inside [t0, t1) cannot change layer-0 drive
        // outside the window; carried membrane state may differ after, so
        // compare the prefix strictly.
        let (mut net, input) = net_and_input(6);
        let clean = net.forward(&input, RecordOptions::spikes_only());
        let at = WeightRef { layer: 0, tensor: 0, offset: 0 };
        let trace = windowed_forward(
            &mut net,
            &input,
            &[(at, 5.0)],
            &NeuronFaultMap::new(),
            Some(TransientWindow::new(6, 9)),
            RecordOptions::spikes_only(),
        );
        let n = clean.layers[0].output.shape().dim(1);
        let clean_rows = &clean.layers[0].output.as_slice()[..6 * n];
        let faulty_rows = &trace.layers[0].output.as_slice()[..6 * n];
        assert_eq!(faulty_rows, clean_rows);
    }
}
