use crate::{parallel, Fault, FaultOutcome, FaultUniverse, Injection};
use serde::{Deserialize, Serialize};
use snn_model::{Network, RecordOptions};
use snn_tensor::Tensor;

/// Detected/total accounting for one fault class.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClassCoverage {
    /// Faults of this class detected by the test.
    pub detected: usize,
    /// Faults of this class in the campaign.
    pub total: usize,
}

impl ClassCoverage {
    /// Fault coverage in `[0, 1]`; defined as 1 for an empty class so that
    /// "nothing to detect" reads as full coverage in reports.
    pub fn fc(&self) -> f64 {
        if self.total == 0 {
            1.0
        } else {
            self.detected as f64 / self.total as f64
        }
    }

    /// Fault coverage as a percentage.
    pub fn percent(&self) -> f64 {
        self.fc() * 100.0
    }
}

impl std::fmt::Display for ClassCoverage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/{} ({:.2}%)", self.detected, self.total, self.percent())
    }
}

/// Fault coverage split the way the paper's Table III reports it:
/// critical/benign × neuron/synapse.
///
/// # Example
///
/// ```
/// use snn_faults::CoverageReport;
///
/// let r = CoverageReport::default();
/// assert_eq!(r.critical_neuron.fc(), 1.0); // empty classes read as covered
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CoverageReport {
    /// Coverage of critical neuron faults.
    pub critical_neuron: ClassCoverage,
    /// Coverage of benign neuron faults.
    pub benign_neuron: ClassCoverage,
    /// Coverage of critical synapse faults.
    pub critical_synapse: ClassCoverage,
    /// Coverage of benign synapse faults.
    pub benign_synapse: ClassCoverage,
}

impl CoverageReport {
    /// Builds the report from a fault list, its criticality labels, and
    /// the detection outcomes of a campaign.
    ///
    /// # Panics
    ///
    /// Panics if the three slices have different lengths or are misaligned
    /// by fault id.
    pub fn compute(faults: &[Fault], critical: &[bool], outcomes: &[FaultOutcome]) -> Self {
        assert_eq!(faults.len(), critical.len(), "labels/faults length mismatch");
        assert_eq!(faults.len(), outcomes.len(), "outcomes/faults length mismatch");
        let mut report = CoverageReport::default();
        for ((f, &crit), o) in faults.iter().zip(critical.iter()).zip(outcomes.iter()) {
            assert_eq!(f.id, o.fault_id, "outcome order must match fault order");
            let slot = match (f.kind.is_neuron(), crit) {
                (true, true) => &mut report.critical_neuron,
                (true, false) => &mut report.benign_neuron,
                (false, true) => &mut report.critical_synapse,
                (false, false) => &mut report.benign_synapse,
            };
            slot.total += 1;
            if o.detected {
                slot.detected += 1;
            }
        }
        report
    }

    /// Overall coverage across all four classes.
    pub fn overall(&self) -> ClassCoverage {
        ClassCoverage {
            detected: self.critical_neuron.detected
                + self.benign_neuron.detected
                + self.critical_synapse.detected
                + self.benign_synapse.detected,
            total: self.critical_neuron.total
                + self.benign_neuron.total
                + self.critical_synapse.total
                + self.benign_synapse.total,
        }
    }
}

/// Worst-case consequence of a *test escape*: over the given undetected
/// critical faults, the maximum drop in top-1 accuracy on `dataset`
/// relative to the fault-free network — the paper's Table III last row.
///
/// Returns `(max_drop, fault_id_of_worst)` or `None` when `escapes` is
/// empty (perfect coverage).
///
/// # Panics
///
/// Panics if `dataset` is empty.
pub fn escape_max_accuracy_drop(
    net: &Network,
    universe: &FaultUniverse,
    escapes: &[Fault],
    dataset: &[(Tensor, usize)],
    threads: usize,
) -> Option<(f64, usize)> {
    assert!(!dataset.is_empty(), "escape analysis needs a dataset");
    if escapes.is_empty() {
        return None;
    }
    let baseline_acc = accuracy(net, dataset);
    let drops = parallel::map_indexed(
        escapes.len(),
        threads,
        || net.clone(),
        |worker, i| {
            let injection = Injection::for_fault(net, universe, &escapes[i])
                // snn-lint: allow(L-PANIC): escapes come from the same universe that enumerated them, so they are well-formed
                .expect("universe faults are well-formed");
            let restore = match &injection {
                Injection::Weight { at, value } => Some((*at, worker.set_weight(*at, *value))),
                Injection::Neuron(_) => None,
            };
            let acc = match &injection {
                Injection::Weight { .. } => accuracy(worker, dataset),
                Injection::Neuron(map) => {
                    dataset
                        .iter()
                        .filter(|(input, label)| {
                            worker
                                .forward_faulty(input, RecordOptions::spikes_only(), map)
                                .predict()
                                == *label
                        })
                        .count() as f64
                        / dataset.len() as f64
                }
            };
            if let Some((at, old)) = restore {
                worker.set_weight(at, old);
            }
            baseline_acc - acc
        },
    );
    drops
        .into_iter()
        .enumerate()
        .map(|(i, d)| (d, escapes[i].id))
        // snn-lint: allow(L-PANIC): accuracy is a ratio of finite counts, so partial_cmp cannot return None
        .max_by(|a, b| a.0.partial_cmp(&b.0).expect("accuracy drops are finite"))
}

fn accuracy(net: &Network, dataset: &[(Tensor, usize)]) -> f64 {
    dataset
        .iter()
        .filter(|(input, label)| {
            net.forward(input, RecordOptions::spikes_only()).predict() == *label
        })
        .count() as f64
        / dataset.len() as f64
}

#[cfg(test)]
#[allow(clippy::float_cmp)] // tests assert exact spike/gradient values
mod tests {
    use super::*;
    use crate::{FaultKind, FaultSimConfig, FaultSimulator, FaultUniverse};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use snn_model::{LifParams, NetworkBuilder};
    use snn_tensor::Shape;

    #[test]
    fn class_coverage_math() {
        let c = ClassCoverage { detected: 3, total: 4 };
        assert!((c.fc() - 0.75).abs() < 1e-12);
        assert_eq!(format!("{c}"), "3/4 (75.00%)");
        assert_eq!(ClassCoverage::default().fc(), 1.0);
    }

    #[test]
    fn compute_partitions_faults_into_four_classes() {
        let mut rng = StdRng::seed_from_u64(0);
        let net = NetworkBuilder::new(4, LifParams::default()).dense(5).dense(2).build(&mut rng);
        let u = FaultUniverse::standard(&net);
        let test = snn_tensor::init::bernoulli(&mut rng, Shape::d2(25, 4), 0.5);
        let sim = FaultSimulator::new(&net, FaultSimConfig::default());
        let campaign = sim.detect(&u, u.faults(), std::slice::from_ref(&test));
        // Alternate labels deterministically.
        let critical: Vec<bool> = u.faults().iter().map(|f| f.id % 2 == 0).collect();
        let report = CoverageReport::compute(u.faults(), &critical, &campaign.per_fault);
        assert_eq!(report.overall().total, u.len());
        assert_eq!(
            report.critical_neuron.total + report.benign_neuron.total,
            u.neuron_fault_count()
        );
        assert_eq!(
            report.critical_synapse.total + report.benign_synapse.total,
            u.synapse_fault_count()
        );
        assert_eq!(report.overall().detected, campaign.detected_count());
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn compute_rejects_misaligned_inputs() {
        let mut rng = StdRng::seed_from_u64(0);
        let net = NetworkBuilder::new(2, LifParams::default()).dense(2).build(&mut rng);
        let u = FaultUniverse::standard(&net);
        let _ = CoverageReport::compute(u.faults(), &[true], &[]);
    }

    #[test]
    fn escape_analysis_reports_nonnegative_drop_for_harmful_fault() {
        // Train-free hand net where output 1 wins; killing it drops accuracy.
        let lif = LifParams { threshold: 0.5, leak: 1.0, refrac_steps: 0 };
        let net = Network::new(
            Shape::d1(1),
            vec![snn_model::Layer::Dense(snn_model::DenseLayer::new(
                Tensor::from_vec(Shape::d2(2, 1), vec![0.3, 0.9]).unwrap(),
                lif,
            ))],
        );
        let u = FaultUniverse::standard(&net);
        let dead_out1 = u
            .faults()
            .iter()
            .copied()
            .find(|f| {
                f.kind == FaultKind::NeuronDead
                    && matches!(f.site, crate::FaultSite::Neuron { index: 1, .. })
            })
            .unwrap();
        let dataset = vec![(Tensor::full(Shape::d2(10, 1), 1.0), 1usize)];
        let (drop, id) = escape_max_accuracy_drop(&net, &u, &[dead_out1], &dataset, 1).unwrap();
        assert_eq!(id, dead_out1.id);
        assert!(drop > 0.0, "killing the winning class must cost accuracy");
    }

    #[test]
    fn no_escapes_means_no_drop() {
        let mut rng = StdRng::seed_from_u64(1);
        let net = NetworkBuilder::new(2, LifParams::default()).dense(2).build(&mut rng);
        let u = FaultUniverse::standard(&net);
        let dataset = vec![(Tensor::zeros(Shape::d2(4, 2)), 0usize)];
        assert!(escape_max_accuracy_drop(&net, &u, &[], &dataset, 1).is_none());
    }
}
