//! Minimal crossbeam-based data parallelism for fault campaigns.
//!
//! A fault-simulation campaign is embarrassingly parallel over faults, but
//! each worker needs mutable scratch state (its own network clone for
//! weight patching). [`map_indexed`] provides exactly that shape: the
//! caller supplies a per-worker state factory and a per-item function.

use crossbeam::thread;

/// Number of worker threads to use given a requested count (0 = all
/// available cores).
pub fn effective_threads(requested: usize) -> usize {
    if requested > 0 {
        requested
    } else {
        std::thread::available_parallelism().map_or(1, |n| n.get())
    }
}

/// Applies `f(state, index)` to every index in `0..n`, in parallel over
/// `threads` workers (0 = all cores), returning results in index order.
///
/// `make_state` is called once per worker to create its scratch state.
///
/// # Example
///
/// ```
/// let squares = snn_faults::parallel::map_indexed(8, 2, || (), |_, i| i * i);
/// assert_eq!(squares, vec![0, 1, 4, 9, 16, 25, 36, 49]);
/// ```
///
/// # Panics
///
/// Propagates panics from worker threads.
pub fn map_indexed<S, T, F, M>(n: usize, threads: usize, make_state: M, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(&mut S, usize) -> T + Sync,
    M: Fn() -> S + Sync,
{
    let workers = effective_threads(threads).min(n.max(1));
    if workers <= 1 || n == 0 {
        let mut state = make_state();
        return (0..n).map(|i| f(&mut state, i)).collect();
    }
    // Contiguous chunking keeps faults of the same layer together, which
    // maximizes prefix-cache hit locality.
    let chunk = n.div_ceil(workers);
    let mut results: Vec<Vec<T>> = Vec::new();
    thread::scope(|scope| {
        let mut handles = Vec::new();
        for w in 0..workers {
            let lo = w * chunk;
            let hi = ((w + 1) * chunk).min(n);
            if lo >= hi {
                break;
            }
            let f = &f;
            let make_state = &make_state;
            handles.push(scope.spawn(move |_| {
                let mut state = make_state();
                (lo..hi).map(|i| f(&mut state, i)).collect::<Vec<T>>()
            }));
        }
        for h in handles {
            results.push(h.join().expect("worker thread panicked"));
        }
    })
    .expect("crossbeam scope failed");
    results.into_iter().flatten().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn preserves_index_order() {
        let out = map_indexed(100, 4, || (), |_, i| i);
        assert_eq!(out, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn single_thread_path_works() {
        let out = map_indexed(5, 1, || 10usize, |s, i| *s + i);
        assert_eq!(out, vec![10, 11, 12, 13, 14]);
    }

    #[test]
    fn empty_input_yields_empty_output() {
        let out: Vec<usize> = map_indexed(0, 4, || (), |_, i| i);
        assert!(out.is_empty());
    }

    #[test]
    fn state_factory_called_once_per_worker() {
        let calls = AtomicUsize::new(0);
        let _ = map_indexed(
            16,
            4,
            || {
                calls.fetch_add(1, Ordering::SeqCst);
            },
            |_, i| i,
        );
        let c = calls.load(Ordering::SeqCst);
        assert!(c >= 1 && c <= 4, "factory calls = {c}");
    }

    #[test]
    fn more_threads_than_items_is_fine() {
        let out = map_indexed(3, 64, || (), |_, i| i * 2);
        assert_eq!(out, vec![0, 2, 4]);
    }

    #[test]
    fn effective_threads_passthrough_and_detect() {
        assert_eq!(effective_threads(3), 3);
        assert!(effective_threads(0) >= 1);
    }
}
