//! Minimal crossbeam-based data parallelism for fault campaigns.
//!
//! A fault-simulation campaign is embarrassingly parallel over faults, but
//! each worker needs mutable scratch state (its own network clone for
//! weight patching). [`map_indexed`] provides exactly that shape: the
//! caller supplies a per-worker state factory and a per-item function.

use crate::progress::{CancelToken, Cancelled};
use crossbeam::thread;

/// Number of worker threads to use given a requested count (0 = all
/// available cores).
pub fn effective_threads(requested: usize) -> usize {
    if requested > 0 {
        requested
    } else {
        std::thread::available_parallelism().map_or(1, |n| n.get())
    }
}

/// Applies `f(state, index)` to every index in `0..n`, in parallel over
/// `threads` workers (0 = all cores), returning results in index order.
///
/// `make_state` is called once per worker to create its scratch state.
///
/// # Example
///
/// ```
/// let squares = snn_faults::parallel::map_indexed(8, 2, || (), |_, i| i * i);
/// assert_eq!(squares, vec![0, 1, 4, 9, 16, 25, 36, 49]);
/// ```
///
/// # Panics
///
/// Propagates panics from worker threads.
pub fn map_indexed<S, T, F, M>(n: usize, threads: usize, make_state: M, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(&mut S, usize) -> T + Sync,
    M: Fn() -> S + Sync,
{
    try_map_indexed(n, threads, &CancelToken::new(), make_state, f)
        // snn-lint: allow(L-PANIC): a fresh private token is never cancelled, so Err is unreachable
        .expect("fresh token is never cancelled")
}

/// Cancellable variant of [`map_indexed`]: workers poll `cancel` before
/// every item and abandon their remaining range once it trips, after which
/// the call returns `Err(Cancelled)` (partial results are discarded).
///
/// # Panics
///
/// Propagates panics from worker threads.
pub fn try_map_indexed<S, T, F, M>(
    n: usize,
    threads: usize,
    cancel: &CancelToken,
    make_state: M,
    f: F,
) -> Result<Vec<T>, Cancelled>
where
    T: Send,
    F: Fn(&mut S, usize) -> T + Sync,
    M: Fn() -> S + Sync,
{
    let workers = effective_threads(threads).min(n.max(1));
    if workers <= 1 || n == 0 {
        let mut state = make_state();
        let mut out = Vec::with_capacity(n);
        let busy_started = snn_obs::clock::monotonic();
        for i in 0..n {
            cancel.check()?;
            out.push(f(&mut state, i));
        }
        record_busy(busy_started);
        return Ok(out);
    }
    // Contiguous chunking keeps faults of the same layer together, which
    // maximizes prefix-cache hit locality.
    let chunk = n.div_ceil(workers);
    // Worker threads have no implicit span parent; hand them the caller's.
    let parent_span = snn_obs::trace::current_id();
    let mut results: Vec<Vec<T>> = Vec::new();
    thread::scope(|scope| {
        let mut handles = Vec::new();
        for w in 0..workers {
            let lo = w * chunk;
            let hi = ((w + 1) * chunk).min(n);
            if lo >= hi {
                break;
            }
            let f = &f;
            let make_state = &make_state;
            handles.push(scope.spawn(move |_| {
                let mut worker_span =
                    snn_obs::trace::enter_with_parent("faultsim.worker", parent_span);
                worker_span.attr("items", hi - lo);
                let mut state = make_state();
                let mut out = Vec::with_capacity(hi - lo);
                let busy_started = snn_obs::clock::monotonic();
                for i in lo..hi {
                    if cancel.is_cancelled() {
                        break;
                    }
                    out.push(f(&mut state, i));
                }
                record_busy(busy_started);
                out
            }));
        }
        for h in handles {
            // snn-lint: allow(L-PANIC): documented behaviour — worker panics propagate to the caller
            results.push(h.join().expect("worker thread panicked"));
        }
    })
    // snn-lint: allow(L-PANIC): the scope only fails if a worker panicked, which is documented to propagate
    .expect("crossbeam scope failed");
    cancel.check()?;
    Ok(results.into_iter().flatten().collect())
}

/// Adds the wall-clock spent since `busy_started` to the worker busy-time
/// counter.
fn record_busy(busy_started: std::time::Duration) {
    let busy = snn_obs::clock::monotonic().saturating_sub(busy_started);
    snn_obs::counter!(
        "snn_faultsim_worker_busy_microseconds_total",
        "Cumulative busy time of fault-simulation workers."
    )
    .add(u64::try_from(busy.as_micros()).unwrap_or(u64::MAX));
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn preserves_index_order() {
        let out = map_indexed(100, 4, || (), |_, i| i);
        assert_eq!(out, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn single_thread_path_works() {
        let out = map_indexed(5, 1, || 10usize, |s, i| *s + i);
        assert_eq!(out, vec![10, 11, 12, 13, 14]);
    }

    #[test]
    fn empty_input_yields_empty_output() {
        let out: Vec<usize> = map_indexed(0, 4, || (), |_, i| i);
        assert!(out.is_empty());
    }

    #[test]
    fn state_factory_called_once_per_worker() {
        let calls = AtomicUsize::new(0);
        let _ = map_indexed(
            16,
            4,
            || {
                calls.fetch_add(1, Ordering::SeqCst);
            },
            |_, i| i,
        );
        let c = calls.load(Ordering::SeqCst);
        assert!((1..=4).contains(&c), "factory calls = {c}");
    }

    #[test]
    fn more_threads_than_items_is_fine() {
        let out = map_indexed(3, 64, || (), |_, i| i * 2);
        assert_eq!(out, vec![0, 2, 4]);
    }

    #[test]
    fn pre_cancelled_token_aborts_immediately() {
        let cancel = CancelToken::new();
        cancel.cancel();
        let out = try_map_indexed(100, 1, &cancel, || (), |_, i| i);
        assert_eq!(out, Err(Cancelled));
        let out = try_map_indexed(100, 4, &cancel, || (), |_, i| i);
        assert_eq!(out, Err(Cancelled));
    }

    #[test]
    fn mid_run_cancellation_stops_the_sweep() {
        let cancel = CancelToken::new();
        let done = AtomicUsize::new(0);
        let out = try_map_indexed(
            10_000,
            2,
            &cancel,
            || (),
            |_, i| {
                done.fetch_add(1, Ordering::SeqCst);
                if i == 5 {
                    cancel.cancel();
                }
                i
            },
        );
        assert_eq!(out, Err(Cancelled));
        assert!(done.load(Ordering::SeqCst) < 10_000, "should stop early");
    }

    #[test]
    fn uncancelled_try_map_matches_map() {
        let cancel = CancelToken::new();
        let out = try_map_indexed(7, 3, &cancel, || (), |_, i| i * 3).unwrap();
        assert_eq!(out, map_indexed(7, 3, || (), |_, i| i * 3));
    }

    #[test]
    fn effective_threads_passthrough_and_detect() {
        assert_eq!(effective_threads(3), 3);
        assert!(effective_threads(0) >= 1);
    }
}
