//! Progress reporting and cooperative cancellation for long-running
//! algorithms (test generation, fault-simulation campaigns).
//!
//! Both the generator's outer loop and the fault simulator accept a
//! [`ProgressSink`] to stream structured [`Progress`] events to, and a
//! [`CancelToken`] they poll at safe points. The CLI wires a no-op sink;
//! the job server (`snn-service`) wires an event bus that fans events out
//! to TCP subscribers.

use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// A structured progress event from a long-running algorithm.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Progress {
    /// One outer test-generation iteration committed a chunk.
    Iteration {
        /// Zero-based iteration index.
        iteration: usize,
        /// Ticks in the chunk this iteration produced.
        chunk_steps: usize,
        /// Neurons newly activated by this iteration.
        newly_activated: usize,
        /// Total activated neurons (`|𝒩_A|`) after this iteration.
        activated: usize,
        /// Total spiking neurons in the network (`|𝒩|`).
        total_neurons: usize,
        /// Duration growths this iteration needed before progressing.
        growths: usize,
    },
    /// Running tally of a fault-simulation campaign.
    FaultsSimulated {
        /// Faults simulated so far.
        done: usize,
        /// Faults in the campaign.
        total: usize,
        /// Detections so far.
        detected: usize,
    },
}

/// Receiver of [`Progress`] events.
///
/// Sinks must be `Sync`: the fault simulator emits from parallel workers.
pub trait ProgressSink: Sync {
    /// Delivers one event. Implementations should be cheap and
    /// non-blocking; slow consumers must buffer or drop internally.
    fn emit(&self, event: Progress);
}

/// Sink that discards every event (the CLI default).
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSink;

impl ProgressSink for NullSink {
    fn emit(&self, _event: Progress) {}
}

/// Any `Sync` closure is a sink.
impl<F: Fn(Progress) + Sync> ProgressSink for F {
    fn emit(&self, event: Progress) {
        self(event)
    }
}

/// Cooperative cancellation token shared between a running algorithm and
/// its controller. Cloning shares the underlying flag.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, uncancelled token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests cancellation. Idempotent; takes effect at the algorithm's
    /// next poll point.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Release);
    }

    /// `true` once [`cancel`](Self::cancel) has been called on any clone.
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Acquire)
    }

    /// `Err(Cancelled)` once cancelled — for `?`-style poll points.
    pub fn check(&self) -> Result<(), Cancelled> {
        if self.is_cancelled() {
            Err(Cancelled)
        } else {
            Ok(())
        }
    }
}

/// Error returned by cancellable operations that observed their token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Cancelled;

impl std::fmt::Display for Cancelled {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("operation cancelled")
    }
}

impl std::error::Error for Cancelled {}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    #[test]
    fn token_clones_share_the_flag() {
        let a = CancelToken::new();
        let b = a.clone();
        assert!(!a.is_cancelled());
        assert!(a.check().is_ok());
        b.cancel();
        assert!(a.is_cancelled());
        assert_eq!(a.check(), Err(Cancelled));
    }

    #[test]
    fn closure_sinks_collect_events() {
        let seen = Mutex::new(Vec::new());
        let sink = |e: Progress| seen.lock().unwrap().push(e);
        sink.emit(Progress::FaultsSimulated { done: 1, total: 2, detected: 0 });
        NullSink.emit(Progress::FaultsSimulated { done: 2, total: 2, detected: 1 });
        assert_eq!(
            *seen.lock().unwrap(),
            vec![Progress::FaultsSimulated { done: 1, total: 2, detected: 0 }]
        );
    }

    #[test]
    fn progress_round_trips_through_json() {
        let e = Progress::Iteration {
            iteration: 3,
            chunk_steps: 40,
            newly_activated: 5,
            activated: 17,
            total_neurons: 20,
            growths: 1,
        };
        let s = serde::json::to_string(&e);
        assert_eq!(serde::json::from_str::<Progress>(&s).unwrap(), e);
    }
}
