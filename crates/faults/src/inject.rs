use crate::{Fault, FaultKind, FaultSite, FaultUniverse};
use snn_model::{Network, NeuronBehaviorFault, NeuronFaultMap, WeightRef};

/// Concrete realization of a [`Fault`] on a network.
///
/// Weight faults are realized by temporarily patching one weight; neuron
/// faults by handing the simulator a behavioural override map. The
/// fault simulator applies/reverts these around each faulty run.
#[derive(Debug, Clone, PartialEq)]
pub enum Injection {
    /// Overwrite the weight at `at` with `value` for the duration of the
    /// faulty simulation.
    Weight {
        /// Address of the patched weight.
        at: WeightRef,
        /// Faulty value.
        value: f32,
    },
    /// Run the simulator with behavioural neuron overrides.
    Neuron(NeuronFaultMap),
}

/// An ill-formed [`Fault`]: its site and kind belong to different fault
/// classes, so no injection realizes it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum InjectionError {
    /// A neuron site paired with a synapse fault kind.
    NeuronSiteWithSynapseKind {
        /// The offending synapse kind.
        kind: FaultKind,
    },
    /// A synapse site paired with a neuron fault kind.
    SynapseSiteWithNeuronKind {
        /// The offending neuron kind.
        kind: FaultKind,
    },
}

impl std::fmt::Display for InjectionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::NeuronSiteWithSynapseKind { kind } => {
                write!(f, "neuron site with synapse fault kind {kind:?}")
            }
            Self::SynapseSiteWithNeuronKind { kind } => {
                write!(f, "synapse site with neuron fault kind {kind:?}")
            }
        }
    }
}

impl std::error::Error for InjectionError {}

impl Injection {
    /// Builds the injection realizing `fault` on `net`, using the
    /// universe's magnitude configuration (saturation values scale with
    /// the network's largest absolute weight).
    ///
    /// Faults enumerated by a [`FaultUniverse`] are always well-formed;
    /// `Err` is only possible for hand-constructed faults whose site and
    /// kind disagree.
    pub fn for_fault(
        net: &Network,
        universe: &FaultUniverse,
        fault: &Fault,
    ) -> Result<Self, InjectionError> {
        let sat = universe.max_abs_weight * universe.config().sat_factor;
        match (fault.site, fault.kind) {
            (FaultSite::Neuron { layer, index }, kind) => {
                let behavior = match kind {
                    FaultKind::NeuronSaturated => NeuronBehaviorFault::Saturated,
                    FaultKind::NeuronDead => NeuronBehaviorFault::Dead,
                    FaultKind::NeuronTiming { threshold_scale, leak_scale, refrac_delta } => {
                        NeuronBehaviorFault::ParamScale {
                            threshold_scale,
                            leak_scale,
                            refrac_delta,
                        }
                    }
                    kind => return Err(InjectionError::NeuronSiteWithSynapseKind { kind }),
                };
                Ok(Injection::Neuron(NeuronFaultMap::single(layer, index, behavior)))
            }
            (FaultSite::Synapse(at), kind) => {
                let value = match kind {
                    FaultKind::SynapseDead => 0.0,
                    FaultKind::SynapseSatPos => sat,
                    FaultKind::SynapseSatNeg => -sat,
                    FaultKind::SynapseBitFlip { bit } => {
                        bit_flip_int8(net.weight(at), universe.max_abs_weight, bit)
                    }
                    kind => return Err(InjectionError::SynapseSiteWithNeuronKind { kind }),
                };
                Ok(Injection::Weight { at, value })
            }
        }
    }

    /// Index of the first layer whose computation this injection can
    /// affect.
    pub fn start_layer(&self) -> usize {
        match self {
            Injection::Weight { at, .. } => at.layer,
            // An empty map perturbs nothing, so starting at layer 0 is the
            // conservative identity rather than a panic.
            Injection::Neuron(map) => map.first_faulty_layer().unwrap_or(0),
        }
    }
}

/// Simulates a single-bit upset in the int8 memory word storing a weight:
/// the weight is symmetric-quantized against `max_abs` (scale
/// `max_abs/127`), one bit of the two's-complement word is flipped, and
/// the result is dequantized.
///
/// Public so fault-map-driven reliability campaigns (snn-reliability) can
/// sample bit-flip weight corruptions with the exact arithmetic the
/// detection path uses.
pub fn bit_flip_int8(weight: f32, max_abs: f32, bit: u8) -> f32 {
    debug_assert!(bit < 8);
    if max_abs <= 0.0 {
        return weight;
    }
    let scale = max_abs / 127.0;
    // snn-lint: allow(L-CAST): clamped to [-128, 127] on the line itself, so the i8 cast cannot truncate
    let q = (weight / scale).round().clamp(-128.0, 127.0) as i8;
    // snn-lint: allow(L-CAST): deliberate two's-complement reinterpretation — the bit flip targets the memory word
    let flipped = (q as u8 ^ (1u8 << bit)) as i8;
    f32::from(flipped) * scale
}

#[cfg(test)]
#[allow(clippy::float_cmp)] // tests assert exact spike/gradient values
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use snn_model::{LifParams, NetworkBuilder};

    fn setup() -> (Network, FaultUniverse) {
        let mut rng = StdRng::seed_from_u64(0);
        let net = NetworkBuilder::new(3, LifParams::default()).dense(4).dense(2).build(&mut rng);
        let u = FaultUniverse::standard(&net);
        (net, u)
    }

    #[test]
    fn synapse_dead_injects_zero_weight() {
        let (net, u) = setup();
        let fault = u.faults().iter().find(|f| f.kind == FaultKind::SynapseDead).unwrap();
        match Injection::for_fault(&net, &u, fault).unwrap() {
            Injection::Weight { value, .. } => assert_eq!(value, 0.0),
            other => panic!("expected weight injection, got {other:?}"),
        }
    }

    #[test]
    fn saturation_is_an_outlier_of_the_weight_distribution() {
        let (net, u) = setup();
        let pos = u.faults().iter().find(|f| f.kind == FaultKind::SynapseSatPos).unwrap();
        let neg = u.faults().iter().find(|f| f.kind == FaultKind::SynapseSatNeg).unwrap();
        let vp = match Injection::for_fault(&net, &u, pos).unwrap() {
            Injection::Weight { value, .. } => value,
            _ => unreachable!(),
        };
        let vn = match Injection::for_fault(&net, &u, neg).unwrap() {
            Injection::Weight { value, .. } => value,
            _ => unreachable!(),
        };
        assert!(vp > net.max_abs_weight());
        assert!(vn < -net.max_abs_weight());
        assert_eq!(vp, -vn);
    }

    #[test]
    fn neuron_faults_become_behavioural_overrides() {
        let (net, u) = setup();
        let dead = u.faults().iter().find(|f| f.kind == FaultKind::NeuronDead).unwrap();
        match Injection::for_fault(&net, &u, dead).unwrap() {
            Injection::Neuron(map) => {
                assert_eq!(map.len(), 1);
                assert_eq!(map.first_faulty_layer(), Some(dead.site.layer()));
            }
            other => panic!("expected neuron injection, got {other:?}"),
        }
    }

    #[test]
    fn start_layer_matches_site() {
        let (net, u) = setup();
        for f in u.faults() {
            let inj = Injection::for_fault(&net, &u, f).unwrap();
            assert_eq!(inj.start_layer(), f.site.layer());
        }
    }

    #[test]
    fn mismatched_site_and_kind_is_a_typed_error() {
        let (net, u) = setup();
        let bad_neuron = Fault {
            id: 0,
            site: FaultSite::Neuron { layer: 0, index: 0 },
            kind: FaultKind::SynapseDead,
        };
        assert_eq!(
            Injection::for_fault(&net, &u, &bad_neuron),
            Err(InjectionError::NeuronSiteWithSynapseKind { kind: FaultKind::SynapseDead })
        );

        let synapse_site =
            u.faults().iter().find(|f| matches!(f.site, FaultSite::Synapse(_))).unwrap().site;
        let bad_synapse = Fault { id: 1, site: synapse_site, kind: FaultKind::NeuronDead };
        let err = Injection::for_fault(&net, &u, &bad_synapse).unwrap_err();
        assert_eq!(err, InjectionError::SynapseSiteWithNeuronKind { kind: FaultKind::NeuronDead });
        assert!(err.to_string().contains("synapse site"));
    }

    #[test]
    fn bit_flip_round_trips_through_quantization() {
        // Flipping the same bit twice restores the quantized value.
        let w = 0.42;
        let max_abs = 1.0;
        for bit in 0..8 {
            let once = bit_flip_int8(w, max_abs, bit);
            let twice = bit_flip_int8(once, max_abs, bit);
            let q = |x: f32| (x / (max_abs / 127.0)).round();
            assert_eq!(q(twice), q(w), "bit {bit}");
        }
    }

    #[test]
    fn sign_bit_flip_changes_sign_region() {
        let v = bit_flip_int8(0.5, 1.0, 7);
        assert!(v < 0.0, "sign-bit flip should produce a negative weight, got {v}");
    }

    #[test]
    fn bit_flip_handles_degenerate_scale() {
        assert_eq!(bit_flip_int8(0.3, 0.0, 3), 0.3);
    }
}
