//! Property-based invariants of the fault universe and fault simulator.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use snn_faults::{FaultSimConfig, FaultSimulator, FaultUniverse};
use snn_model::{LifParams, Network, NetworkBuilder};
use snn_tensor::{Shape, Tensor};

fn small_net(seed: u64, inputs: usize, hidden: usize, outputs: usize) -> Network {
    let mut rng = StdRng::seed_from_u64(seed);
    NetworkBuilder::new(inputs, LifParams { refrac_steps: 1, ..LifParams::default() })
        .dense(hidden)
        .dense(outputs)
        .build(&mut rng)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The standard universe always has exactly 2 faults per neuron and 3
    /// per synapse, with dense ids, over arbitrary topologies.
    #[test]
    fn universe_multiplicity_invariant(
        seed in 0u64..300, inputs in 2usize..6, hidden in 2usize..8, outputs in 1usize..4,
    ) {
        let net = small_net(seed, inputs, hidden, outputs);
        let u = FaultUniverse::standard(&net);
        prop_assert_eq!(u.neuron_fault_count(), 2 * net.neuron_count());
        prop_assert_eq!(u.synapse_fault_count(), 3 * net.synapse_count());
        for (i, f) in u.faults().iter().enumerate() {
            prop_assert_eq!(f.id, i);
        }
    }

    /// Detection outcomes are independent of fault-list order: running a
    /// permuted subset yields the same per-fault verdicts.
    #[test]
    fn detection_is_order_independent(seed in 0u64..200, perm_seed in 0u64..200) {
        let net = small_net(seed, 4, 6, 3);
        let u = FaultUniverse::standard(&net);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xABCD);
        let test = snn_tensor::init::bernoulli(&mut rng, Shape::d2(20, 4), 0.4);
        let sim = FaultSimulator::new(&net, FaultSimConfig { threads: 1, ..FaultSimConfig::default() });

        let mut subset = u.sample(&mut StdRng::seed_from_u64(perm_seed), 30);
        let straight = sim.detect(&u, &subset, std::slice::from_ref(&test));
        subset.reverse();
        let reversed = sim.detect(&u, &subset, std::slice::from_ref(&test));
        for (f, o) in subset.iter().zip(reversed.per_fault.iter()) {
            let original = straight
                .per_fault
                .iter()
                .find(|p| p.fault_id == f.id)
                .expect("same subset");
            prop_assert_eq!(original.detected, o.detected);
            prop_assert!((original.distance - o.distance).abs() < 1e-5);
        }
    }

    /// Detection is consistent: distance > 0 ⇔ detected, and distance is
    /// always finite and non-negative.
    #[test]
    fn distance_detection_consistency(seed in 0u64..200, density in 0.05f32..0.7) {
        let net = small_net(seed, 4, 6, 3);
        let u = FaultUniverse::standard(&net);
        let mut rng = StdRng::seed_from_u64(seed);
        let test = snn_tensor::init::bernoulli(&mut rng, Shape::d2(15, 4), density);
        let sim = FaultSimulator::new(&net, FaultSimConfig { threads: 1, ..FaultSimConfig::default() });
        let outcome = sim.detect(&u, u.faults(), std::slice::from_ref(&test));
        for o in &outcome.per_fault {
            prop_assert!(o.distance.is_finite());
            prop_assert!(o.distance >= 0.0);
            prop_assert_eq!(o.detected, o.distance > 0.0);
        }
    }

    /// The all-zero stimulus never detects dead faults but always detects
    /// output-layer saturated-neuron faults (they self-activate).
    #[test]
    fn zero_stimulus_boundary_behaviour(seed in 0u64..200) {
        let net = small_net(seed, 3, 5, 2);
        let u = FaultUniverse::standard(&net);
        let zero = Tensor::zeros(Shape::d2(12, 3));
        let sim = FaultSimulator::new(&net, FaultSimConfig { threads: 1, ..FaultSimConfig::default() });
        let outcome = sim.detect(&u, u.faults(), std::slice::from_ref(&zero));
        for (f, o) in u.faults().iter().zip(outcome.per_fault.iter()) {
            use snn_faults::{FaultKind, FaultSite};
            match (f.kind, f.site) {
                (FaultKind::NeuronDead | FaultKind::SynapseDead, _) => {
                    prop_assert!(!o.detected, "dead fault {} visible on zero input", f.id)
                }
                (FaultKind::NeuronSaturated, FaultSite::Neuron { layer: 1, .. }) => {
                    prop_assert!(o.detected, "output saturation {} missed", f.id)
                }
                _ => {}
            }
        }
    }
}
