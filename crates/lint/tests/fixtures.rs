//! Fixture-based tests: known-bad source snippets must produce exactly
//! the expected lint ids on the expected lines, allow directives must
//! suppress them, and out-of-scope code (test modules, vendored files)
//! must be skipped.

use snn_lint::lint_source;

/// Findings as compact `(line, id)` pairs for easy assertions.
fn findings(path: &str, source: &str) -> Vec<(u32, &'static str)> {
    lint_source(
        path,
        source,
        &[
            "service.queue".to_string(),
            "service.store.jobs".to_string(),
            "cluster.coordinator".to_string(),
        ],
    )
    .into_iter()
    .map(|d| (d.line, d.id))
    .collect()
}

#[test]
fn unwrap_in_library_code_is_flagged_at_its_line() {
    let src = "pub fn f(x: Option<u32>) -> u32 {\n    x.unwrap()\n}\n";
    assert_eq!(findings("crates/core/src/lib.rs", src), vec![(2, "L-PANIC")]);
}

#[test]
fn expect_and_panic_are_flagged() {
    let src = "pub fn f(x: Option<u32>) -> u32 {\n    let v = x.expect(\"set\");\n    if v > 9 { panic!(\"too big\") }\n    v\n}\n";
    assert_eq!(findings("crates/snn/src/lib.rs", src), vec![(2, "L-PANIC"), (3, "L-PANIC")]);
}

#[test]
fn lossy_cast_in_kernel_crate_is_flagged() {
    let src = "pub fn f(x: f64) -> f32 {\n    x as f32\n}\n";
    assert_eq!(findings("crates/tensor/src/ops.rs", src), vec![(2, "L-CAST")]);
}

#[test]
fn widening_cast_is_not_flagged() {
    // The pass is token-level: it keys on the *target* type, so widening
    // targets (f64, i64, usize) never fire.
    let src = "pub fn f(x: f32, n: u32) -> f64 {\n    let _w = n as i64;\n    x as f64\n}\n";
    assert_eq!(findings("crates/tensor/src/ops.rs", src), vec![]);
}

#[test]
fn cast_outside_kernel_crates_is_not_flagged() {
    let src = "pub fn f(x: f64) -> f32 {\n    x as f32\n}\n";
    assert_eq!(findings("crates/service/src/server.rs", src), vec![]);
}

#[test]
fn float_equality_is_flagged_for_both_operators() {
    let src = "pub fn f(a: f32, b: f32) -> bool {\n    a == 0.5\n}\npub fn g(a: f32) -> bool {\n    a != 0.25\n}\n";
    assert_eq!(
        findings("crates/core/src/losses.rs", src),
        vec![(2, "L-FLOATEQ"), (5, "L-FLOATEQ")]
    );
}

#[test]
fn instant_now_in_generator_is_flagged() {
    let src = "use std::time::Instant;\npub fn f() {\n    let _t = Instant::now();\n}\n";
    assert_eq!(findings("crates/core/src/generator.rs", src), vec![(3, "L-DET-CLOCK")]);
}

#[test]
fn unregistered_mutex_in_service_is_flagged() {
    let src = "pub struct S {\n    q: parking_lot::Mutex<u32>,\n}\nimpl S {\n    pub fn new() -> Self {\n        Self { q: parking_lot::Mutex::new(0) }\n    }\n}\n";
    assert_eq!(findings("crates/service/src/server.rs", src), vec![(6, "L-LOCK")]);
}

#[test]
fn named_registered_mutex_in_service_is_clean() {
    let src = "pub struct S {\n    q: parking_lot::Mutex<u32>,\n}\nimpl S {\n    pub fn new() -> Self {\n        Self { q: parking_lot::Mutex::named(\"service.queue\", 0) }\n    }\n}\n";
    assert_eq!(findings("crates/service/src/server.rs", src), vec![]);
}

#[test]
fn unregistered_mutex_in_cluster_is_flagged() {
    // The cluster crate shares the service crate's lock-order registry,
    // so L-LOCK covers it with the same rules.
    let src = "pub struct C {\n    s: parking_lot::Mutex<u32>,\n}\nimpl C {\n    pub fn new() -> Self {\n        Self { s: parking_lot::Mutex::named(\"cluster.rogue\", 0) }\n    }\n}\n";
    assert_eq!(findings("crates/cluster/src/worker.rs", src), vec![(6, "L-LOCK")]);
}

#[test]
fn instant_now_in_reliability_is_flagged() {
    // Reliability campaigns must be pure functions of the spec, so the
    // crate sits in the L-DET-CLOCK reproducibility scope.
    let src = "use std::time::Instant;\npub fn f() {\n    let _t = Instant::now();\n}\n";
    assert_eq!(findings("crates/reliability/src/campaign.rs", src), vec![(3, "L-DET-CLOCK")]);
}

#[test]
fn unregistered_mutex_in_reliability_is_flagged() {
    // snn-reliability registers no locks today, so *any* mutex there is
    // unregistered until it is named and added to LOCK_ORDER.
    let src = "pub struct R {\n    m: parking_lot::Mutex<u32>,\n}\nimpl R {\n    pub fn new() -> Self {\n        Self { m: parking_lot::Mutex::new(0) }\n    }\n}\n";
    assert_eq!(findings("crates/reliability/src/report.rs", src), vec![(6, "L-LOCK")]);
}

#[test]
fn named_registered_mutex_in_cluster_is_clean() {
    let src = "pub struct C {\n    s: parking_lot::Mutex<u32>,\n}\nimpl C {\n    pub fn new() -> Self {\n        Self { s: parking_lot::Mutex::named(\"cluster.coordinator\", 0) }\n    }\n}\n";
    assert_eq!(findings("crates/cluster/src/coordinator.rs", src), vec![]);
}

#[test]
fn standalone_allow_suppresses_the_next_line() {
    let src = "pub fn f(x: Option<u32>) -> u32 {\n    // snn-lint: allow(L-PANIC): invariant, x is always Some here\n    x.unwrap()\n}\n";
    assert_eq!(findings("crates/core/src/lib.rs", src), vec![]);
}

#[test]
fn trailing_allow_suppresses_its_own_line() {
    let src = "pub fn f(x: f64) -> f32 {\n    x as f32 // snn-lint: allow(L-CAST): precision loss is the point here\n}\n";
    assert_eq!(findings("crates/tensor/src/ops.rs", src), vec![]);
}

#[test]
fn allow_without_justification_is_itself_a_finding() {
    let src =
        "pub fn f(x: Option<u32>) -> u32 {\n    // snn-lint: allow(L-PANIC):\n    x.unwrap()\n}\n";
    let got = findings("crates/core/src/lib.rs", src);
    assert!(got.contains(&(2, "L-ALLOW")), "unjustified allow must be reported, got {got:?}");
}

#[test]
fn unused_allow_is_itself_a_finding() {
    let src = "pub fn f() -> u32 {\n    // snn-lint: allow(L-PANIC): nothing here panics any more\n    7\n}\n";
    assert_eq!(findings("crates/core/src/lib.rs", src), vec![(2, "L-ALLOW")]);
}

#[test]
fn allow_for_a_different_id_does_not_suppress() {
    let src = "pub fn f(x: Option<u32>) -> u32 {\n    // snn-lint: allow(L-CAST): wrong id on purpose\n    x.unwrap()\n}\n";
    let got = findings("crates/core/src/lib.rs", src);
    assert!(got.contains(&(3, "L-PANIC")), "finding must survive a mismatched allow, got {got:?}");
}

#[test]
fn test_module_code_is_skipped() {
    let src = "pub fn lib_side() {}\n\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() {\n        let x: Option<u32> = Some(1);\n        assert_eq!(x.unwrap(), 1);\n        let _ = 0.5f32 == 0.5f32;\n    }\n}\n";
    assert_eq!(findings("crates/core/src/lib.rs", src), vec![]);
}

#[test]
fn integration_test_files_are_skipped() {
    let src = "fn main() {\n    let x: Option<u32> = None;\n    x.unwrap();\n}\n";
    assert_eq!(findings("crates/snn/tests/invariants.rs", src), vec![]);
    assert_eq!(findings("tests/pipeline.rs", src), vec![]);
}

#[test]
fn vendor_files_are_skipped() {
    let src = "pub fn f(x: Option<u32>) -> u32 {\n    x.unwrap()\n}\n";
    assert_eq!(findings("vendor/rand/src/lib.rs", src), vec![]);
}

// --------------------------------------------------------- crates/batch
// The packed engine is in scope for the kernel, determinism and panic
// passes: its verdicts feed the same digest-equality gate as the scalar
// engine's, so the same discipline applies.

#[test]
fn unwrap_in_batch_library_code_is_flagged() {
    let src = "pub fn f(x: Option<u32>) -> u32 {\n    x.unwrap()\n}\n";
    assert_eq!(findings("crates/batch/src/plan.rs", src), vec![(2, "L-PANIC")]);
}

#[test]
fn lossy_cast_in_batch_kernel_is_flagged() {
    let src = "pub fn f(x: f64) -> f32 {\n    x as f32\n}\n";
    assert_eq!(findings("crates/batch/src/pack.rs", src), vec![(2, "L-CAST")]);
}

#[test]
fn justified_cast_in_batch_kernel_is_clean() {
    let src = "pub fn f(c: u32) -> f32 {\n    // snn-lint: allow(L-CAST): diff-bit counts are exact below 2^24\n    c as f32\n}\n";
    assert_eq!(findings("crates/batch/src/pack.rs", src), vec![]);
}

#[test]
fn instant_now_in_batch_is_flagged() {
    let src = "use std::time::Instant;\npub fn f() {\n    let _t = Instant::now();\n}\n";
    assert_eq!(findings("crates/batch/src/golden.rs", src), vec![(3, "L-DET-CLOCK")]);
}

#[test]
fn hashmap_iteration_in_batch_is_flagged() {
    let src = "struct P {\n    packs: HashMap<usize, u64>,\n}\nfn f(p: &P) -> u64 {\n    let mut acc = 0;\n    for (_, v) in p.packs.iter() {\n        acc += v;\n    }\n    acc\n}\n";
    let got = findings("crates/batch/src/plan.rs", src);
    assert!(got.contains(&(6, "L-DET-ITER")), "unordered iteration must be flagged, got {got:?}");
}
