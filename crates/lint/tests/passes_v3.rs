//! v3 pass tests: the interprocedural determinism-taint analysis
//! (L-DET-FLOW), the unordered-iteration pass (L-DET-ITER), the widened
//! clock/entropy pass (L-DET-CLOCK), and the retirement of the
//! token-level L-NONDET id it replaces.

use snn_lint::{lint_source, passes};

/// Findings as `(line, id)` pairs.
fn findings(path: &str, source: &str) -> Vec<(u32, &'static str)> {
    lint_source(path, source, &["cluster.coordinator".to_string()])
        .into_iter()
        .map(|d| (d.line, d.id))
        .collect()
}

/// Full diagnostics (for message assertions).
fn diags(path: &str, source: &str) -> Vec<snn_lint::Diagnostic> {
    lint_source(path, source, &["cluster.coordinator".to_string()])
}

// ------------------------------------------------------------ L-DET-FLOW

#[test]
fn det_flow_reports_the_propagation_path_two_calls_away() {
    // Taint introduced in `entropy`, laundered through `indirection`,
    // bound to `x`, sunk into the digest — the finding must carry the
    // whole interprocedural chain, like an L-LOCKGRAPH cycle report.
    let src = "fn entropy() -> u64 {\n\
               \x20   thread_rng()\n\
               }\n\
               fn indirection() -> u64 {\n\
               \x20   entropy()\n\
               }\n\
               fn run() -> u64 {\n\
               \x20   let x = indirection();\n\
               \x20   verdict_digest(x)\n\
               }\n";
    let out = diags("crates/cluster/src/pipeline.rs", src);
    assert_eq!(
        out.iter().map(|d| (d.line, d.id)).collect::<Vec<_>>(),
        vec![(9, "L-DET-FLOW")],
        "{out:?}"
    );
    let msg = &out[0].message;
    for leg in ["thread_rng", "`entropy()`", "`indirection()`", "`x`", "FNV verdict digest"] {
        assert!(msg.contains(leg), "chain leg {leg:?} missing from {msg:?}");
    }
}

#[test]
fn det_flow_clean_when_the_value_is_deterministic() {
    let src = "fn seed() -> u64 {\n\
               \x20   42\n\
               }\n\
               fn run() -> u64 {\n\
               \x20   let x = seed();\n\
               \x20   verdict_digest(x)\n\
               }\n";
    assert_eq!(findings("crates/cluster/src/pipeline.rs", src), vec![]);
}

#[test]
fn det_flow_catches_a_source_nested_directly_in_the_sink_call() {
    // `verdict_digest(thread_rng())` lexes the sink before the nested
    // source; the statement-chain lookahead must still connect them.
    let src = "fn f() -> u64 {\n\
               \x20   verdict_digest(thread_rng())\n\
               }\n";
    let out = findings("crates/cluster/src/pipeline.rs", src);
    assert_eq!(out, vec![(2, "L-DET-FLOW")]);
}

#[test]
fn det_flow_sort_sanitizes_iteration_order_taint() {
    // Sorting is the documented fix: the sorted binding no longer flows
    // taint into the digest. The raw `.keys()` call on a HashMap field
    // is still an L-DET-ITER finding — order must never *start* from an
    // unordered walk in digest code without being forced deterministic,
    // and here it was, so only the ITER diagnostic remains.
    let sorted = "struct S {\n\
                  \x20   map: HashMap<u64, u64>,\n\
                  }\n\
                  fn f(s: &S) -> u64 {\n\
                  \x20   let mut ks = s.map.keys();\n\
                  \x20   ks.sort_unstable();\n\
                  \x20   verdict_digest(ks)\n\
                  }\n";
    assert_eq!(findings("crates/cluster/src/pipeline.rs", sorted), vec![(5, "L-DET-ITER")]);

    let unsorted = "struct S {\n\
                    \x20   map: HashMap<u64, u64>,\n\
                    }\n\
                    fn f(s: &S) -> u64 {\n\
                    \x20   let ks = s.map.keys();\n\
                    \x20   verdict_digest(ks)\n\
                    }\n";
    assert_eq!(
        findings("crates/cluster/src/pipeline.rs", unsorted),
        vec![(5, "L-DET-ITER"), (6, "L-DET-FLOW")]
    );
}

#[test]
fn det_flow_is_out_of_scope_in_the_service_crate() {
    // Job metadata legitimately carries wall-clock values; the service
    // crate is deliberately outside the digest-equality scope.
    let src = "fn f() -> u64 {\n\
               \x20   verdict_digest(thread_rng())\n\
               }\n";
    assert_eq!(findings("crates/service/src/store.rs", src), vec![]);
}

// ------------------------------------------------------------ L-DET-ITER

#[test]
fn det_iter_flags_hashmap_iteration_and_not_btreemap() {
    let bad = "struct R {\n\
               \x20   regions: HashMap<String, f64>,\n\
               }\n\
               fn render(r: &R) {\n\
               \x20   for kv in r.regions.iter() {\n\
               \x20       emit(kv);\n\
               \x20   }\n\
               }\n";
    let out = diags("crates/reliability/src/report_v3.rs", bad);
    assert_eq!(out.iter().map(|d| (d.line, d.id)).collect::<Vec<_>>(), vec![(5, "L-DET-ITER")]);
    assert!(out[0].message.contains("BTreeMap"), "fix hint missing: {:?}", out[0].message);

    let good = bad.replace("HashMap", "BTreeMap");
    assert_eq!(findings("crates/reliability/src/report_v3.rs", &good), vec![]);
}

#[test]
fn det_iter_ignores_ordered_collections_and_out_of_scope_crates() {
    // Vec iteration is ordered; HashMap iteration outside the digest
    // crates is someone else's problem.
    let vec_src = "fn f(v: &Vec<u64>) {\n\
                   \x20   let total = v.iter();\n\
                   }\n";
    assert_eq!(findings("crates/cluster/src/pipeline.rs", vec_src), vec![]);

    let service_src = "struct S {\n\
                       \x20   jobs: HashMap<u64, u64>,\n\
                       }\n\
                       fn f(s: &S) {\n\
                       \x20   let n = s.jobs.values();\n\
                       }\n";
    assert_eq!(findings("crates/service/src/store.rs", service_src), vec![]);
}

// ----------------------------------------------------------- L-DET-CLOCK

#[test]
fn det_clock_flags_the_widened_source_set_in_scope() {
    let src = "fn f() {\n\
               \x20   let t = SystemTime::now();\n\
               \x20   let v = rand::random();\n\
               }\n";
    assert_eq!(
        findings("crates/faults/src/sim.rs", src),
        vec![(2, "L-DET-CLOCK"), (3, "L-DET-CLOCK")]
    );
    // Same code outside the reproducibility scope: clean.
    assert_eq!(findings("crates/service/src/server.rs", src), vec![]);
}

// --------------------------------------------- L-NONDET retirement

#[test]
fn l_nondet_is_retired_everywhere() {
    assert!(passes::registry().iter().all(|p| p.id != "L-NONDET"));
    assert!(!passes::known_ids().contains(&"L-NONDET"));
    assert!(passes::explain("L-NONDET").is_none());
}

#[test]
fn migrated_allow_suppresses_and_stale_l_nondet_allow_is_a_finding() {
    // The migration path: allow(L-NONDET) directives were rewritten to
    // allow(L-DET-CLOCK). The rewritten form suppresses cleanly…
    let migrated = "fn f() {\n\
                    \x20   // snn-lint: allow(L-DET-CLOCK): sanctioned fixture read\n\
                    \x20   Instant::now();\n\
                    }\n";
    assert_eq!(findings("crates/core/src/generator.rs", migrated), vec![]);

    // …while a leftover allow(L-NONDET) is loudly wrong three ways: the
    // finding it used to suppress resurfaces, the id is unknown, and the
    // directive is stale.
    let stale = "fn f() {\n\
                 \x20   // snn-lint: allow(L-NONDET): sanctioned fixture read\n\
                 \x20   Instant::now();\n\
                 }\n";
    let out = diags("crates/core/src/generator.rs", stale);
    let ids: Vec<&str> = out.iter().map(|d| d.id).collect();
    assert!(ids.contains(&"L-DET-CLOCK"), "{out:?}");
    assert!(
        out.iter().any(|d| d.id == "L-ALLOW" && d.message.contains("unknown lint id")),
        "{out:?}"
    );
}

// ------------------------------------------------------------- --explain

#[test]
fn every_det_pass_is_listed_and_explained() {
    for id in ["L-DET-FLOW", "L-DET-ITER", "L-DET-CLOCK"] {
        assert!(passes::registry().iter().any(|p| p.id == id), "{id} missing from registry");
        let (summary, scope, explain) = passes::explain(id).unwrap_or_else(|| panic!("{id}"));
        assert!(!summary.is_empty() && !scope.is_empty());
        assert!(explain.len() > 80, "--explain {id} rationale too thin: {explain:?}");
    }
}
