//! The acceptance gate, as a test: the real workspace must lint clean.
//!
//! This is the same check `ci.sh` runs via `cargo run -p snn-lint`; having
//! it in the test suite means a violation fails `cargo test` too, before
//! CI is ever involved.

use std::path::Path;

#[test]
fn the_workspace_lints_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let report = snn_lint::run(&root).expect("workspace must be lintable");
    assert!(
        report.checked_files > 50,
        "suspiciously few files checked ({}) — did the file walk break?",
        report.checked_files
    );
    let rendered: Vec<String> = report.diagnostics.iter().map(|d| d.render()).collect();
    assert!(report.is_clean(), "workspace has lint findings:\n{}", rendered.join("\n"));
}
