//! Fixture tests for the v2 analysis passes: L-HELDLOCK (guard live
//! across a blocking call), L-LOCKGRAPH (static acquisition graph),
//! L-WIRE (schema baseline drift) and L-OBS (metric/span registries).
//! Each pass gets a bad fixture that must fire on the expected line and
//! a good twin — the same logic with the guard narrowed or the schema
//! intact — that must stay silent.

use snn_lint::{facts, lexer, lint_source, parser, passes};
use std::path::Path;

const LOCKS: &[&str] = &["service.queue", "service.store.jobs", "cluster.coordinator"];

fn lock_order() -> Vec<String> {
    LOCKS.iter().map(|s| s.to_string()).collect()
}

/// Findings as compact `(line, id)` pairs.
fn findings(path: &str, source: &str) -> Vec<(u32, &'static str)> {
    lint_source(path, source, &lock_order()).into_iter().map(|d| (d.line, d.id)).collect()
}

fn parse(source: &str) -> parser::ParsedFile {
    let lexed = lexer::lex(source);
    let live = passes::live_mask(&lexed.tokens);
    parser::parse(&lexed.tokens, &live)
}

// ---------------------------------------------------------------- L-HELDLOCK

/// A guard held across `TcpStream::write_all` — the socket peer controls
/// how long the lock stays held.
const HELDLOCK_BAD: &str = "\
use std::io::Write;
pub struct S { q: parking_lot::Mutex<Vec<u8>> }
impl S {
    pub fn new() -> Self { Self { q: parking_lot::Mutex::named(\"service.queue\", Vec::new()) } }
    pub fn stream_out(&self, stream: &mut std::net::TcpStream) {
        let buf = self.q.lock();
        let _ = stream.write_all(&buf);
    }
}
";

/// The narrowed twin: clone under a scoped guard, write after release.
const HELDLOCK_GOOD: &str = "\
use std::io::Write;
pub struct S { q: parking_lot::Mutex<Vec<u8>> }
impl S {
    pub fn new() -> Self { Self { q: parking_lot::Mutex::named(\"service.queue\", Vec::new()) } }
    pub fn stream_out(&self, stream: &mut std::net::TcpStream) {
        let buf = { let q = self.q.lock(); q.clone() };
        let _ = stream.write_all(&buf);
    }
}
";

#[test]
fn heldlock_fires_on_guard_across_tcp_write() {
    let got = findings("crates/service/src/fixture.rs", HELDLOCK_BAD);
    assert_eq!(got, vec![(7, "L-HELDLOCK")], "write_all under service.queue must fire: {got:?}");
}

#[test]
fn heldlock_silent_when_guard_is_scoped_before_the_write() {
    assert_eq!(findings("crates/service/src/fixture.rs", HELDLOCK_GOOD), vec![]);
}

#[test]
fn heldlock_resolves_blocking_through_the_call_graph() {
    // The blocking `fs::write` is one call away: `save` itself is fine,
    // holding the guard across the *call to* `save` is not.
    let src = "\
pub struct S { q: parking_lot::Mutex<u32> }
impl S {
    pub fn new() -> Self { Self { q: parking_lot::Mutex::named(\"service.queue\", 0) } }
    fn save(&self, v: u32) { let _ = std::fs::write(\"state\", v.to_string()); }
    pub fn bump(&self) {
        let mut g = self.q.lock();
        *g += 1;
        self.save(*g);
    }
}
";
    let got = findings("crates/service/src/fixture.rs", src);
    assert_eq!(got, vec![(8, "L-HELDLOCK")], "transitive fs::write must fire: {got:?}");
    let msg = &lint_source("crates/service/src/fixture.rs", src, &lock_order())[0].message;
    assert!(
        msg.contains("service.queue") && msg.contains("save"),
        "message must name the held lock and the blocking path: {msg}"
    );
}

#[test]
fn heldlock_finding_is_suppressed_by_a_justified_allow() {
    let src = HELDLOCK_BAD.replace(
        "        let _ = stream.write_all(&buf);",
        "        // snn-lint: allow(L-HELDLOCK): single-client debug endpoint, contention impossible\n        let _ = stream.write_all(&buf);",
    );
    assert_eq!(findings("crates/service/src/fixture.rs", &src), vec![]);
}

#[test]
fn heldlock_ignores_condvar_waits() {
    // `wait_for` releases the mutex while parked — the canonical pattern
    // must stay silent.
    let src = "\
pub struct S { q: parking_lot::Mutex<u32>, cv: parking_lot::Condvar }
impl S {
    pub fn new() -> Self {
        Self { q: parking_lot::Mutex::named(\"service.queue\", 0), cv: parking_lot::Condvar::new() }
    }
    pub fn wait_nonzero(&self) -> u32 {
        let mut g = self.q.lock();
        while *g == 0 {
            self.cv.wait_for(&mut g, std::time::Duration::from_millis(100));
        }
        *g
    }
}
";
    assert_eq!(findings("crates/service/src/fixture.rs", src), vec![]);
}

// ---------------------------------------------------------------- L-LOCKGRAPH

/// Two functions acquiring the same pair of registered locks in opposite
/// orders: a textbook ABBA deadlock, visible statically as a cycle.
const LOCKGRAPH_CYCLIC: &str = "\
pub struct S { q: parking_lot::Mutex<u32>, j: parking_lot::Mutex<u32> }
impl S {
    pub fn new() -> Self {
        Self {
            q: parking_lot::Mutex::named(\"service.queue\", 0),
            j: parking_lot::Mutex::named(\"service.store.jobs\", 0),
        }
    }
    pub fn forward(&self) {
        let _a = self.q.lock();
        let _b = self.j.lock();
    }
    pub fn backward(&self) {
        let _b = self.j.lock();
        let _a = self.q.lock();
    }
}
";

fn lockgraph_findings(source: &str) -> Vec<snn_lint::Diagnostic> {
    let parsed = parse(source);
    let path = "crates/service/src/fixture.rs";
    let inputs = [facts::FileInput { path, parsed: &parsed }];
    let f = facts::Facts::build(&inputs, lock_order());
    let edges = facts::lock_edges(path, &parsed, &f);
    facts::check_lock_graph(&edges, &lock_order())
}

#[test]
fn lockgraph_reports_the_abba_cycle_and_the_rank_violation() {
    let got = lockgraph_findings(LOCKGRAPH_CYCLIC);
    assert!(
        got.iter().any(|d| d.message.contains("cycle")),
        "opposite-order acquisitions must surface as a cycle: {got:?}"
    );
    assert!(
        got.iter().any(|d| d.message.contains("LOCK_ORDER")
            && d.message.contains("service.store.jobs")
            && d.message.contains("service.queue")),
        "the backward edge must also violate the registered rank order: {got:?}"
    );
}

#[test]
fn lockgraph_accepts_consistent_nesting() {
    // Only the rank-respecting direction: one edge, no cycle, no finding.
    let consistent = LOCKGRAPH_CYCLIC.replace(
        "    pub fn backward(&self) {\n        let _b = self.j.lock();\n        let _a = self.q.lock();\n    }\n",
        "",
    );
    assert_ne!(consistent, LOCKGRAPH_CYCLIC, "fixture edit must apply");
    let got = lockgraph_findings(&consistent);
    assert!(got.is_empty(), "rank-respecting nesting must be clean: {got:?}");
}

#[test]
fn lockgraph_flags_reentrant_acquisition() {
    let src = "\
pub struct S { q: parking_lot::Mutex<u32> }
impl S {
    pub fn new() -> Self { Self { q: parking_lot::Mutex::named(\"service.queue\", 0) } }
    pub fn twice(&self) {
        let _a = self.q.lock();
        let _b = self.q.lock();
    }
}
";
    let got = lockgraph_findings(src);
    assert!(
        got.iter().any(|d| d.message.contains("re-entrant") || d.message.contains("reentrant")),
        "self-edge must be reported as re-entrant: {got:?}"
    );
}

// ---------------------------------------------------------------- L-WIRE

const WIRE_FIXTURE: &str = "\
use serde::{Deserialize, Serialize};

#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Grant {
    pub lease: u64,
    pub epoch: u64,
    pub note: Option<String>,
}

#[derive(Debug, Serialize, Deserialize)]
pub enum Msg {
    Hello { name: String, protocol: u64 },
    Bye,
}
";

fn schema_of(source: &str) -> (String, std::collections::HashMap<(String, String), u32>) {
    let parsed = parse(source);
    let inputs = [facts::FileInput { path: "crates/cluster/src/wire.rs", parsed: &parsed }];
    (facts::wire_schema_text(&inputs), facts::wire_type_lines(&inputs))
}

/// Diff a breaking edit of `WIRE_FIXTURE` against its own baseline.
fn breaking(edit: impl Fn(&str) -> String) -> Vec<snn_lint::Diagnostic> {
    let (baseline, _) = schema_of(WIRE_FIXTURE);
    let edited = edit(WIRE_FIXTURE);
    assert_ne!(edited, WIRE_FIXTURE, "fixture edit must apply");
    let (current, lines) = schema_of(&edited);
    facts::wire_breaking_changes(&baseline, &current, &lines)
}

#[test]
fn wire_removed_field_is_a_pointed_breaking_change() {
    let got = breaking(|s| s.replace("    pub epoch: u64,\n", ""));
    assert_eq!(got.len(), 1, "exactly one finding: {got:?}");
    let d = &got[0];
    assert_eq!(d.id, "L-WIRE");
    assert!(
        d.message.contains("epoch") && d.message.contains("Grant"),
        "must name the removed field and its type: {}",
        d.message
    );
    assert!(
        d.message.contains("PROTOCOL_VERSION"),
        "must point at the version-bump workflow: {}",
        d.message
    );
}

#[test]
fn wire_removed_variant_and_changed_type_are_breaking() {
    let got = breaking(|s| s.replace("    Bye,\n", ""));
    assert!(
        got.iter().any(|d| d.message.contains("Bye")),
        "removed variant must be named: {got:?}"
    );
    let got = breaking(|s| s.replace("pub lease: u64", "pub lease: u32"));
    assert!(
        got.iter().any(|d| d.message.contains("lease")
            && d.message.contains("u64")
            && d.message.contains("u32")),
        "field type change must show both types: {got:?}"
    );
}

#[test]
fn wire_new_required_field_is_breaking_but_new_optional_is_not() {
    let got = breaking(|s| {
        s.replace("    pub lease: u64,\n", "    pub lease: u64,\n    pub shard: u32,\n")
    });
    assert!(
        got.iter().any(|d| d.message.contains("shard")),
        "new required field breaks old senders: {got:?}"
    );
    let (baseline, _) = schema_of(WIRE_FIXTURE);
    let added = WIRE_FIXTURE
        .replace("    pub lease: u64,\n", "    pub lease: u64,\n    pub shard: Option<u32>,\n");
    let (current, lines) = schema_of(&added);
    let got = facts::wire_breaking_changes(&baseline, &current, &lines);
    assert!(got.is_empty(), "additive Option field is compatible: {got:?}");
}

#[test]
fn committed_wire_baseline_reproduces_byte_identically() {
    // The acceptance-gate half of L-WIRE: a fresh extraction from the
    // real protocol files must equal the committed baseline exactly.
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let fresh = snn_lint::extract_wire_schema(&root).expect("wire files must parse");
    let committed = std::fs::read_to_string(root.join(facts::WIRE_BASELINE_PATH))
        .expect("baseline must be committed (cargo run -p snn-lint -- --write-wire-baseline)");
    assert_eq!(
        committed, fresh,
        "committed wire_schema.txt drifted — regenerate with --write-wire-baseline"
    );
}

// ---------------------------------------------------------------- L-OBS

#[test]
fn obs_flags_metric_registered_in_two_files() {
    let a = parse("pub fn f() { snn_obs::counter!(\"snn_x_total\", \"X.\").inc(); }\n");
    let b = parse("pub fn g() { snn_obs::counter!(\"snn_x_total\", \"X again.\").inc(); }\n");
    let inputs = [
        facts::FileInput { path: "crates/core/src/a.rs", parsed: &a },
        facts::FileInput { path: "crates/core/src/b.rs", parsed: &b },
    ];
    let got = facts::check_obs_consistency(&inputs, None);
    assert_eq!(got.len(), 1, "second site flagged, first named: {got:?}");
    assert!(
        got[0].message.contains("snn_x_total") && got[0].message.contains("crates/core/src/a.rs")
    );
}

#[test]
fn obs_cross_checks_span_names_against_the_registry() {
    let used = parse("pub fn f() { let _s = snn_obs::span!(\"rogue.span\"); }\n");
    let inputs = [facts::FileInput { path: "crates/core/src/a.rs", parsed: &used }];
    let registry = vec![("declared.but.unused".to_string(), 3u32)];
    let got = facts::check_obs_consistency(&inputs, Some(&registry));
    assert!(
        got.iter().any(|d| d.message.contains("rogue.span") && d.message.contains("SPAN_NAMES")),
        "undeclared span must fire: {got:?}"
    );
    assert!(
        got.iter().any(|d| d.message.contains("declared.but.unused")
            && d.file == "crates/obs/src/span_names.rs"),
        "unused registry entry must fire at its declaration line: {got:?}"
    );
    // The good twin: usage and registry agree.
    let registry = vec![("rogue.span".to_string(), 3u32)];
    assert!(facts::check_obs_consistency(&inputs, Some(&registry)).is_empty());
}

#[test]
fn obs_metric_naming_rules_fire_per_file() {
    let src = "\
pub fn f() {
    snn_obs::counter!(\"snn_requests\", \"Requests.\").inc();
    snn_obs::histogram!(\"snn_latency_total\", \"Latency.\", &[1.0]).observe(1.0);
    snn_obs::gauge!(\"depth\", \"Depth.\").set(1.0);
}
";
    let got = findings("crates/core/src/metrics_fixture.rs", src);
    // Line 3 fires twice: `_total` on a non-counter AND a histogram
    // without a unit suffix.
    assert_eq!(
        got,
        vec![(2, "L-OBS"), (3, "L-OBS"), (3, "L-OBS"), (4, "L-OBS")],
        "counter without _total, histogram with _total and no unit, missing snn_ prefix"
    );
}

// ---------------------------------------------------------------- SARIF

#[test]
fn sarif_output_carries_the_v2_rule_ids() {
    // The same rule chain the CLI builds: per-file registry plus the
    // workspace-level checks.
    let rules: Vec<snn_lint::sarif::SarifRule> = passes::registry()
        .iter()
        .map(|p| snn_lint::sarif::SarifRule { id: p.id, short_description: p.summary.to_string() })
        .chain(passes::workspace_checks().into_iter().map(|(id, summary, _, _)| {
            snn_lint::sarif::SarifRule { id, short_description: summary.to_string() }
        }))
        .collect();
    let ds = vec![
        snn_lint::Diagnostic {
            file: "crates/service/src/server.rs".into(),
            line: 7,
            id: "L-HELDLOCK",
            message: "guard across blocking call".into(),
        },
        snn_lint::Diagnostic {
            file: "crates/lint/wire_schema.txt".into(),
            line: 1,
            id: "L-WIRE",
            message: "baseline drift".into(),
        },
    ];
    let out = snn_lint::sarif::render("snn-lint", "DESIGN.md", &rules, &ds, |_| {
        snn_lint::sarif::Level::Warning
    });
    for id in ["L-HELDLOCK", "L-LOCKGRAPH", "L-WIRE", "L-OBS"] {
        assert!(out.contains(&format!("\"id\":\"{id}\"")), "SARIF rules must include {id}");
    }
    assert!(out.contains("\"ruleId\":\"L-HELDLOCK\"") && out.contains("\"ruleId\":\"L-WIRE\""));
}

// ------------------------------------------------------- registries in sync

#[test]
fn lock_order_registries_must_match() {
    let service = lock_order();
    let drifted = vec!["service.queue".to_string()];
    assert!(facts::check_lock_order_registries(&service, Some(&service)).is_empty());
    let got = facts::check_lock_order_registries(&service, Some(&drifted));
    assert!(
        got.iter().any(|d| d.id == "L-LOCKGRAPH"),
        "registry drift must be an L-LOCKGRAPH finding: {got:?}"
    );
}
