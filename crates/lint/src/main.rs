//! `snn-lint` CLI: lint the workspace, print diagnostics, exit nonzero
//! on findings.
//!
//! ```text
//! snn-lint [--root <dir>] [--format text|json|sarif] [--list]
//! ```
//!
//! Exit codes: 0 clean, 1 findings, 2 usage or I/O error.

use std::path::PathBuf;
use std::process::ExitCode;

#[derive(Clone, Copy, PartialEq, Eq)]
enum Format {
    Text,
    Json,
    Sarif,
}

struct Args {
    root: Option<PathBuf>,
    format: Format,
    list: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args { root: None, format: Format::Text, list: false };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => {
                let value = it.next().ok_or("--root needs a directory argument")?;
                args.root = Some(PathBuf::from(value));
            }
            "--format" => match it.next().as_deref() {
                Some("json") => args.format = Format::Json,
                Some("text") => args.format = Format::Text,
                Some("sarif") => args.format = Format::Sarif,
                other => {
                    return Err(format!(
                        "--format expects `text`, `json` or `sarif`, got {:?}",
                        other.unwrap_or("<missing>")
                    ))
                }
            },
            "--list" => args.list = true,
            "--help" | "-h" => {
                println!(
                    "snn-lint: repo-native static analysis\n\n\
                     USAGE: snn-lint [--root <dir>] [--format text|json|sarif] [--list]\n\n\
                     Suppress a finding in-source with a justification:\n  \
                     // snn-lint: allow(<ID>): <why this is sound>\n\n\
                     See DESIGN.md §9 for every lint id and its rationale."
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument {other:?} (try --help)")),
        }
    }
    Ok(args)
}

/// Walks upward from the current directory to the first `Cargo.toml`
/// declaring `[workspace]`.
fn find_root() -> Result<PathBuf, String> {
    let mut dir = std::env::current_dir().map_err(|e| format!("cannot read cwd: {e}"))?;
    loop {
        let manifest = dir.join("Cargo.toml");
        if manifest.is_file() {
            if let Ok(text) = std::fs::read_to_string(&manifest) {
                if text.contains("[workspace]") {
                    return Ok(dir);
                }
            }
        }
        if !dir.pop() {
            return Err("no workspace root found above the current directory \
                        (pass --root explicitly)"
                .into());
        }
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    if args.list {
        for pass in snn_lint::passes::registry() {
            println!("{:<10} {}  [scope: {}]", pass.id, pass.summary, pass.scope);
        }
        println!(
            "{:<10} unused/unjustified allow directives (driver-level)  [scope: all scanned files]",
            snn_lint::ALLOW_ID
        );
        println!(
            "{:<10} vendored dependency drift vs vendor/README.md pins  [scope: vendor/, Cargo.toml]",
            snn_lint::VENDOR_ID
        );
        return ExitCode::SUCCESS;
    }
    let root = match args.root.map_or_else(find_root, Ok) {
        Ok(root) => root,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    let report = match snn_lint::run(&root) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    match args.format {
        Format::Json => {
            println!("{}", snn_lint::diag::to_json(&report.diagnostics, report.checked_files));
        }
        Format::Sarif => {
            let rules: Vec<snn_lint::sarif::SarifRule> = snn_lint::passes::registry()
                .iter()
                .map(|p| snn_lint::sarif::SarifRule {
                    id: p.id,
                    short_description: p.summary.to_string(),
                })
                .chain([
                    snn_lint::sarif::SarifRule {
                        id: snn_lint::ALLOW_ID,
                        short_description: "unused or unjustified allow directive".into(),
                    },
                    snn_lint::sarif::SarifRule {
                        id: snn_lint::VENDOR_ID,
                        short_description: "vendored dependency drift vs vendor/README.md pins"
                            .into(),
                    },
                ])
                .collect();
            println!(
                "{}",
                snn_lint::sarif::render(
                    "snn-lint",
                    "DESIGN.md",
                    &rules,
                    &report.diagnostics,
                    |_| { snn_lint::sarif::Level::Warning }
                )
            );
        }
        Format::Text => {
            for d in &report.diagnostics {
                println!("{}", d.render());
            }
            if report.is_clean() {
                println!("snn-lint: {} files checked, no findings", report.checked_files);
            } else {
                let counts = snn_lint::diag::count_by_id(&report.diagnostics);
                let summary: Vec<String> =
                    counts.iter().map(|(id, n)| format!("{n}× {id}")).collect();
                println!(
                    "snn-lint: {} findings in {} files checked ({})",
                    report.diagnostics.len(),
                    report.checked_files,
                    summary.join(", ")
                );
            }
        }
    }
    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
