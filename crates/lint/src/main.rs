//! `snn-lint` CLI: lint the workspace, print diagnostics, exit nonzero
//! on findings.
//!
//! ```text
//! snn-lint [--root <dir>] [--format text|json|sarif] [--list]
//!          [--explain <ID>] [--changed-only] [--threads N]
//!          [--write-wire-baseline | --check-wire-baseline]
//! ```
//!
//! Exit codes: 0 clean, 1 findings, 2 usage or I/O error.

use std::collections::BTreeSet;
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::time::Instant;

#[derive(Clone, Copy, PartialEq, Eq)]
enum Format {
    Text,
    Json,
    Sarif,
}

struct Args {
    root: Option<PathBuf>,
    format: Format,
    list: bool,
    explain: Option<String>,
    changed_only: bool,
    threads: Option<usize>,
    write_wire_baseline: bool,
    check_wire_baseline: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        root: None,
        format: Format::Text,
        list: false,
        explain: None,
        changed_only: false,
        threads: None,
        write_wire_baseline: false,
        check_wire_baseline: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => {
                let value = it.next().ok_or("--root needs a directory argument")?;
                args.root = Some(PathBuf::from(value));
            }
            "--format" => match it.next().as_deref() {
                Some("json") => args.format = Format::Json,
                Some("text") => args.format = Format::Text,
                Some("sarif") => args.format = Format::Sarif,
                other => {
                    return Err(format!(
                        "--format expects `text`, `json` or `sarif`, got {:?}",
                        other.unwrap_or("<missing>")
                    ))
                }
            },
            "--threads" => {
                let value = it.next().ok_or("--threads needs a count argument")?;
                let n: usize = value
                    .parse()
                    .map_err(|_| format!("--threads expects a number, got {value:?}"))?;
                if n == 0 {
                    return Err("--threads must be at least 1".into());
                }
                args.threads = Some(n);
            }
            "--list" => args.list = true,
            "--explain" => {
                let id = it.next().ok_or("--explain needs a lint id argument (e.g. L-DET-FLOW)")?;
                args.explain = Some(id);
            }
            "--changed-only" => args.changed_only = true,
            "--write-wire-baseline" => args.write_wire_baseline = true,
            "--check-wire-baseline" => args.check_wire_baseline = true,
            "--help" | "-h" => {
                println!(
                    "snn-lint: repo-native static analysis\n\n\
                     USAGE: snn-lint [--root <dir>] [--format text|json|sarif] [--list]\n       \
                     [--explain <ID>] [--changed-only] [--threads N]\n       \
                     [--write-wire-baseline | --check-wire-baseline]\n\n\
                     --explain <ID>        print one pass's rule, scope and rationale\n\
                     --changed-only        report findings only for files changed vs git HEAD\n\
                     --threads N           per-file analysis parallelism (default: cores, max 8)\n\
                     --write-wire-baseline regenerate crates/lint/wire_schema.txt and exit\n\
                     --check-wire-baseline verify the committed baseline is byte-identical\n\n\
                     Suppress a finding in-source with a justification:\n  \
                     // snn-lint: allow(<ID>): <why this is sound>\n\n\
                     See DESIGN.md §9, §15 and §16 for every lint id and its rationale."
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument {other:?} (try --help)")),
        }
    }
    if args.write_wire_baseline && args.check_wire_baseline {
        return Err("--write-wire-baseline and --check-wire-baseline are mutually exclusive".into());
    }
    Ok(args)
}

/// Walks upward from the current directory to the first `Cargo.toml`
/// declaring `[workspace]`.
fn find_root() -> Result<PathBuf, String> {
    let mut dir = std::env::current_dir().map_err(|e| format!("cannot read cwd: {e}"))?;
    loop {
        let manifest = dir.join("Cargo.toml");
        if manifest.is_file() {
            if let Ok(text) = std::fs::read_to_string(&manifest) {
                if text.contains("[workspace]") {
                    return Ok(dir);
                }
            }
        }
        if !dir.pop() {
            return Err("no workspace root found above the current directory \
                        (pass --root explicitly)"
                .into());
        }
    }
}

/// Workspace-relative `.rs` files changed vs `HEAD` (tracked diffs with
/// rename detection, plus untracked files). `--name-status -M` keeps a
/// renamed file's *new* path in scope — a plain `--name-only` diff lists
/// the old path only, silently dropping the file from the lint.
fn changed_files(root: &Path) -> Result<BTreeSet<String>, String> {
    let run = |git_args: &[&str]| -> Result<String, String> {
        let out = std::process::Command::new("git")
            .arg("-C")
            .arg(root)
            .args(git_args)
            .output()
            .map_err(|e| format!("cannot run git for --changed-only: {e}"))?;
        if !out.status.success() {
            return Err(format!(
                "git {} failed: {}",
                git_args.join(" "),
                String::from_utf8_lossy(&out.stderr).trim()
            ));
        }
        Ok(String::from_utf8_lossy(&out.stdout).into_owned())
    };
    let mut set = snn_lint::parse_git_name_status(&run(&["diff", "--name-status", "-M", "HEAD"])?);
    for line in run(&["ls-files", "--others", "--exclude-standard"])?.lines() {
        let line = line.trim();
        if line.ends_with(".rs") {
            set.insert(line.to_string());
        }
    }
    Ok(set)
}

fn wire_baseline_mode(root: &Path, write: bool) -> Result<(), String> {
    let schema = snn_lint::extract_wire_schema(root)?;
    let path = root.join(snn_lint::facts::WIRE_BASELINE_PATH);
    if write {
        std::fs::write(&path, &schema)
            .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
        println!("wrote {} ({} bytes)", snn_lint::facts::WIRE_BASELINE_PATH, schema.len());
        return Ok(());
    }
    let committed = std::fs::read_to_string(&path).map_err(|e| {
        format!("cannot read {} (run --write-wire-baseline first): {e}", path.display())
    })?;
    if committed == schema {
        println!(
            "wire-schema baseline is byte-identical to a fresh extraction ({} bytes)",
            schema.len()
        );
        Ok(())
    } else {
        Err(format!(
            "wire-schema baseline {} differs from a fresh extraction — protocol drift; \
             review the diff, then regenerate with --write-wire-baseline",
            snn_lint::facts::WIRE_BASELINE_PATH
        ))
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    if args.list {
        for pass in snn_lint::passes::registry() {
            println!("{:<12} {}  [scope: {}]", pass.id, pass.summary, pass.scope);
        }
        for (id, summary, scope, _) in snn_lint::passes::workspace_checks() {
            println!("{id:<12} {summary}  [scope: {scope}]");
        }
        println!(
            "{:<12} unused/unjustified allow directives (driver-level)  [scope: all scanned files]",
            snn_lint::ALLOW_ID
        );
        println!(
            "{:<12} vendored dependency drift vs vendor/README.md pins  [scope: vendor/, Cargo.toml]",
            snn_lint::VENDOR_ID
        );
        return ExitCode::SUCCESS;
    }
    if let Some(id) = &args.explain {
        let Some((summary, scope, explain)) = snn_lint::passes::explain(id) else {
            eprintln!("error: unknown lint id {id:?} — run `snn-lint --list` for every known id");
            return ExitCode::from(2);
        };
        println!("{id}: {summary}\n\nscope: {scope}\n\n{explain}");
        return ExitCode::SUCCESS;
    }
    let root = match args.root.map_or_else(find_root, Ok) {
        Ok(root) => root,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    if args.write_wire_baseline || args.check_wire_baseline {
        return match wire_baseline_mode(&root, args.write_wire_baseline) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        };
    }
    let mut opts = snn_lint::RunOptions::default();
    if let Some(n) = args.threads {
        opts.threads = n;
    }
    if args.changed_only {
        match changed_files(&root) {
            Ok(set) => opts.report_only = Some(set),
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::from(2);
            }
        }
    }
    let started = Instant::now();
    let report = match snn_lint::run_with_options(&root, &opts) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    let wall = started.elapsed();
    match args.format {
        Format::Json => {
            println!("{}", snn_lint::diag::to_json(&report.diagnostics, report.checked_files));
        }
        Format::Sarif => {
            let rules: Vec<snn_lint::sarif::SarifRule> = snn_lint::passes::registry()
                .iter()
                .map(|p| snn_lint::sarif::SarifRule {
                    id: p.id,
                    short_description: p.summary.to_string(),
                })
                .chain(snn_lint::passes::workspace_checks().into_iter().map(
                    |(id, summary, _, _)| snn_lint::sarif::SarifRule {
                        id,
                        short_description: summary.to_string(),
                    },
                ))
                .chain([
                    snn_lint::sarif::SarifRule {
                        id: snn_lint::ALLOW_ID,
                        short_description: "unused or unjustified allow directive".into(),
                    },
                    snn_lint::sarif::SarifRule {
                        id: snn_lint::VENDOR_ID,
                        short_description: "vendored dependency drift vs vendor/README.md pins"
                            .into(),
                    },
                ])
                .collect();
            println!(
                "{}",
                snn_lint::sarif::render(
                    "snn-lint",
                    "DESIGN.md",
                    &rules,
                    &report.diagnostics,
                    |_| { snn_lint::sarif::Level::Warning }
                )
            );
        }
        Format::Text => {
            for d in &report.diagnostics {
                println!("{}", d.render());
            }
            if report.is_clean() {
                println!("snn-lint: {} files checked, no findings", report.checked_files);
            } else {
                let counts = snn_lint::diag::count_by_id(&report.diagnostics);
                let summary: Vec<String> =
                    counts.iter().map(|(id, n)| format!("{n}× {id}")).collect();
                println!(
                    "snn-lint: {} findings in {} files checked ({})",
                    report.diagnostics.len(),
                    report.checked_files,
                    summary.join(", ")
                );
            }
        }
    }
    eprintln!(
        "snn-lint: analysis wall time {:.1} ms ({} thread{})",
        wall.as_secs_f64() * 1000.0,
        opts.threads,
        if opts.threads == 1 { "" } else { "s" }
    );
    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
