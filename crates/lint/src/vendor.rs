//! Vendored-dependency integrity check (`L-VENDOR`).
//!
//! `vendor/README.md` is the source of truth for which registry crate
//! each stand-in replaces and at which version. This check fails fast —
//! with a file:line diagnostic — when a vendored crate drifts from its
//! pinned version, when a crate exists with no README pin (or vice
//! versa), or when the root `Cargo.toml` requests a different version
//! than the one vendored. Without it, drift surfaces as a confusing
//! downstream resolver or API error.

use crate::diag::Diagnostic;
use crate::VENDOR_ID;
use std::fs;
use std::path::Path;

/// A version pin extracted from one README table row.
#[derive(Debug)]
struct Pin {
    crate_name: String,
    version: String,
    line: u32,
}

/// Runs the vendor integrity check under `root`. Missing `vendor/` is not
/// an error (a future layout may drop it); a present but inconsistent one
/// is.
pub fn check(root: &Path) -> Vec<Diagnostic> {
    let vendor_dir = root.join("vendor");
    if !vendor_dir.is_dir() {
        return Vec::new();
    }
    let mut out = Vec::new();

    let readme_path = vendor_dir.join("README.md");
    let readme = match fs::read_to_string(&readme_path) {
        Ok(text) => text,
        Err(e) => {
            out.push(Diagnostic {
                file: "vendor/README.md".into(),
                line: 1,
                id: VENDOR_ID,
                message: format!("cannot read the vendor version manifest: {e}"),
            });
            return out;
        }
    };
    let pins = parse_pins(&readme);
    if pins.is_empty() {
        out.push(Diagnostic {
            file: "vendor/README.md".into(),
            line: 1,
            id: VENDOR_ID,
            message: "no version pins found — the README table must list every vendored \
                      crate as `| `name` | <replaces> <version> | … |`"
                .into(),
        });
        return out;
    }

    // Every vendored crate must match its pin.
    let mut dirs: Vec<_> = match fs::read_dir(&vendor_dir) {
        Ok(rd) => rd.flatten().map(|e| e.path()).filter(|p| p.is_dir()).collect(),
        Err(_) => Vec::new(),
    };
    dirs.sort();
    for dir in &dirs {
        let Some(dir_name) = dir.file_name().and_then(|n| n.to_str()) else { continue };
        let manifest_rel = format!("vendor/{dir_name}/Cargo.toml");
        let Ok(manifest) = fs::read_to_string(dir.join("Cargo.toml")) else {
            out.push(Diagnostic {
                file: manifest_rel,
                line: 1,
                id: VENDOR_ID,
                message: "vendored crate has no readable Cargo.toml".into(),
            });
            continue;
        };
        let Some((version, version_line)) = toml_value(&manifest, "version") else {
            out.push(Diagnostic {
                file: manifest_rel,
                line: 1,
                id: VENDOR_ID,
                message: "vendored crate declares no version".into(),
            });
            continue;
        };
        let Some(pin) = pins.iter().find(|p| p.crate_name == dir_name) else {
            out.push(Diagnostic {
                file: manifest_rel,
                line: 1,
                id: VENDOR_ID,
                message: format!(
                    "vendored crate `{dir_name}` is not pinned in vendor/README.md — add it \
                     to the stand-in table with the registry version it replaces"
                ),
            });
            continue;
        };
        if !version_matches(&pin.version, &version) {
            out.push(Diagnostic {
                file: manifest_rel,
                line: version_line,
                id: VENDOR_ID,
                message: format!(
                    "vendored `{dir_name}` is version {version} but vendor/README.md (line {}) \
                     pins {} — update whichever is stale so the stand-in keeps matching the \
                     documented registry API",
                    pin.line, pin.version
                ),
            });
        }
    }

    // Every pin must have its crate directory.
    for pin in &pins {
        if !vendor_dir.join(&pin.crate_name).is_dir() {
            out.push(Diagnostic {
                file: "vendor/README.md".into(),
                line: pin.line,
                id: VENDOR_ID,
                message: format!(
                    "pinned crate `{}` has no vendor/{}/ directory",
                    pin.crate_name, pin.crate_name
                ),
            });
        }
    }

    // The workspace manifest must request compatible versions.
    out.extend(check_root_manifest(root, &pins));
    out
}

/// README table rows look like:
/// ``| `rand` | rand 0.8 | … |`` or ``| `serde` + `serde_derive` | serde 1 | … |``.
/// Every back-ticked name in the first cell is pinned to the trailing
/// version token of the second cell.
fn parse_pins(readme: &str) -> Vec<Pin> {
    let mut pins = Vec::new();
    for (idx, raw) in readme.lines().enumerate() {
        let line = raw.trim();
        if !line.starts_with('|') {
            continue;
        }
        let cells: Vec<&str> = line.trim_matches('|').split('|').map(str::trim).collect();
        if cells.len() < 2 {
            continue;
        }
        let names: Vec<String> = backticked(cells[0]);
        if names.is_empty() {
            continue;
        }
        let Some(version) = cells[1].split_whitespace().last() else { continue };
        if !version.chars().next().is_some_and(|c| c.is_ascii_digit()) {
            continue; // header or separator row
        }
        for name in names {
            pins.push(Pin {
                crate_name: name,
                version: version.to_string(),
                line: (idx + 1) as u32,
            });
        }
    }
    pins
}

fn backticked(cell: &str) -> Vec<String> {
    let mut names = Vec::new();
    let mut rest = cell;
    while let Some(open) = rest.find('`') {
        let tail = &rest[open + 1..];
        let Some(close) = tail.find('`') else { break };
        names.push(tail[..close].to_string());
        rest = &tail[close + 1..];
    }
    names
}

/// `pin` is a version prefix: `1` matches `1.0.219`, `0.8` matches `0.8.5`.
fn version_matches(pin: &str, actual: &str) -> bool {
    actual == pin || actual.starts_with(&format!("{pin}."))
}

/// First `key = "value"` assignment in a TOML text, with its 1-based line.
fn toml_value(toml: &str, key: &str) -> Option<(String, u32)> {
    for (idx, line) in toml.lines().enumerate() {
        let trimmed = line.trim();
        let Some(rest) = trimmed.strip_prefix(key) else { continue };
        let rest = rest.trim_start();
        let Some(rest) = rest.strip_prefix('=') else { continue };
        let rest = rest.trim_start();
        let Some(rest) = rest.strip_prefix('"') else { continue };
        let Some(close) = rest.find('"') else { continue };
        return Some((rest[..close].to_string(), (idx + 1) as u32));
    }
    None
}

/// Checks `[workspace.dependencies]` entries of the root manifest that
/// point into `vendor/`: their `version = "…"` request must match the
/// README pin for that crate.
fn check_root_manifest(root: &Path, pins: &[Pin]) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let Ok(manifest) = fs::read_to_string(root.join("Cargo.toml")) else {
        return out;
    };
    for (idx, line) in manifest.lines().enumerate() {
        let trimmed = line.trim();
        let Some(path_pos) = trimmed.find("path = \"vendor/") else { continue };
        let crate_name = trimmed[path_pos + "path = \"vendor/".len()..]
            .split('"')
            .next()
            .unwrap_or("")
            .to_string();
        let Some(version_pos) = trimmed.find("version = \"") else { continue };
        let requested =
            trimmed[version_pos + "version = \"".len()..].split('"').next().unwrap_or("");
        let Some(pin) = pins.iter().find(|p| p.crate_name == crate_name) else { continue };
        if requested != pin.version {
            out.push(Diagnostic {
                file: "Cargo.toml".into(),
                line: (idx + 1) as u32,
                id: VENDOR_ID,
                message: format!(
                    "workspace requests `{crate_name}` version {requested} but \
                     vendor/README.md (line {}) pins {} — keep the manifest and the pin in \
                     lock-step",
                    pin.line, pin.version
                ),
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pins_parse_from_table_rows() {
        let readme = "# x\n| crate | replaces | scope |\n| --- | --- | --- |\n\
                      | `rand` | rand 0.8 | stuff |\n\
                      | `serde` + `serde_derive` | serde 1 | stuff |\n";
        let pins = parse_pins(readme);
        assert_eq!(pins.len(), 3);
        assert_eq!(pins[0].crate_name, "rand");
        assert_eq!(pins[0].version, "0.8");
        assert_eq!(pins[2].crate_name, "serde_derive");
        assert_eq!(pins[2].version, "1");
    }

    #[test]
    fn version_prefix_matching() {
        assert!(version_matches("0.8", "0.8.5"));
        assert!(version_matches("1", "1.0.219"));
        assert!(version_matches("0.12", "0.12"));
        assert!(!version_matches("0.8", "0.9.0"));
        assert!(!version_matches("0.1", "0.12.1"));
    }

    #[test]
    fn toml_value_finds_line() {
        let toml = "[package]\nname = \"rand\"\nversion = \"0.8.5\"\n";
        assert_eq!(toml_value(toml, "version"), Some(("0.8.5".into(), 3)));
        assert_eq!(toml_value(toml, "missing"), None);
    }

    /// End-to-end over a synthetic vendor tree: drift is caught at the
    /// offending line; a consistent tree is clean.
    #[test]
    fn detects_drift_in_synthetic_tree() {
        let root = std::env::temp_dir().join(format!("snn-lint-vendor-{}", std::process::id()));
        let _ = fs::remove_dir_all(&root);
        fs::create_dir_all(root.join("vendor/rand")).unwrap();
        fs::write(
            root.join("vendor/README.md"),
            "| crate | replaces |\n| --- | --- |\n| `rand` | rand 0.8 |\n",
        )
        .unwrap();
        fs::write(
            root.join("vendor/rand/Cargo.toml"),
            "[package]\nname = \"rand\"\nversion = \"0.8.5\"\n",
        )
        .unwrap();
        fs::write(
            root.join("Cargo.toml"),
            "[workspace.dependencies]\nrand = { path = \"vendor/rand\", version = \"0.8\" }\n",
        )
        .unwrap();
        assert!(check(&root).is_empty());

        // Bump the vendored version without touching the pin: drift.
        fs::write(
            root.join("vendor/rand/Cargo.toml"),
            "[package]\nname = \"rand\"\nversion = \"0.9.0\"\n",
        )
        .unwrap();
        let out = check(&root);
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!(out[0].file, "vendor/rand/Cargo.toml");
        assert_eq!(out[0].line, 3);
        assert!(out[0].message.contains("pins 0.8"));
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn unpinned_crate_is_reported() {
        let root =
            std::env::temp_dir().join(format!("snn-lint-vendor-unpinned-{}", std::process::id()));
        let _ = fs::remove_dir_all(&root);
        fs::create_dir_all(root.join("vendor/mystery")).unwrap();
        fs::write(
            root.join("vendor/README.md"),
            "| crate | replaces |\n| --- | --- |\n| `rand` | rand 0.8 |\n",
        )
        .unwrap();
        fs::write(
            root.join("vendor/mystery/Cargo.toml"),
            "[package]\nname = \"mystery\"\nversion = \"0.1.0\"\n",
        )
        .unwrap();
        let out = check(&root);
        assert!(out.iter().any(|d| d.message.contains("not pinned")));
        assert!(out.iter().any(|d| d.message.contains("no vendor/rand/ directory")));
        let _ = fs::remove_dir_all(&root);
    }
}
