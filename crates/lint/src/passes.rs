//! The lint pass registry.
//!
//! Every pass has a stable id, a path-based scope, and a token-level
//! checker. Passes only see *live* tokens: `#[cfg(test)]` items and
//! `#[test]` functions are masked out before any pass runs, because test
//! code legitimately unwraps, compares floats exactly, and reads clocks.

use std::collections::BTreeSet;

use crate::diag::Diagnostic;
use crate::facts::{self, Facts};
use crate::lexer::{Token, TokenKind};
use crate::parser::ParsedFile;
use crate::{cfg, dataflow};

/// Everything a pass can see about one file.
pub struct FileContext<'a> {
    /// Workspace-relative path with forward slashes.
    pub path: &'a str,
    /// The full token stream.
    pub tokens: &'a [Token],
    /// `live[i] == false` marks token `i` as test-only code.
    pub live: &'a [bool],
    /// The registered service lock-order names (empty when the service
    /// crate or its lock-order list is absent).
    pub lock_order: &'a [String],
    /// The file's parse (items, fn bodies, lock bindings, obs sites).
    pub parsed: &'a ParsedFile,
    /// Workspace-level facts (lock maps, blocking closure, LOCK_ORDER).
    pub facts: &'a Facts,
}

impl FileContext<'_> {
    fn diag(&self, line: u32, id: &'static str, message: String) -> Diagnostic {
        Diagnostic { file: self.path.to_string(), line, id, message }
    }
}

/// One registered lint pass.
pub struct Pass {
    /// Stable id, e.g. `L-PANIC`.
    pub id: &'static str,
    /// One-line summary (shown by `--list`).
    pub summary: &'static str,
    /// Human description of the files the pass runs on.
    pub scope: &'static str,
    /// Rule and rationale paragraph (shown by `--explain <ID>`; the same
    /// table DESIGN.md renders).
    pub explain: &'static str,
    applies: fn(&str) -> bool,
    check: fn(&FileContext<'_>) -> Vec<Diagnostic>,
}

impl Pass {
    /// `true` when this pass runs on `path`.
    pub fn applies(&self, path: &str) -> bool {
        (self.applies)(path)
    }

    /// Runs the pass over one file.
    pub fn check(&self, ctx: &FileContext<'_>) -> Vec<Diagnostic> {
        (self.check)(ctx)
    }
}

/// Id used for allow-directive misuse findings (not a pass: directives
/// are checked by the driver).
pub const ALLOW_ID: &str = "L-ALLOW";

/// Id used for vendored-dependency drift findings (not a per-file token
/// pass: see [`crate::vendor`]).
pub const VENDOR_ID: &str = "L-VENDOR";

/// The registry, in reporting order.
pub fn registry() -> Vec<Pass> {
    vec![
        Pass {
            id: "L-PANIC",
            summary: "no unwrap/expect/panic!/todo!/unimplemented! in library code",
            scope: "crate libraries (crates/*/src, src/lib.rs); binaries, benches and \
                    test code are exempt",
            explain: "Library code must surface failures through each crate's typed error \
                      so callers can recover; a panic in a worker thread silently kills a \
                      campaign shard. Binaries and tests may panic (that is their error \
                      channel).",
            applies: is_library_code,
            check: check_panic,
        },
        Pass {
            id: "L-CAST",
            summary: "narrowing numeric `as` casts in kernel crates need a justification",
            scope: "crates/tensor, crates/core, crates/snn, crates/faults, crates/batch",
            explain: "The seed's one real bug was a silent f64→f32 truncation in a numeric \
                      kernel. Narrowing `as` casts there must be replaced with explicit \
                      conversions or justified with an allow stating the value range.",
            applies: is_kernel_crate,
            check: check_cast,
        },
        Pass {
            id: "L-FLOATEQ",
            summary: "float literal compared with == or !=",
            scope: "crate libraries (same as L-PANIC)",
            explain: "Exact float comparison is almost always a rounding bug. The one \
                      legitimate case — spike trains are exact 0.0/1.0 values — is stated \
                      in an allow justification.",
            applies: is_library_code,
            check: check_floateq,
        },
        Pass {
            id: "L-DET-CLOCK",
            summary: "wall-clock, entropy, thread-id or env source in reproducible code",
            scope: "crates/core, crates/faults, crates/batch, crates/obs, crates/reliability",
            explain: "Campaign outcomes must be bitwise-reproducible from the seed \
                      (digest equality across workers). This token pass bans the raw \
                      nondeterminism sources — Instant::now/SystemTime, thread_rng/\
                      from_entropy/rand::random, ThreadId, env::var*, pointer-as-value \
                      casts — outside the one sanctioned `snn_obs::clock` read. \
                      Subsumes and retires the v1 L-NONDET pass.",
            applies: is_reproducible_crate,
            check: check_det_clock,
        },
        Pass {
            id: "L-DET-FLOW",
            summary: "taint flow from a nondeterminism source into a serialized result",
            scope: "crates/faults, crates/batch, crates/cluster, crates/reliability, \
                    crates/analyze",
            explain: "Interprocedural may-taint analysis: wall-clock/RNG/thread-id/env \
                      reads and HashMap/HashSet iteration taint values, taint propagates \
                      through assignments, call arguments and return-value summaries, and \
                      must never reach verdict_digest/FNV inputs, wire writes \
                      (`write_line`) or result files (`fs::write`). The finding prints the \
                      full propagation chain. In-place `sort*` calls sanitize.",
            applies: is_digest_crate,
            check: check_det_flow,
        },
        Pass {
            id: "L-DET-ITER",
            summary: "HashMap/HashSet iteration in digest-equality code",
            scope: "crates/faults, crates/batch, crates/cluster, crates/reliability, \
                    crates/analyze",
            explain: "Iteration order over HashMap/HashSet differs per process, and \
                      pattern bindings (`for (k, v) in …`) defeat flow tracking — so in \
                      merge/report/serialization crates any unordered-collection \
                      iteration is flagged even without proven sink reach. Fix by \
                      switching to BTreeMap/BTreeSet or sorting before use.",
            applies: is_digest_crate,
            check: check_det_iter,
        },
        Pass {
            id: "L-LOCK",
            summary: "service/cluster locks must be named and registered in LOCK_ORDER",
            scope: "crates/service, crates/cluster, crates/reliability",
            explain: "Every lock in the multi-threaded crates is constructed with \
                      `Mutex::named(\"<name>\", …)` and the name registered in LOCK_ORDER \
                      so the static lock graph (L-LOCKGRAPH) can rank it.",
            applies: is_lock_disciplined_crate,
            check: check_lock,
        },
        Pass {
            id: "L-HELDLOCK",
            summary: "no MutexGuard/RwLock guard live across a blocking operation",
            scope: "crates/service, crates/cluster, crates/reliability",
            explain: "Guard dataflow over each function's CFG: a blocking call (network, \
                      disk, channel recv, thread join — including transitively through \
                      the name-resolved call graph) while a named guard may be live \
                      stalls every thread behind that lock. Fix by narrowing the guard \
                      scope, not by allowing.",
            applies: is_lock_disciplined_crate,
            check: check_heldlock,
        },
        Pass {
            id: "L-OBS",
            summary: "snn_* metric naming conventions and one-registry span names",
            scope: "crate libraries (same as L-PANIC); cross-file half runs \
                    workspace-wide",
            explain: "Metrics: `snn_` prefix, counters end `_total`, histograms carry a \
                      base-unit suffix, one registration site per name. Spans: every \
                      span!/enter_with_parent name must be declared in SPAN_NAMES and \
                      every declared name used.",
            applies: is_library_code,
            check: check_obs,
        },
    ]
}

/// Id of the workspace-level lock-graph check (not a per-file pass: it
/// consumes guard dataflow from every lock-disciplined file at once).
pub const LOCKGRAPH_ID: &str = "L-LOCKGRAPH";

/// Id of the workspace-level wire-schema check (baseline drift and
/// breaking protocol changes).
pub const WIRE_ID: &str = "L-WIRE";

/// Descriptors for the workspace-level checks, shown by `--list`
/// alongside the per-file registry: (id, summary, scope, explain).
pub fn workspace_checks() -> Vec<(&'static str, &'static str, &'static str, &'static str)> {
    vec![
        (
            LOCKGRAPH_ID,
            "static lock-acquisition graph: acyclic, LOCK_ORDER-consistent, no re-entry",
            "crates/service, crates/cluster, crates/reliability (whole-workspace)",
            "Collects every (held, acquired) lock pair from the guard dataflow of all \
             lock-disciplined files at once, then checks the graph is acyclic, free of \
             re-entrant acquisition, and consistent with the LOCK_ORDER ranks. Cycle \
             findings print the full lock path.",
        ),
        (
            WIRE_ID,
            "wire-protocol schema matches the committed baseline; no breaking drift",
            "crates/service/src/protocol.rs, crates/cluster/src/wire.rs",
            "Extracts the serde-facing shape of the protocol types and compares it with \
             the committed wire_schema.txt baseline: removed/renamed types or fields, \
             changed field types and new required fields are breaking (v1–v4 peers must \
             keep decoding). Intentional changes regenerate the baseline with \
             --write-wire-baseline and, if breaking, bump PROTOCOL_VERSION.",
        ),
    ]
}

/// Rationale shown by `--explain L-ALLOW` (driver-level, not a pass).
pub const ALLOW_EXPLAIN: &str =
    "Findings are suppressed in-source with `// snn-lint: allow(<ID>): <why>`. A \
     directive with no justification text, one naming an unknown lint id (e.g. a \
     retired pass), or one that no longer suppresses anything is itself a finding, so \
     the allow list can never silently rot.";

/// Rationale shown by `--explain L-VENDOR` (driver-level, not a pass).
pub const VENDOR_EXPLAIN: &str =
    "Vendored dependencies are pinned in vendor/README.md; this check detects drift \
     between the pins, the vendored sources and the workspace Cargo.toml patch table.";

/// Ids of every finding the tool can emit (passes plus driver-level ids).
pub fn known_ids() -> Vec<&'static str> {
    let mut ids: Vec<&'static str> = registry().iter().map(|p| p.id).collect();
    ids.push(LOCKGRAPH_ID);
    ids.push(WIRE_ID);
    ids.push(ALLOW_ID);
    ids.push(VENDOR_ID);
    ids
}

/// The (summary, scope, rationale) triple behind `--explain <ID>`; `None`
/// for unknown ids.
pub fn explain(id: &str) -> Option<(&'static str, &'static str, &'static str)> {
    for p in registry() {
        if p.id == id {
            return Some((p.summary, p.scope, p.explain));
        }
    }
    for (wid, summary, scope, explain) in workspace_checks() {
        if wid == id {
            return Some((summary, scope, explain));
        }
    }
    match id {
        _ if id == ALLOW_ID => Some((
            "unused or unjustified allow directives (driver-level)",
            "all scanned files",
            ALLOW_EXPLAIN,
        )),
        _ if id == VENDOR_ID => Some((
            "vendored dependency drift vs vendor/README.md pins",
            "vendor/, Cargo.toml",
            VENDOR_EXPLAIN,
        )),
        _ => None,
    }
}

// ---------------------------------------------------------------------------
// Scopes
// ---------------------------------------------------------------------------

fn is_library_code(path: &str) -> bool {
    if path.contains("/bin/") || path == "src/main.rs" {
        return false;
    }
    if path.starts_with("crates/bench/") {
        return false;
    }
    (path.starts_with("crates/") && path.contains("/src/")) || path == "src/lib.rs"
}

fn is_kernel_crate(path: &str) -> bool {
    // crates/batch is a numeric kernel too: its packed LIF sweep promises
    // bitwise equality with the scalar path, so a silent narrowing cast
    // there is exactly the bug class this pass exists for.
    [
        "crates/tensor/src/",
        "crates/core/src/",
        "crates/snn/src/",
        "crates/faults/src/",
        "crates/batch/src/",
    ]
    .iter()
    .any(|p| path.starts_with(p))
}

fn is_reproducible_crate(path: &str) -> bool {
    // crates/obs is in scope so that the single sanctioned
    // `Instant::now()` in its clock module stays the only raw monotonic
    // read — every other crate goes through `snn_obs::clock`.
    // crates/reliability is in scope because campaign scoring must be a
    // pure function of the spec — any wall-clock or entropy read there
    // would break digest equality across workers.
    // crates/batch is in scope because packed verdicts feed the same
    // digest-equality gate as the scalar engine's.
    path.starts_with("crates/core/src/")
        || path.starts_with("crates/faults/src/")
        || path.starts_with("crates/batch/src/")
        || path.starts_with("crates/obs/src/")
        || path.starts_with("crates/reliability/src/")
}

fn is_digest_crate(path: &str) -> bool {
    // The crates whose outputs are gated on digest equality: fault
    // verdicts (faults), sharded merge (cluster), campaign distribution
    // (reliability) and collapse/expansion (analyze). crates/service is
    // deliberately out: job metadata legitimately carries wall-clock
    // timestamps and never feeds a verdict digest.
    crate::taint::in_digest_crates(path)
}

fn is_lock_disciplined_crate(path: &str) -> bool {
    // The crates share one process-wide lock-order registry (first
    // registration wins), so each must name every lock from it.
    // crates/reliability holds no locks today; keeping it in scope means
    // any future lock there must be named and registered from day one.
    path.starts_with("crates/service/src/")
        || path.starts_with("crates/cluster/src/")
        || path.starts_with("crates/reliability/src/")
}

// ---------------------------------------------------------------------------
// Token-pattern helpers
// ---------------------------------------------------------------------------

/// Iterator over live token indices.
fn live_indices<'a>(ctx: &'a FileContext<'_>) -> impl Iterator<Item = usize> + 'a {
    (0..ctx.tokens.len()).filter(|&i| ctx.live[i])
}

fn prev_live<'a>(ctx: &FileContext<'a>, i: usize) -> Option<&'a Token> {
    (0..i).rev().find(|&j| ctx.live[j]).map(|j| &ctx.tokens[j])
}

fn next_live<'a>(ctx: &FileContext<'a>, i: usize) -> Option<&'a Token> {
    (i + 1..ctx.tokens.len()).find(|&j| ctx.live[j]).map(|j| &ctx.tokens[j])
}

// ---------------------------------------------------------------------------
// L-PANIC
// ---------------------------------------------------------------------------

const PANICKY_METHODS: &[&str] = &["unwrap", "expect", "unwrap_err", "expect_err"];
const PANICKY_MACROS: &[&str] = &["panic", "todo", "unimplemented"];

fn check_panic(ctx: &FileContext<'_>) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for i in live_indices(ctx) {
        let t = &ctx.tokens[i];
        if t.kind != TokenKind::Ident {
            continue;
        }
        if PANICKY_METHODS.contains(&t.text.as_str())
            && prev_live(ctx, i).is_some_and(|p| p.is_punct("."))
            && next_live(ctx, i).is_some_and(|n| n.is_punct("("))
        {
            out.push(ctx.diag(
                t.line,
                "L-PANIC",
                format!(
                    "`.{}()` in library code — return the crate's typed error instead \
                     (or justify with an allow)",
                    t.text
                ),
            ));
        }
        if PANICKY_MACROS.contains(&t.text.as_str())
            && next_live(ctx, i).is_some_and(|n| n.is_punct("!"))
            && !prev_live(ctx, i).is_some_and(|p| p.is_punct("::"))
        {
            out.push(ctx.diag(
                t.line,
                "L-PANIC",
                format!(
                    "`{}!` in library code — return the crate's typed error instead \
                     (or justify with an allow)",
                    t.text
                ),
            ));
        }
    }
    out
}

// ---------------------------------------------------------------------------
// L-CAST
// ---------------------------------------------------------------------------

/// Target types a numeric `as` cast can narrow into. `f32` is the class
/// of the seed bug (an f64 intermediate silently truncated); the small
/// integer types cover float→int truncation and integer narrowing.
const NARROW_TARGETS: &[&str] = &["f32", "i8", "u8", "i16", "u16", "i32", "u32"];

fn check_cast(ctx: &FileContext<'_>) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for i in live_indices(ctx) {
        let t = &ctx.tokens[i];
        if !t.is_ident("as") {
            continue;
        }
        let Some(target) = next_live(ctx, i) else { continue };
        if target.kind == TokenKind::Ident && NARROW_TARGETS.contains(&target.text.as_str()) {
            out.push(ctx.diag(
                t.line,
                "L-CAST",
                format!(
                    "potentially lossy `as {}` cast in a numeric kernel — make the \
                     conversion explicit (From/TryFrom, or keep one precision) or \
                     justify with an allow",
                    target.text
                ),
            ));
        }
    }
    out
}

// ---------------------------------------------------------------------------
// L-FLOATEQ
// ---------------------------------------------------------------------------

fn check_floateq(ctx: &FileContext<'_>) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for i in live_indices(ctx) {
        let t = &ctx.tokens[i];
        if !(t.is_punct("==") || t.is_punct("!=")) {
            continue;
        }
        let float_operand = prev_live(ctx, i).is_some_and(|p| p.kind == TokenKind::Float)
            || next_live(ctx, i).is_some_and(|n| n.kind == TokenKind::Float);
        if float_operand {
            out.push(ctx.diag(
                t.line,
                "L-FLOATEQ",
                format!(
                    "float literal compared with `{}` — use an epsilon (or justify: spike \
                     trains are exact 0.0/1.0 values)",
                    t.text
                ),
            ));
        }
    }
    out
}

// ---------------------------------------------------------------------------
// L-DET-CLOCK (token half of the determinism family; subsumes v1 L-NONDET)
// ---------------------------------------------------------------------------

fn check_det_clock(ctx: &FileContext<'_>) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    // Live tokens in order, for multi-token lookahead patterns.
    let idx: Vec<usize> = live_indices(ctx).collect();
    let tok = |p: usize| idx.get(p).map(|&i| &ctx.tokens[i]);
    for (p, &ti) in idx.iter().enumerate() {
        let t = &ctx.tokens[ti];
        if t.kind != TokenKind::Ident {
            continue;
        }
        let prev = p.checked_sub(1).and_then(&tok);
        let prev2 = p.checked_sub(2).and_then(&tok);
        let finding = match t.text.as_str() {
            "Instant" if tok(p + 1).is_some_and(|n| n.is_punct("::")) => {
                Some("`Instant::now()` is a wall-clock read".to_string())
            }
            "SystemTime" => Some("`SystemTime` is a wall-clock read".to_string()),
            "thread_rng" => Some("`thread_rng()` is unseeded — use a seeded StdRng".to_string()),
            "from_entropy" => Some("`from_entropy()` is unseeded — use seed_from_u64".to_string()),
            "random"
                if prev.is_some_and(|x| x.is_punct("::"))
                    && tok(p + 1).is_some_and(|n| n.is_punct("(")) =>
            {
                Some("`rand::random()` is unseeded — use a seeded StdRng".to_string())
            }
            "ThreadId" => Some("`ThreadId` values differ across runs".to_string()),
            "current"
                if prev.is_some_and(|x| x.is_punct("::"))
                    && prev2.is_some_and(|x| x.is_ident("thread"))
                    && tok(p + 1).is_some_and(|n| n.is_punct("(")) =>
            {
                Some("`thread::current()` exposes thread identity".to_string())
            }
            "var" | "vars" | "var_os"
                if prev.is_some_and(|x| x.is_punct("::"))
                    && prev2.is_some_and(|x| x.is_ident("env")) =>
            {
                Some(format!("`env::{}()` reads ambient process state", t.text))
            }
            "as_ptr" | "as_mut_ptr"
                if tok(p + 1).is_some_and(|n| n.is_punct("("))
                    && tok(p + 2).is_some_and(|n| n.is_punct(")"))
                    && tok(p + 3).is_some_and(|n| n.is_ident("as"))
                    && tok(p + 4).is_some_and(|n| {
                        matches!(n.text.as_str(), "usize" | "u64" | "isize" | "i64")
                    }) =>
            {
                Some(format!(
                    "`{}() as {}` turns an allocation address into a value; addresses \
                     differ per run (ASLR)",
                    t.text,
                    tok(p + 4).map_or("usize", |n| n.text.as_str())
                ))
            }
            _ => None,
        };
        if let Some(msg) = finding {
            out.push(ctx.diag(
                t.line,
                "L-DET-CLOCK",
                format!(
                    "{msg}; results must be reproducible from the seed — route time \
                     through `snn_obs::clock` and randomness through a seeded StdRng \
                     (wall-clock budgets are legitimate — justify them with an allow)"
                ),
            ));
        }
    }
    out
}

// ---------------------------------------------------------------------------
// L-DET-FLOW / L-DET-ITER (dataflow half; see crate::taint)
// ---------------------------------------------------------------------------

fn check_det_flow(ctx: &FileContext<'_>) -> Vec<Diagnostic> {
    crate::taint::flow_findings(ctx.path, ctx.parsed, ctx.facts)
}

fn check_det_iter(ctx: &FileContext<'_>) -> Vec<Diagnostic> {
    crate::taint::iter_findings(ctx.path, ctx.parsed, ctx.facts)
}

// ---------------------------------------------------------------------------
// L-LOCK
// ---------------------------------------------------------------------------

const LOCK_TYPES: &[&str] = &["Mutex", "RwLock"];

fn check_lock(ctx: &FileContext<'_>) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for i in live_indices(ctx) {
        let t = &ctx.tokens[i];
        if t.kind != TokenKind::Ident || !LOCK_TYPES.contains(&t.text.as_str()) {
            continue;
        }
        // Match `Mutex::new`, `Mutex::default`, `Mutex::named("…")`.
        let Some(sep) = next_live(ctx, i) else { continue };
        if !sep.is_punct("::") {
            continue;
        }
        let idx_method = (i + 1..ctx.tokens.len()).filter(|&j| ctx.live[j]).nth(1);
        let Some(j) = idx_method else { continue };
        let method = &ctx.tokens[j];
        if method.kind != TokenKind::Ident {
            continue;
        }
        match method.text.as_str() {
            "new" | "default" => out.push(ctx.diag(
                t.line,
                "L-LOCK",
                format!(
                    "unnamed `{}::{}` in a lock-disciplined crate — construct with \
                     `{}::named(\"<name>\", …)` using a name from LOCK_ORDER \
                     (crates/service/src/lock_order.rs)",
                    t.text, method.text, t.text
                ),
            )),
            "named" => {
                let name = (j + 1..ctx.tokens.len())
                    .filter(|&k| ctx.live[k])
                    .map(|k| &ctx.tokens[k])
                    .nth(1); // skip the `(`
                match name {
                    Some(n) if n.kind == TokenKind::Str => {
                        if !ctx.lock_order.iter().any(|o| o == &n.text) {
                            out.push(ctx.diag(
                                n.line,
                                "L-LOCK",
                                format!(
                                    "lock name {:?} is not registered in LOCK_ORDER \
                                     (crates/service/src/lock_order.rs) — add it at its \
                                     acquisition rank",
                                    n.text
                                ),
                            ));
                        }
                    }
                    _ => out.push(ctx.diag(
                        t.line,
                        "L-LOCK",
                        format!(
                            "`{}::named` must take a string literal name so the \
                             lock-order list can be checked statically",
                            t.text
                        ),
                    )),
                }
            }
            _ => {}
        }
    }
    out
}

// ---------------------------------------------------------------------------
// L-HELDLOCK
// ---------------------------------------------------------------------------

/// Flags blocking calls reached while a named-lock guard may still be
/// live, per function, via the guard dataflow of [`crate::dataflow`].
fn check_heldlock(ctx: &FileContext<'_>) -> Vec<Diagnostic> {
    let lock_of = ctx.facts.lock_of(ctx.path);
    // The parser records nested fns both standalone and inside their
    // parent's body, so identical findings can surface twice: dedup.
    let mut seen: BTreeSet<(u32, String)> = BTreeSet::new();
    let mut out = Vec::new();
    for fun in &ctx.parsed.fns {
        let g = cfg::build(fun, &lock_of);
        if g.guards.is_empty() {
            continue;
        }
        let flow = dataflow::held_guards(&g);
        for (i, node) in g.nodes.iter().enumerate() {
            let cfg::Node::Call(c) = node else { continue };
            let Some(held) = flow[i].as_ref().filter(|h| !h.is_empty()) else { continue };
            let Some(reason) = facts::blocking_reason(c, ctx.facts) else { continue };
            let held_desc: Vec<String> = held
                .iter()
                .filter_map(|&gid| g.guards.get(gid))
                .map(|gi| format!("`{}` (acquired line {})", gi.lock, gi.line))
                .collect();
            let message = format!(
                "blocking operation while holding {}: {reason} — narrow the guard scope \
                 (drop or end the guard's block before blocking) so one stalled peer \
                 cannot wedge every thread behind the lock",
                held_desc.join(", ")
            );
            if seen.insert((c.line, message.clone())) {
                out.push(ctx.diag(c.line, "L-HELDLOCK", message));
            }
        }
    }
    out
}

// ---------------------------------------------------------------------------
// L-OBS (per-file half; the cross-file half lives in crate::facts)
// ---------------------------------------------------------------------------

fn check_obs(ctx: &FileContext<'_>) -> Vec<Diagnostic> {
    facts::metric_naming_findings(ctx.path, ctx.parsed)
}

// ---------------------------------------------------------------------------
// Test-code masking
// ---------------------------------------------------------------------------

/// Computes the live-token mask: tokens belonging to `#[cfg(test)]` /
/// `#[test]` items (attribute included) are dead.
pub fn live_mask(tokens: &[Token]) -> Vec<bool> {
    let mut live = vec![true; tokens.len()];
    let mut i = 0usize;
    while i < tokens.len() {
        if tokens[i].is_punct("#") && tokens.get(i + 1).is_some_and(|t| t.is_punct("[")) {
            let (attr_end, is_test) = scan_attribute(tokens, i + 1);
            if is_test {
                let item_end = scan_item_end(tokens, attr_end);
                for slot in live.iter_mut().take(item_end).skip(i) {
                    *slot = false;
                }
                i = item_end;
                continue;
            }
            i = attr_end;
            continue;
        }
        i += 1;
    }
    live
}

/// Scans one `[…]` attribute starting at its `[`; returns the index one
/// past the closing `]` and whether the attribute marks test-only code.
fn scan_attribute(tokens: &[Token], open: usize) -> (usize, bool) {
    let mut depth = 0usize;
    let mut has_test = false;
    let mut has_not = false;
    let mut j = open;
    while j < tokens.len() {
        let t = &tokens[j];
        if t.is_punct("[") {
            depth += 1;
        } else if t.is_punct("]") {
            depth -= 1;
            if depth == 0 {
                j += 1;
                break;
            }
        } else if t.kind == TokenKind::Ident {
            if t.text == "test" {
                has_test = true;
            } else if t.text == "not" {
                has_not = true;
            }
        }
        j += 1;
    }
    (j, has_test && !has_not)
}

/// From the token after a test attribute, finds the end of the annotated
/// item: past any further attributes, then either a top-level `;` or the
/// matching `}` of the item's first brace.
fn scan_item_end(tokens: &[Token], mut i: usize) -> usize {
    // Skip stacked attributes (e.g. `#[cfg(test)] #[allow(…)] mod t {…}`).
    while i < tokens.len()
        && tokens[i].is_punct("#")
        && tokens.get(i + 1).is_some_and(|t| t.is_punct("["))
    {
        let (end, _) = scan_attribute(tokens, i + 1);
        i = end;
    }
    let mut brace_depth = 0usize;
    while i < tokens.len() {
        let t = &tokens[i];
        if t.is_punct("{") {
            brace_depth += 1;
        } else if t.is_punct("}") {
            brace_depth = brace_depth.saturating_sub(1);
            if brace_depth == 0 {
                return i + 1;
            }
        } else if t.is_punct(";") && brace_depth == 0 {
            return i + 1;
        }
        i += 1;
    }
    i
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn run_pass(id: &str, path: &str, src: &str) -> Vec<Diagnostic> {
        run_pass_with_locks(id, path, src, &[])
    }

    fn run_pass_with_locks(
        id: &str,
        path: &str,
        src: &str,
        lock_order: &[String],
    ) -> Vec<Diagnostic> {
        let lexed = lex(src);
        let live = live_mask(&lexed.tokens);
        let parsed = crate::parser::parse(&lexed.tokens, &live);
        let inputs = [facts::FileInput { path, parsed: &parsed }];
        let facts = Facts::build(&inputs, lock_order.to_vec());
        let ctx = FileContext {
            path,
            tokens: &lexed.tokens,
            live: &live,
            lock_order,
            parsed: &parsed,
            facts: &facts,
        };
        let passes = registry();
        let pass = passes.iter().find(|p| p.id == id).expect("pass exists");
        assert!(pass.applies(path), "scope must include {path}");
        pass.check(&ctx)
    }

    #[test]
    fn panic_pass_flags_unwrap_expect_and_macros() {
        let src = "fn f() { x.unwrap(); y.expect(\"m\"); panic!(\"boom\"); todo!(); }";
        let out = run_pass("L-PANIC", "crates/snn/src/sim.rs", src);
        assert_eq!(out.len(), 4);
    }

    #[test]
    fn panic_pass_ignores_non_panicking_lookalikes() {
        let src = "fn f() { x.unwrap_or(0); x.unwrap_or_else(|| 1); std::panic::catch_unwind(g); }";
        let out = run_pass("L-PANIC", "crates/snn/src/sim.rs", src);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn test_code_is_masked() {
        let src = "fn ok() {}\n#[cfg(test)]\nmod tests { fn f() { x.unwrap(); } }";
        let out = run_pass("L-PANIC", "crates/snn/src/sim.rs", src);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn cfg_not_test_is_not_masked() {
        let src = "#[cfg(not(test))]\nfn f() { x.unwrap(); }";
        let out = run_pass("L-PANIC", "crates/snn/src/sim.rs", src);
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn cast_pass_flags_narrowing_only() {
        let src = "fn f(x: f64, n: usize) -> f32 { let _ = n as f64; (x as f32) + n as f32 }";
        let out = run_pass("L-CAST", "crates/tensor/src/ops.rs", src);
        assert_eq!(out.len(), 2, "{out:?}");
        assert!(out.iter().all(|d| d.id == "L-CAST"));
    }

    #[test]
    fn floateq_flags_literal_comparisons() {
        let src = "fn f(v: f32) -> bool { v == 0.0 || v != 1.0 || 2 == 2 }";
        let out = run_pass("L-FLOATEQ", "crates/tensor/src/tensor.rs", src);
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn det_clock_flags_clocks_and_entropy() {
        let src = "fn f() { let t = Instant::now(); let r = StdRng::from_entropy(); }";
        let out = run_pass("L-DET-CLOCK", "crates/core/src/generator.rs", src);
        assert_eq!(out.len(), 2);
        assert!(out.iter().all(|d| d.id == "L-DET-CLOCK"));
    }

    #[test]
    fn det_clock_flags_new_source_classes() {
        let src = "fn f(v: &[u8]) -> u64 {\n    let x: u64 = rand::random();\n    \
                   let e = env::var(\"SNN_SEED\");\n    let t = thread::current();\n    \
                   let p = v.as_ptr() as usize;\n    x\n}";
        let out = run_pass("L-DET-CLOCK", "crates/core/src/generator.rs", src);
        assert_eq!(out.len(), 4, "{out:?}");
    }

    #[test]
    fn det_clock_ignores_benign_lookalikes() {
        // `random` as a method (seeded rng.random()), `var` without the
        // env:: path, as_ptr without an `as usize` cast.
        let src = "fn f(rng: &mut StdRng, v: &[u8]) -> f32 {\n    let x: f32 = rng.random();\n    \
                   let var = 1.0;\n    let p = v.as_ptr();\n    x + var\n}";
        let out = run_pass("L-DET-CLOCK", "crates/core/src/generator.rs", src);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn lock_pass_requires_named_registered_locks() {
        let order = vec!["service.queue".to_string()];
        let src = "fn f() { let a = Mutex::new(1); let b = Mutex::named(\"service.queue\", 2); \
                   let c = RwLock::named(\"service.rogue\", 3); }";
        let out = run_pass_with_locks("L-LOCK", "crates/service/src/server.rs", src, &order);
        assert_eq!(out.len(), 2, "{out:?}");
        assert!(out[0].message.contains("unnamed"));
        assert!(out[1].message.contains("service.rogue"));
    }

    #[test]
    fn lock_pass_covers_the_cluster_crate() {
        let order = vec!["cluster.coordinator".to_string()];
        let src = "fn f() { let a = Mutex::new(1); \
                   let b = Mutex::named(\"cluster.coordinator\", 2); \
                   let c = Mutex::named(\"cluster.rogue\", 3); }";
        let out = run_pass_with_locks("L-LOCK", "crates/cluster/src/coordinator.rs", src, &order);
        assert_eq!(out.len(), 2, "{out:?}");
        assert!(out[0].message.contains("unnamed"));
        assert!(out[1].message.contains("cluster.rogue"));
    }

    #[test]
    fn scopes_exclude_binaries_and_bench() {
        assert!(!is_library_code("src/main.rs"));
        assert!(!is_library_code("crates/bench/src/lib.rs"));
        assert!(!is_library_code("crates/bench/src/bin/scaling.rs"));
        assert!(is_library_code("crates/service/src/server.rs"));
        assert!(is_library_code("src/lib.rs"));
        assert!(!is_kernel_crate("crates/datasets/src/gesture_like.rs"));
        assert!(is_kernel_crate("crates/faults/src/sim.rs"));
    }

    #[test]
    fn heldlock_flags_blocking_call_under_guard() {
        let order = vec!["service.queue".to_string()];
        let src = "fn mk() { let queue = Mutex::named(\"service.queue\", Vec::new()); }\n\
                   fn f(s: &S) {\n    let g = s.queue.lock();\n    s.stream.write_all(b\"x\");\n}\n";
        let out = run_pass_with_locks("L-HELDLOCK", "crates/service/src/server.rs", src, &order);
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!(out[0].line, 4);
        assert!(out[0].message.contains("service.queue"));
    }

    #[test]
    fn heldlock_accepts_narrowed_guard() {
        let order = vec!["service.queue".to_string()];
        let src = "fn mk() { let queue = Mutex::named(\"service.queue\", Vec::new()); }\n\
                   fn f(s: &S) {\n    { let g = s.queue.lock(); g.push(1); }\n    \
                   s.stream.write_all(b\"x\");\n}\n";
        let out = run_pass_with_locks("L-HELDLOCK", "crates/service/src/server.rs", src, &order);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn obs_pass_checks_metric_naming() {
        let src = "fn f() {\n    counter!(\"snn_jobs\", \"jobs\").inc();\n    \
                   histogram!(\"snn_latency_seconds\", \"latency\").observe(0.1);\n}\n";
        let out = run_pass("L-OBS", "crates/service/src/metrics.rs", src);
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].message.contains("_total"));
    }

    #[test]
    fn item_without_body_is_skipped_correctly() {
        let src = "#[cfg(test)]\nuse helper::thing;\nfn f() { x.unwrap(); }";
        let out = run_pass("L-PANIC", "crates/snn/src/sim.rs", src);
        assert_eq!(out.len(), 1, "code after the bodyless item stays live");
    }
}
