//! A minimal Rust lexer, sufficient for token-level lint passes.
//!
//! The lexer is deliberately *not* a full Rust grammar: it produces a flat
//! token stream with line numbers, which is exactly what `tidy`-style
//! pattern passes need. It understands everything required to never
//! mis-tokenize real code: nested block comments, raw strings (`r#"…"#`),
//! byte and C strings, char literals vs. lifetimes, numeric literals with
//! suffixes, and multi-character operators. String and comment *contents*
//! never produce code tokens, so a pass matching `.unwrap()` cannot be
//! fooled by `"unwrap"` appearing in a message.

/// Kind of one lexed token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`as`, `unwrap`, `Mutex`, …).
    Ident,
    /// Lifetime (`'a`) — text excludes the leading quote.
    Lifetime,
    /// Integer literal (`42`, `0xff`, `1_000u64`).
    Int,
    /// Float literal (`1.0`, `2e-3`, `0.5f32`).
    Float,
    /// String literal of any flavour (`"…"`, `r#"…"#`, `b"…"`); text is
    /// the *unquoted* contents for plain strings, raw contents for raw
    /// strings.
    Str,
    /// Char or byte literal (`'a'`, `b'\n'`); text includes the quotes.
    Char,
    /// Operator or punctuation (`==`, `::`, `.`, `{`, …).
    Punct,
}

/// One token with its source line (1-based).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// What kind of token this is.
    pub kind: TokenKind,
    /// The token text (see [`TokenKind`] for quoting conventions).
    pub text: String,
    /// 1-based source line the token starts on.
    pub line: u32,
}

impl Token {
    /// `true` when this is punctuation with exactly this text.
    pub fn is_punct(&self, p: &str) -> bool {
        self.kind == TokenKind::Punct && self.text == p
    }

    /// `true` when this is an identifier with exactly this text.
    pub fn is_ident(&self, id: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == id
    }
}

/// A line comment captured during lexing (for allow directives).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Comment {
    /// Comment text without the leading `//` (block comments: without the
    /// delimiters), untrimmed.
    pub text: String,
    /// 1-based line the comment starts on.
    pub line: u32,
    /// `true` when code tokens precede the comment on its line (a
    /// trailing comment annotates its own line; a standalone one
    /// annotates the next).
    pub trailing: bool,
}

/// Output of [`lex`]: the token stream plus every comment.
#[derive(Debug, Default)]
pub struct Lexed {
    /// Code tokens in source order.
    pub tokens: Vec<Token>,
    /// Comments in source order.
    pub comments: Vec<Comment>,
}

/// Multi-character operators, longest first so maximal munch is a simple
/// prefix scan.
const OPERATORS: &[&str] = &[
    "<<=", ">>=", "..=", "...", "==", "!=", "<=", ">=", "&&", "||", "::", "->", "=>", "..", "+=",
    "-=", "*=", "/=", "%=", "^=", "&=", "|=", "<<", ">>",
];

/// Lexes `source` into tokens and comments. The lexer never fails: bytes
/// it cannot classify become single-character punctuation, which keeps
/// passes working even on slightly exotic code.
pub fn lex(source: &str) -> Lexed {
    let bytes = source.as_bytes();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line: u32 = 1;
    // Line number of the last code token, used to classify comments as
    // trailing or standalone.
    let mut last_token_line: u32 = 0;

    while i < bytes.len() {
        let c = bytes[i];
        match c {
            b'\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_ascii_whitespace() => i += 1,
            b'/' if bytes.get(i + 1) == Some(&b'/') => {
                let start = i + 2;
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
                out.comments.push(Comment {
                    text: source[start..i].to_string(),
                    line,
                    trailing: last_token_line == line,
                });
            }
            b'/' if bytes.get(i + 1) == Some(&b'*') => {
                let comment_line = line;
                let trailing = last_token_line == line;
                let start = i + 2;
                let mut depth = 1usize;
                i += 2;
                while i < bytes.len() && depth > 0 {
                    if bytes[i] == b'/' && bytes.get(i + 1) == Some(&b'*') {
                        depth += 1;
                        i += 2;
                    } else if bytes[i] == b'*' && bytes.get(i + 1) == Some(&b'/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        if bytes[i] == b'\n' {
                            line += 1;
                        }
                        i += 1;
                    }
                }
                let end = i.saturating_sub(2).max(start);
                out.comments.push(Comment {
                    text: source[start..end].to_string(),
                    line: comment_line,
                    trailing,
                });
            }
            b'r' | b'b' | b'c' if is_raw_or_byte_string_start(bytes, i) => {
                let (token, ni, nl) = lex_string_like(source, i, line);
                last_token_line = token.line;
                out.tokens.push(token);
                i = ni;
                line = nl;
            }
            b'"' => {
                let (token, ni, nl) = lex_plain_string(source, i, line);
                last_token_line = token.line;
                out.tokens.push(token);
                i = ni;
                line = nl;
            }
            b'\'' => {
                let (token, ni) = lex_quote(source, i, line);
                last_token_line = line;
                out.tokens.push(token);
                i = ni;
            }
            c if c == b'_' || c.is_ascii_alphabetic() => {
                let start = i;
                while i < bytes.len() && (bytes[i] == b'_' || bytes[i].is_ascii_alphanumeric()) {
                    i += 1;
                }
                last_token_line = line;
                out.tokens.push(Token {
                    kind: TokenKind::Ident,
                    text: source[start..i].to_string(),
                    line,
                });
            }
            c if c.is_ascii_digit() => {
                let (token, ni) = lex_number(source, i, line);
                last_token_line = line;
                out.tokens.push(token);
                i = ni;
            }
            _ => {
                let rest = &source[i..];
                let op = OPERATORS.iter().find(|op| rest.starts_with(**op));
                let text = match op {
                    Some(op) => (*op).to_string(),
                    None => {
                        // One (possibly multi-byte) character of punctuation.
                        let ch_len = rest.chars().next().map_or(1, char::len_utf8);
                        rest[..ch_len].to_string()
                    }
                };
                i += text.len();
                last_token_line = line;
                out.tokens.push(Token { kind: TokenKind::Punct, text, line });
            }
        }
    }
    out
}

/// `true` when position `i` starts a raw/byte/C string (`r"`, `r#`, `b"`,
/// `br#`, `c"`, …) rather than a plain identifier.
fn is_raw_or_byte_string_start(bytes: &[u8], i: usize) -> bool {
    let mut j = i;
    // Optional leading b/c, optional r, optional #s, then a quote.
    if bytes[j] == b'b' || bytes[j] == b'c' {
        j += 1;
    }
    if j < bytes.len() && bytes[j] == b'r' {
        j += 1;
        while j < bytes.len() && bytes[j] == b'#' {
            j += 1;
        }
    }
    match bytes.get(j) {
        Some(&b'"') => true,
        Some(&b'\'') => bytes[i] == b'b', // byte char literal b'x'
        _ => false,
    }
}

/// Lexes raw/byte/C strings and byte char literals starting at `i`.
fn lex_string_like(source: &str, i: usize, line: u32) -> (Token, usize, u32) {
    let bytes = source.as_bytes();
    let mut j = i;
    if bytes[j] == b'b' || bytes[j] == b'c' {
        j += 1;
    }
    if j < bytes.len() && bytes[j] == b'\'' {
        // Byte char literal b'x'.
        let (token, ni) = lex_quote(source, j, line);
        return (Token { kind: TokenKind::Char, ..token }, ni, line);
    }
    let mut raw = false;
    let mut hashes = 0usize;
    if j < bytes.len() && bytes[j] == b'r' {
        raw = true;
        j += 1;
        while j < bytes.len() && bytes[j] == b'#' {
            hashes += 1;
            j += 1;
        }
    }
    debug_assert!(j < bytes.len() && bytes[j] == b'"');
    if raw {
        let content_start = j + 1;
        let closer: String = format!("\"{}", "#".repeat(hashes));
        let mut k = content_start;
        let mut nl = line;
        while k < bytes.len() {
            if bytes[k] == b'\n' {
                nl += 1;
            }
            if source[k..].starts_with(&closer) {
                let token = Token {
                    kind: TokenKind::Str,
                    text: source[content_start..k].to_string(),
                    line,
                };
                return (token, k + closer.len(), nl);
            }
            k += 1;
        }
        (Token { kind: TokenKind::Str, text: source[content_start..].to_string(), line }, k, nl)
    } else {
        lex_plain_string(source, j, line)
    }
}

/// Lexes a plain `"…"` string whose opening quote is at `i`.
fn lex_plain_string(source: &str, i: usize, line: u32) -> (Token, usize, u32) {
    let bytes = source.as_bytes();
    let content_start = i + 1;
    let mut k = content_start;
    let mut nl = line;
    while k < bytes.len() {
        match bytes[k] {
            b'\\' => k += 2,
            b'"' => {
                let token = Token {
                    kind: TokenKind::Str,
                    text: source[content_start..k].to_string(),
                    line,
                };
                return (token, k + 1, nl);
            }
            b'\n' => {
                nl += 1;
                k += 1;
            }
            _ => k += 1,
        }
    }
    (Token { kind: TokenKind::Str, text: source[content_start..].to_string(), line }, k, nl)
}

/// Lexes either a char literal or a lifetime starting at the `'` at `i`.
fn lex_quote(source: &str, i: usize, line: u32) -> (Token, usize) {
    let bytes = source.as_bytes();
    let next = bytes.get(i + 1).copied();
    let after = bytes.get(i + 2).copied();
    let is_lifetime = match next {
        Some(c) if c == b'_' || c.is_ascii_alphabetic() => after != Some(b'\''),
        _ => false,
    };
    if is_lifetime {
        let start = i + 1;
        let mut k = start;
        while k < bytes.len() && (bytes[k] == b'_' || bytes[k].is_ascii_alphanumeric()) {
            k += 1;
        }
        return (Token { kind: TokenKind::Lifetime, text: source[start..k].to_string(), line }, k);
    }
    // Char literal: consume escapes until the closing quote (or give up at
    // end of line — the lexer never fails).
    let mut k = i + 1;
    while k < bytes.len() {
        match bytes[k] {
            b'\\' => k += 2,
            b'\'' => {
                k += 1;
                break;
            }
            b'\n' => break,
            _ => k += 1,
        }
    }
    let end = k.min(source.len());
    (Token { kind: TokenKind::Char, text: source[i..end].to_string(), line }, end)
}

/// Lexes a numeric literal starting at digit `i`.
fn lex_number(source: &str, i: usize, line: u32) -> (Token, usize) {
    let bytes = source.as_bytes();
    let start = i;
    let mut k = i;
    let mut is_float = false;
    if bytes[k] == b'0' && matches!(bytes.get(k + 1), Some(b'x' | b'o' | b'b' | b'X' | b'O' | b'B'))
    {
        k += 2;
        while k < bytes.len() && (bytes[k].is_ascii_alphanumeric() || bytes[k] == b'_') {
            k += 1;
        }
        return (Token { kind: TokenKind::Int, text: source[start..k].to_string(), line }, k);
    }
    while k < bytes.len() && (bytes[k].is_ascii_digit() || bytes[k] == b'_') {
        k += 1;
    }
    // A `.` continues the number only when followed by a digit (so `0..n`
    // and `1.max(2)` lex as Int + punctuation).
    if k < bytes.len() && bytes[k] == b'.' && bytes.get(k + 1).is_some_and(|c| c.is_ascii_digit()) {
        is_float = true;
        k += 1;
        while k < bytes.len() && (bytes[k].is_ascii_digit() || bytes[k] == b'_') {
            k += 1;
        }
    }
    // Trailing `1.` (float with no fraction digits, not followed by ident
    // or another dot, e.g. `1. ` — rare, but lex it right).
    else if k < bytes.len()
        && bytes[k] == b'.'
        && !bytes.get(k + 1).is_some_and(|c| c.is_ascii_alphabetic() || *c == b'_' || *c == b'.')
    {
        is_float = true;
        k += 1;
    }
    // Exponent.
    if k < bytes.len() && (bytes[k] == b'e' || bytes[k] == b'E') {
        let mut j = k + 1;
        if j < bytes.len() && (bytes[j] == b'+' || bytes[j] == b'-') {
            j += 1;
        }
        if j < bytes.len() && bytes[j].is_ascii_digit() {
            is_float = true;
            k = j;
            while k < bytes.len() && (bytes[k].is_ascii_digit() || bytes[k] == b'_') {
                k += 1;
            }
        }
    }
    // Type suffix (f32, u64, usize, …).
    let suffix_start = k;
    while k < bytes.len() && (bytes[k].is_ascii_alphanumeric() || bytes[k] == b'_') {
        k += 1;
    }
    let suffix = &source[suffix_start..k];
    if suffix.starts_with('f') {
        is_float = true;
    }
    let kind = if is_float { TokenKind::Float } else { TokenKind::Int };
    (Token { kind, text: source[start..k].to_string(), line }, k)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        lex(src).tokens.into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn idents_numbers_and_operators() {
        let toks = kinds("let x = a.unwrap() + 1.5e3;");
        assert!(toks.contains(&(TokenKind::Ident, "unwrap".into())));
        assert!(toks.contains(&(TokenKind::Float, "1.5e3".into())));
        assert!(toks.contains(&(TokenKind::Punct, ".".into())));
    }

    #[test]
    fn strings_do_not_leak_code_tokens() {
        let toks = kinds(r#"let s = "call .unwrap() now";"#);
        assert!(!toks.iter().any(|(k, t)| *k == TokenKind::Ident && t == "unwrap"));
        assert!(toks.iter().any(|(k, t)| *k == TokenKind::Str && t.contains("unwrap")));
    }

    #[test]
    fn raw_strings_and_hashes() {
        let toks = kinds(r###"let s = r#"x "y" z"#; let t = 1;"###);
        assert!(toks.iter().any(|(k, t)| *k == TokenKind::Str && t == r#"x "y" z"#));
        assert!(toks.iter().any(|(k, t)| *k == TokenKind::Int && t == "1"));
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let toks = kinds("fn f<'a>(x: &'a str) { let c = 'q'; let n = '\\n'; }");
        assert!(toks.iter().any(|(k, t)| *k == TokenKind::Lifetime && t == "a"));
        assert!(toks.iter().any(|(k, t)| *k == TokenKind::Char && t == "'q'"));
        assert!(toks.iter().any(|(k, t)| *k == TokenKind::Char && t == "'\\n'"));
    }

    #[test]
    fn ranges_do_not_become_floats() {
        let toks = kinds("for i in 0..10 {}");
        assert!(toks.contains(&(TokenKind::Int, "0".into())));
        assert!(toks.contains(&(TokenKind::Punct, "..".into())));
        assert!(toks.contains(&(TokenKind::Int, "10".into())));
    }

    #[test]
    fn nested_block_comments_and_line_tracking() {
        let lexed = lex("/* a /* b */ c */\nsecond\n// tail\nthird");
        assert_eq!(lexed.comments.len(), 2);
        assert_eq!(lexed.tokens[0].text, "second");
        assert_eq!(lexed.tokens[0].line, 2);
        assert_eq!(lexed.tokens[1].text, "third");
        assert_eq!(lexed.tokens[1].line, 4);
    }

    #[test]
    fn trailing_vs_standalone_comments() {
        let lexed = lex("let x = 1; // trailing\n// standalone\nlet y = 2;");
        assert!(lexed.comments[0].trailing);
        assert!(!lexed.comments[1].trailing);
    }

    #[test]
    fn float_equality_tokens() {
        let toks = kinds("if v == 0.0 || w != 1.0 {}");
        assert!(toks.contains(&(TokenKind::Punct, "==".into())));
        assert!(toks.contains(&(TokenKind::Punct, "!=".into())));
        assert!(toks.contains(&(TokenKind::Float, "0.0".into())));
    }

    #[test]
    fn exclamation_before_paren_stays_single() {
        let toks = kinds("panic!(\"boom\")");
        assert!(toks.contains(&(TokenKind::Ident, "panic".into())));
        assert!(toks.contains(&(TokenKind::Punct, "!".into())));
    }

    #[test]
    fn float_suffix_without_dot() {
        let toks = kinds("let x = 1f32 + 2u64;");
        assert!(toks.contains(&(TokenKind::Float, "1f32".into())));
        assert!(toks.contains(&(TokenKind::Int, "2u64".into())));
    }
}
