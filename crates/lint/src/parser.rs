//! A lightweight, tolerant Rust parser for dataflow-based lint passes.
//!
//! This is deliberately *not* a full Rust grammar. It recovers exactly the
//! structure the concurrency and wire-protocol passes need from the token
//! stream: function bodies as statement trees (so a CFG can be built),
//! serde-facing type definitions (for the wire-schema baseline), named-lock
//! bindings (`Mutex::named("…", …)` and the identifier they are bound to),
//! and metric/span registration sites. Everything else — types, generics,
//! trait resolution, macro expansion — is skipped or flattened.
//!
//! Design rules that keep the parser sound for its consumers:
//!
//! - Only *live* tokens are parsed (`#[cfg(test)]` / `#[test]` code is
//!   masked out by `passes::live_mask` before parsing).
//! - The parser never fails: unrecognised constructs degrade to flat
//!   expression statements whose calls are still extracted in token order.
//! - Closures are not treated as execution boundaries: calls inside a
//!   closure body are attributed to the enclosing statement, as if they ran
//!   at the call site. This models the immediate-invocation idiom
//!   (`retain(|s| …)`, `map(|x| …)`) and over-approximates deferred
//!   closures (`thread::spawn`), which is the safe direction for
//!   held-lock analysis.

use crate::lexer::{Token, TokenKind};

/// Everything the passes need from one source file.
#[derive(Debug, Default)]
pub struct ParsedFile {
    /// Every `fn` item (including nested fns, parsed independently).
    pub fns: Vec<FnDef>,
    /// Serde-facing (and other) struct/enum definitions.
    pub types: Vec<TypeDef>,
    /// `Mutex::named` / `RwLock::named` construction sites.
    pub lock_bindings: Vec<LockBinding>,
    /// `counter!` / `gauge!` / `histogram!` sites with literal names.
    pub metrics: Vec<MetricSite>,
    /// `span!("…")` / `enter_with_parent("…", …)` sites.
    pub spans: Vec<SpanSite>,
}

/// One function definition with its parsed body.
#[derive(Debug)]
pub struct FnDef {
    /// The function name (no path or impl owner — collisions across types
    /// are resolved conservatively by the passes).
    pub name: String,
    /// Line of the `fn` keyword.
    pub line: u32,
    /// The body as a statement tree.
    pub body: Block,
}

/// A `{ … }` block: a sequence of statements.
#[derive(Debug, Default)]
pub struct Block {
    /// Statements in source order.
    pub stmts: Vec<Stmt>,
}

/// One statement, at the granularity the CFG needs.
#[derive(Debug)]
pub enum Stmt {
    /// `let NAME = …;` — `name` is `None` for non-trivial patterns.
    Let { name: Option<String>, calls: Vec<CallEvent>, line: u32 },
    /// Any other expression statement (including `break` / `continue`).
    Expr { calls: Vec<CallEvent>, line: u32 },
    /// `if` / `if let`, with an optional else branch (else-if chains nest).
    If { head: Vec<CallEvent>, is_let: bool, then_b: Block, else_b: Option<Block>, line: u32 },
    /// `while` / `while let`.
    While { head: Vec<CallEvent>, is_let: bool, body: Block, line: u32 },
    /// `for PAT in EXPR { … }` — iterator temporaries live for the loop.
    For { head: Vec<CallEvent>, body: Block, line: u32 },
    /// Bare `loop { … }`.
    Loop { body: Block, line: u32 },
    /// `match EXPR { arms }` — scrutinee temporaries live across the arms.
    Match { head: Vec<CallEvent>, arms: Vec<Block>, line: u32 },
    /// A nested `{ … }` (or `unsafe { … }`) block with its own scope.
    Sub { body: Block, line: u32 },
    /// `return …;` — edges to the function exit in the CFG.
    Return { calls: Vec<CallEvent>, line: u32 },
}

/// One call observed inside a statement, in token order.
#[derive(Debug, Clone)]
pub struct CallEvent {
    /// Callee name (`lock`, `write_line`, `recv_timeout`, …).
    pub name: String,
    /// For method calls: the last identifier of the dotted receiver chain
    /// (`self.queue.lock()` → `queue`). `None` when the receiver is not a
    /// simple path (e.g. a call result).
    pub receiver: Option<String>,
    /// For path calls (`TcpStream::connect`): the segment before `::`.
    pub path_prefix: Option<String>,
    /// `true` for `.name(…)` method syntax.
    pub is_method: bool,
    /// `true` when the argument list is empty (`join()` vs `join(x)`).
    pub no_args: bool,
    /// For bare `drop(ident)` calls: the single-identifier argument.
    pub arg_ident: Option<String>,
    /// Every identifier appearing inside the call's argument list, in
    /// token order (taint propagation: a tainted variable passed as any
    /// argument taints the call's value — a may-over-approximation).
    pub arg_idents: Vec<String>,
    /// Source line of the callee identifier.
    pub line: u32,
}

/// Kind of a parsed type definition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TypeKind {
    /// `struct` (named or tuple).
    Struct,
    /// `enum`.
    Enum,
}

/// A struct or enum definition (fields/variants in source order).
#[derive(Debug)]
pub struct TypeDef {
    /// Type name.
    pub name: String,
    /// Struct or enum.
    pub kind: TypeKind,
    /// Identifiers inside `#[derive(...)]` attributes on this item.
    pub derives: Vec<String>,
    /// Struct fields (empty for enums and unit structs).
    pub fields: Vec<FieldDef>,
    /// Enum variants (empty for structs).
    pub variants: Vec<VariantDef>,
    /// Line of the `struct` / `enum` keyword.
    pub line: u32,
}

/// One struct or variant field.
#[derive(Debug)]
pub struct FieldDef {
    /// Field name; tuple fields are `"0"`, `"1"`, ….
    pub name: String,
    /// Compact rendering of the field type (`Option<ReliabilitySpec>`).
    pub ty: String,
    /// `true` when the type is `Option<…>` (additive-compatible).
    pub optional: bool,
}

/// One enum variant.
#[derive(Debug)]
pub struct VariantDef {
    /// Variant name.
    pub name: String,
    /// Payload fields (tuple fields are `"0"`, `"1"`, …).
    pub fields: Vec<FieldDef>,
}

/// A named-lock construction site with its binding identifier.
#[derive(Debug)]
pub struct LockBinding {
    /// Identifier the lock is stored under (struct field or let binding).
    pub ident: String,
    /// The registered lock name (`"service.queue"`).
    pub lock: String,
    /// Source line of the constructor.
    pub line: u32,
}

/// Kind of a metric registration macro.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// `counter!`.
    Counter,
    /// `gauge!`.
    Gauge,
    /// `histogram!`.
    Histogram,
}

impl MetricKind {
    /// Macro name for diagnostics.
    pub fn as_str(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
        }
    }
}

/// One metric macro site with a literal name.
#[derive(Debug)]
pub struct MetricSite {
    /// counter / gauge / histogram.
    pub kind: MetricKind,
    /// The literal metric name.
    pub name: String,
    /// The literal help string, when present as the second argument.
    pub help: Option<String>,
    /// Source line of the macro.
    pub line: u32,
}

/// One span entry site (`span!("…")` or `enter_with_parent("…", …)`).
#[derive(Debug)]
pub struct SpanSite {
    /// The literal span name.
    pub name: String,
    /// Source line.
    pub line: u32,
}

/// Parses the live tokens of one file. `live` must be the
/// `passes::live_mask` of `tokens`.
pub fn parse(tokens: &[Token], live: &[bool]) -> ParsedFile {
    let toks: Vec<Token> =
        tokens.iter().zip(live).filter(|(_, l)| **l).map(|(t, _)| t.clone()).collect();
    let mut out = ParsedFile::default();
    collect_fns(&toks, &mut out);
    collect_types(&toks, &mut out);
    collect_lock_bindings(&toks, &mut out);
    collect_obs_sites(&toks, &mut out);
    out
}

// ---------------------------------------------------------------------------
// Function bodies.
// ---------------------------------------------------------------------------

/// Finds every `fn` item (any nesting depth) and parses its body.
fn collect_fns(toks: &[Token], out: &mut ParsedFile) {
    let mut i = 0;
    while i < toks.len() {
        if toks[i].is_ident("fn") && toks.get(i + 1).is_some_and(|t| t.kind == TokenKind::Ident) {
            let name = toks[i + 1].text.clone();
            let line = toks[i].line;
            // Walk to the body `{` (or a `;` for trait/extern decls),
            // counting only paren/bracket nesting: return types and where
            // clauses cannot contain a top-level `{`.
            let mut j = i + 2;
            let mut depth = 0i32;
            let mut body = None;
            while j < toks.len() {
                let t = &toks[j];
                if t.is_punct("(") || t.is_punct("[") {
                    depth += 1;
                } else if t.is_punct(")") || t.is_punct("]") {
                    depth -= 1;
                } else if depth == 0 && t.is_punct("{") {
                    body = Some(j);
                    break;
                } else if depth == 0 && t.is_punct(";") {
                    break;
                }
                j += 1;
            }
            if let Some(open) = body {
                let close = matching_brace(toks, open);
                out.fns.push(FnDef { name, line, body: parse_block(&toks[open + 1..close]) });
                // Continue scanning *inside* the body too: nested fns are
                // parsed as their own defs (their calls are additionally
                // attributed to the enclosing fn, which over-approximates).
                i = open + 1;
                continue;
            }
            i = j + 1;
            continue;
        }
        i += 1;
    }
}

/// Index of the `}` matching the `{` at `open`.
fn matching_brace(toks: &[Token], open: usize) -> usize {
    let mut depth = 0i32;
    let mut j = open;
    while j < toks.len() {
        if toks[j].is_punct("{") {
            depth += 1;
        } else if toks[j].is_punct("}") {
            depth -= 1;
            if depth == 0 {
                return j;
            }
        }
        j += 1;
    }
    toks.len().saturating_sub(1)
}

/// Advances past one balanced bracket group starting at `i` (which must be
/// an opening bracket); returns the index just past the closer.
fn skip_group(toks: &[Token], i: usize) -> usize {
    let (open, close) = match toks[i].text.as_str() {
        "(" => ("(", ")"),
        "[" => ("[", "]"),
        "{" => ("{", "}"),
        _ => return i + 1,
    };
    let mut depth = 0i32;
    let mut j = i;
    while j < toks.len() {
        if toks[j].is_punct(open) {
            depth += 1;
        } else if toks[j].is_punct(close) {
            depth -= 1;
            if depth == 0 {
                return j + 1;
            }
        }
        j += 1;
    }
    toks.len()
}

/// Parses the token slice of a block interior into statements.
fn parse_block(toks: &[Token]) -> Block {
    let mut stmts = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        let t = &toks[i];
        // Skip attributes and stray semicolons.
        if t.is_punct("#") {
            i += 1;
            if i < toks.len() && toks[i].is_punct("[") {
                i = skip_group(toks, i);
            }
            continue;
        }
        if t.is_punct(";") {
            i += 1;
            continue;
        }
        if t.kind == TokenKind::Ident {
            match t.text.as_str() {
                "let" => {
                    i = parse_let(toks, i, &mut stmts);
                    continue;
                }
                "if" => {
                    let (stmt, ni) = parse_if(toks, i);
                    stmts.push(stmt);
                    i = ni;
                    continue;
                }
                "while" => {
                    let line = t.line;
                    let (head, is_let, open) = parse_head(toks, i + 1);
                    let close = matching_brace(toks, open);
                    stmts.push(Stmt::While {
                        head,
                        is_let,
                        body: parse_block(&toks[open + 1..close]),
                        line,
                    });
                    i = close + 1;
                    continue;
                }
                "for" => {
                    let line = t.line;
                    let (head, _, open) = parse_head(toks, i + 1);
                    let close = matching_brace(toks, open);
                    stmts.push(Stmt::For { head, body: parse_block(&toks[open + 1..close]), line });
                    i = close + 1;
                    continue;
                }
                "loop" => {
                    let line = t.line;
                    if toks.get(i + 1).is_some_and(|t| t.is_punct("{")) {
                        let close = matching_brace(toks, i + 1);
                        stmts.push(Stmt::Loop { body: parse_block(&toks[i + 2..close]), line });
                        i = close + 1;
                        continue;
                    }
                }
                "match" => {
                    let line = t.line;
                    let (head, _, open) = parse_head(toks, i + 1);
                    let close = matching_brace(toks, open);
                    stmts.push(Stmt::Match {
                        head,
                        arms: parse_arms(&toks[open + 1..close]),
                        line,
                    });
                    i = close + 1;
                    continue;
                }
                "unsafe" if toks.get(i + 1).is_some_and(|t| t.is_punct("{")) => {
                    let close = matching_brace(toks, i + 1);
                    stmts.push(Stmt::Sub { body: parse_block(&toks[i + 2..close]), line: t.line });
                    i = close + 1;
                    continue;
                }
                "return" => {
                    let (end, calls, subs) = flat_stmt(toks, i + 1);
                    for body in subs {
                        stmts.push(Stmt::Sub { body, line: t.line });
                    }
                    stmts.push(Stmt::Return { calls, line: t.line });
                    i = end;
                    continue;
                }
                // Nested items inside fn bodies: parsed separately by
                // `collect_fns`; here we just skip to their body so their
                // statements also appear in this block (over-approximate).
                _ => {}
            }
        }
        if t.is_punct("{") {
            let close = matching_brace(toks, i);
            stmts.push(Stmt::Sub { body: parse_block(&toks[i + 1..close]), line: t.line });
            i = close + 1;
            continue;
        }
        // Plain expression statement; its brace groups (closure bodies,
        // block expressions) become scoped sub-statements.
        let line = t.line;
        let (end, calls, subs) = flat_stmt(toks, i);
        for body in subs {
            stmts.push(Stmt::Sub { body, line });
        }
        stmts.push(Stmt::Expr { calls, line });
        i = end;
    }
    Block { stmts }
}

/// Parses a `let` statement starting at the `let` keyword; returns the
/// index just past its `;`. Handles `let … else { … }` by modelling the
/// diverging else block as an `If`.
fn parse_let(toks: &[Token], i: usize, stmts: &mut Vec<Stmt>) -> usize {
    let line = toks[i].line;
    let mut j = i + 1;
    if j < toks.len() && toks[j].is_ident("mut") {
        j += 1;
    }
    // Simple binding: `let [mut] name =` — anything else (tuple or enum
    // pattern) yields `name: None`, i.e. statement-temporary semantics.
    let name = if toks.get(j).is_some_and(|t| t.kind == TokenKind::Ident)
        && toks.get(j + 1).is_some_and(|t| t.is_punct("=") || t.is_punct(":"))
    {
        Some(toks[j].text.clone())
    } else {
        None
    };
    // Consume the initializer to the terminating `;` at bracket depth 0,
    // watching for a top-level `else` (let-else).
    let mut depth = 0i32;
    let mut k = j;
    let start = j;
    while k < toks.len() {
        let t = &toks[k];
        if t.is_punct("(") || t.is_punct("[") || t.is_punct("{") {
            depth += 1;
        } else if t.is_punct(")") || t.is_punct("]") || t.is_punct("}") {
            depth -= 1;
        } else if depth == 0 && t.is_punct(";") {
            let (calls, subs) = split_expr(&toks[start..k]);
            for body in subs {
                stmts.push(Stmt::Sub { body, line });
            }
            stmts.push(Stmt::Let { name, calls, line });
            return k + 1;
        } else if depth == 0 && t.is_ident("else") {
            // let-else: binding either succeeds or the else block diverges.
            let (calls, subs) = split_expr(&toks[start..k]);
            for body in subs {
                stmts.push(Stmt::Sub { body, line });
            }
            let open = k + 1;
            if toks.get(open).is_some_and(|t| t.is_punct("{")) {
                let close = matching_brace(toks, open);
                stmts.push(Stmt::If {
                    head: calls,
                    is_let: true,
                    then_b: parse_block(&toks[open + 1..close]),
                    else_b: None,
                    line,
                });
                let mut end = close + 1;
                if toks.get(end).is_some_and(|t| t.is_punct(";")) {
                    end += 1;
                }
                return end;
            }
            stmts.push(Stmt::Let { name, calls, line });
            return k + 1;
        }
        k += 1;
    }
    let (calls, subs) = split_expr(&toks[start..k]);
    for body in subs {
        stmts.push(Stmt::Sub { body, line });
    }
    stmts.push(Stmt::Let { name, calls, line });
    k
}

/// Parses an `if` statement starting at the `if` keyword; returns the
/// statement and the index just past it (including any else chain).
fn parse_if(toks: &[Token], i: usize) -> (Stmt, usize) {
    let line = toks[i].line;
    let (head, is_let, open) = parse_head(toks, i + 1);
    let close = matching_brace(toks, open);
    let then_b = parse_block(&toks[open + 1..close]);
    let mut end = close + 1;
    let mut else_b = None;
    if toks.get(end).is_some_and(|t| t.is_ident("else")) {
        if toks.get(end + 1).is_some_and(|t| t.is_ident("if")) {
            // else-if chain: nest the tail as a one-statement block.
            let (tail, ni) = parse_if(toks, end + 1);
            else_b = Some(Block { stmts: vec![tail] });
            end = ni;
        } else if toks.get(end + 1).is_some_and(|t| t.is_punct("{")) {
            let eclose = matching_brace(toks, end + 1);
            else_b = Some(parse_block(&toks[end + 2..eclose]));
            end = eclose + 1;
        }
    }
    (Stmt::If { head, is_let, then_b, else_b, line }, end)
}

/// Parses a condition / scrutinee / iterator head: tokens from `start` to
/// the `{` that opens the body (at bracket depth 0). Rust forbids bare
/// struct literals in these positions, so the first top-level `{` is the
/// body. Returns (calls, saw `let`, index of the `{`).
fn parse_head(toks: &[Token], start: usize) -> (Vec<CallEvent>, bool, usize) {
    let mut depth = 0i32;
    let mut j = start;
    let mut is_let = false;
    while j < toks.len() {
        let t = &toks[j];
        if t.is_punct("(") || t.is_punct("[") {
            depth += 1;
        } else if t.is_punct(")") || t.is_punct("]") {
            depth -= 1;
        } else if depth == 0 && t.is_punct("{") {
            break;
        } else if depth == 0 && t.is_ident("let") {
            is_let = true;
        }
        j += 1;
    }
    (extract_calls(&toks[start..j.min(toks.len())]), is_let, j.min(toks.len().saturating_sub(1)))
}

/// Splits a match body into arms; each arm body becomes a `Block` (calls
/// in the pattern/guard are prepended as an expression statement).
fn parse_arms(toks: &[Token]) -> Vec<Block> {
    let mut arms = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        // Skip attributes and separators between arms.
        if toks[i].is_punct("#") {
            i += 1;
            if i < toks.len() && toks[i].is_punct("[") {
                i = skip_group(toks, i);
            }
            continue;
        }
        if toks[i].is_punct(",") {
            i += 1;
            continue;
        }
        // Pattern (+ optional guard) up to `=>` at depth 0.
        let pat_start = i;
        let mut depth = 0i32;
        while i < toks.len() {
            let t = &toks[i];
            if t.is_punct("(") || t.is_punct("[") || t.is_punct("{") {
                depth += 1;
            } else if t.is_punct(")") || t.is_punct("]") || t.is_punct("}") {
                depth -= 1;
            } else if depth == 0 && t.is_punct("=>") {
                break;
            }
            i += 1;
        }
        if i >= toks.len() {
            break;
        }
        let guard_calls = extract_calls(&toks[pat_start..i]);
        let line = toks[pat_start].line;
        i += 1; // past `=>`
        let mut body = if toks.get(i).is_some_and(|t| t.is_punct("{")) {
            let close = matching_brace(toks, i);
            let b = parse_block(&toks[i + 1..close]);
            i = close + 1;
            b
        } else {
            // Expression arm: consume to `,` at depth 0 (or end).
            let expr_start = i;
            let mut depth = 0i32;
            while i < toks.len() {
                let t = &toks[i];
                if t.is_punct("(") || t.is_punct("[") || t.is_punct("{") {
                    depth += 1;
                } else if t.is_punct(")") || t.is_punct("]") || t.is_punct("}") {
                    depth -= 1;
                } else if depth == 0 && t.is_punct(",") {
                    break;
                }
                i += 1;
            }
            let (calls, subs) = split_expr(&toks[expr_start..i]);
            let eline = toks.get(expr_start).map_or(line, |t| t.line);
            let mut stmts: Vec<Stmt> =
                subs.into_iter().map(|body| Stmt::Sub { body, line: eline }).collect();
            stmts.push(Stmt::Expr { calls, line: eline });
            Block { stmts }
        };
        if !guard_calls.is_empty() {
            body.stmts.insert(0, Stmt::Expr { calls: guard_calls, line });
        }
        arms.push(body);
    }
    arms
}

/// Consumes one flat expression statement starting at `i`: to the `;` at
/// bracket depth 0 (or end of slice). Returns (index past the statement,
/// extracted calls, nested brace-group blocks).
fn flat_stmt(toks: &[Token], i: usize) -> (usize, Vec<CallEvent>, Vec<Block>) {
    let mut depth = 0i32;
    let mut j = i;
    while j < toks.len() {
        let t = &toks[j];
        if t.is_punct("(") || t.is_punct("[") || t.is_punct("{") {
            depth += 1;
        } else if t.is_punct(")") || t.is_punct("]") || t.is_punct("}") {
            depth -= 1;
        } else if depth == 0 && t.is_punct(";") {
            let (calls, subs) = split_expr(&toks[i..j]);
            return (j + 1, calls, subs);
        }
        j += 1;
    }
    let (calls, subs) = split_expr(&toks[i..j]);
    (j, calls, subs)
}

/// Splits an expression token run into its brace-free calls and the
/// brace-enclosed groups it contains, each parsed as a nested block.
/// This is what gives closure bodies and block expressions
/// (`let x = { let g = m.lock(); … };`, `spawn(move || { … })`) their own
/// lexical scope instead of flattening their guards into the enclosing
/// statement.
fn split_expr(toks: &[Token]) -> (Vec<CallEvent>, Vec<Block>) {
    let mut calls = Vec::new();
    let mut subs = Vec::new();
    let mut seg_start = 0usize;
    let mut i = 0usize;
    while i < toks.len() {
        if toks[i].is_punct("{") {
            calls.extend(extract_calls(&toks[seg_start..i]));
            let close = matching_brace(toks, i);
            subs.push(parse_block(&toks[i + 1..close.min(toks.len())]));
            i = (close + 1).min(toks.len());
            seg_start = i;
            continue;
        }
        i += 1;
    }
    calls.extend(extract_calls(&toks[seg_start..]));
    (calls, subs)
}

/// Extracts every call event from a token run, in token order. Macro
/// invocations (`name!(…)`) are not calls; their argument tokens still
/// flow through this scan, so calls inside macro arguments are seen.
fn extract_calls(toks: &[Token]) -> Vec<CallEvent> {
    let mut out = Vec::new();
    for i in 0..toks.len() {
        if toks[i].kind != TokenKind::Ident {
            continue;
        }
        let Some(next) = toks.get(i + 1) else { continue };
        if !next.is_punct("(") {
            continue;
        }
        // `name!(…)` is a macro, not a call — but the previous token being
        // `!` only means macro when it *follows* the ident.
        if i > 0 && toks[i - 1].is_punct("!") {
            continue;
        }
        let name = toks[i].text.clone();
        if is_keyword(&name) {
            continue;
        }
        let prev = i.checked_sub(1).map(|p| &toks[p]);
        let (is_method, receiver, path_prefix) = match prev {
            Some(p) if p.is_punct(".") => (true, receiver_chain(toks, i - 1), None),
            Some(p) if p.is_punct("::") => {
                let prefix = i
                    .checked_sub(2)
                    .map(|q| &toks[q])
                    .filter(|t| t.kind == TokenKind::Ident)
                    .map(|t| t.text.clone());
                (false, None, prefix)
            }
            _ => (false, None, None),
        };
        let no_args = toks.get(i + 2).is_some_and(|t| t.is_punct(")"));
        // `drop(ident)`: capture the single-identifier argument.
        let arg_ident = if !is_method
            && path_prefix.is_none()
            && toks.get(i + 2).is_some_and(|t| t.kind == TokenKind::Ident)
            && toks.get(i + 3).is_some_and(|t| t.is_punct(")"))
        {
            Some(toks[i + 2].text.clone())
        } else {
            None
        };
        // Every identifier inside the argument group (nested calls
        // included — harmless for a may-analysis).
        let arg_end = skip_group(toks, i + 1);
        let arg_idents = toks[i + 2..arg_end.saturating_sub(1).max(i + 2)]
            .iter()
            .filter(|t| t.kind == TokenKind::Ident && !is_keyword(&t.text))
            .map(|t| t.text.clone())
            .collect();
        out.push(CallEvent {
            name,
            receiver,
            path_prefix,
            is_method,
            no_args,
            arg_ident,
            arg_idents,
            line: toks[i].line,
        });
    }
    out
}

/// For a method call whose `.` is at `dot`, walks the dotted receiver
/// chain backwards and returns its last identifier (`self.queue.lock()` →
/// `queue`). Returns `None` when the receiver ends in a call or index.
fn receiver_chain(toks: &[Token], dot: usize) -> Option<String> {
    let j = dot.checked_sub(1)?;
    let t = &toks[j];
    if t.kind == TokenKind::Ident && !t.is_ident("self") {
        return Some(t.text.clone());
    }
    if t.is_ident("self") {
        return Some("self".to_string());
    }
    None
}

/// Reserved words that can precede `(` without being calls.
fn is_keyword(name: &str) -> bool {
    matches!(
        name,
        "if" | "while"
            | "for"
            | "match"
            | "return"
            | "fn"
            | "let"
            | "loop"
            | "in"
            | "as"
            | "move"
            | "mut"
            | "ref"
            | "else"
            | "pub"
            | "crate"
            | "unsafe"
            | "where"
            | "impl"
            | "dyn"
            | "box"
            | "await"
            | "use"
            | "mod"
            | "struct"
            | "enum"
            | "trait"
            | "const"
            | "static"
            | "type"
    )
}

// ---------------------------------------------------------------------------
// Type definitions (wire-schema extraction).
// ---------------------------------------------------------------------------

/// Collects struct/enum definitions and their derive lists.
fn collect_types(toks: &[Token], out: &mut ParsedFile) {
    let mut pending_derives: Vec<String> = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        let t = &toks[i];
        if t.is_punct("#") {
            // Attribute: record derive idents, keep pending for the item.
            let open = i + 1;
            if toks.get(open).is_some_and(|t| t.is_punct("[")) {
                let end = skip_group(toks, open);
                let inner = &toks[open + 1..end.saturating_sub(1)];
                if inner.first().is_some_and(|t| t.is_ident("derive")) {
                    pending_derives.extend(
                        inner
                            .iter()
                            .skip(1)
                            .filter(|t| t.kind == TokenKind::Ident)
                            .map(|t| t.text.clone()),
                    );
                }
                i = end;
                continue;
            }
            i += 1;
            continue;
        }
        match t.text.as_str() {
            "pub" => {
                i += 1;
                // Skip `pub(crate)` / `pub(super)` groups.
                if toks.get(i).is_some_and(|t| t.is_punct("(")) {
                    i = skip_group(toks, i);
                }
                continue;
            }
            "struct" | "enum" if t.kind == TokenKind::Ident => {
                let kind = if t.text == "struct" { TypeKind::Struct } else { TypeKind::Enum };
                let line = t.line;
                let Some(name_tok) = toks.get(i + 1).filter(|t| t.kind == TokenKind::Ident) else {
                    i += 1;
                    continue;
                };
                let name = name_tok.text.clone();
                let mut j = i + 2;
                // Skip generics.
                if toks.get(j).is_some_and(|t| t.is_punct("<")) {
                    let mut angle = 0i32;
                    while j < toks.len() {
                        if toks[j].is_punct("<") {
                            angle += 1;
                        } else if toks[j].is_punct(">") {
                            angle -= 1;
                            if angle == 0 {
                                j += 1;
                                break;
                            }
                        }
                        j += 1;
                    }
                }
                let mut def = TypeDef {
                    name,
                    kind,
                    derives: std::mem::take(&mut pending_derives),
                    fields: Vec::new(),
                    variants: Vec::new(),
                    line,
                };
                if toks.get(j).is_some_and(|t| t.is_punct("{")) {
                    let close = matching_brace(toks, j);
                    let inner = &toks[j + 1..close];
                    match kind {
                        TypeKind::Struct => def.fields = parse_fields(inner),
                        TypeKind::Enum => def.variants = parse_variants(inner),
                    }
                    i = close + 1;
                } else if toks.get(j).is_some_and(|t| t.is_punct("(")) {
                    let end = skip_group(toks, j);
                    def.fields = parse_tuple_fields(&toks[j + 1..end.saturating_sub(1)]);
                    i = end;
                } else {
                    i = j;
                }
                out.types.push(def);
                continue;
            }
            _ => {
                pending_derives.clear();
                i += 1;
            }
        }
    }
}

/// Parses `name: Type, …` field lists (struct bodies and struct variants).
fn parse_fields(toks: &[Token]) -> Vec<FieldDef> {
    let mut fields = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        if toks[i].is_punct("#") {
            i += 1;
            if i < toks.len() && toks[i].is_punct("[") {
                i = skip_group(toks, i);
            }
            continue;
        }
        if toks[i].is_ident("pub") {
            i += 1;
            if toks.get(i).is_some_and(|t| t.is_punct("(")) {
                i = skip_group(toks, i);
            }
            continue;
        }
        if toks[i].kind == TokenKind::Ident && toks.get(i + 1).is_some_and(|t| t.is_punct(":")) {
            let name = toks[i].text.clone();
            let ty_start = i + 2;
            let mut j = ty_start;
            let mut depth = 0i32;
            while j < toks.len() {
                let t = &toks[j];
                if t.is_punct("(") || t.is_punct("[") || t.is_punct("{") || t.is_punct("<") {
                    depth += 1;
                } else if t.is_punct(")") || t.is_punct("]") || t.is_punct("}") || t.is_punct(">") {
                    depth -= 1;
                } else if depth == 0 && t.is_punct(",") {
                    break;
                }
                j += 1;
            }
            let ty = render_type(&toks[ty_start..j]);
            fields.push(FieldDef { optional: ty.starts_with("Option<"), name, ty });
            i = j + 1;
            continue;
        }
        i += 1;
    }
    fields
}

/// Parses tuple-struct / tuple-variant field lists (`A, B<C>, …`).
fn parse_tuple_fields(toks: &[Token]) -> Vec<FieldDef> {
    let mut fields = Vec::new();
    let mut start = 0;
    let mut depth = 0i32;
    let mut i = 0;
    let push = |slice: &[Token], fields: &mut Vec<FieldDef>| {
        // Strip leading visibility.
        let mut s = 0;
        while slice.get(s).is_some_and(|t| t.is_ident("pub")) {
            s += 1;
            if slice.get(s).is_some_and(|t| t.is_punct("(")) {
                s = skip_group(slice, s);
            }
        }
        let slice = &slice[s.min(slice.len())..];
        if slice.is_empty() {
            return;
        }
        let ty = render_type(slice);
        fields.push(FieldDef {
            optional: ty.starts_with("Option<"),
            name: fields.len().to_string(),
            ty,
        });
    };
    while i < toks.len() {
        let t = &toks[i];
        if t.is_punct("(") || t.is_punct("[") || t.is_punct("{") || t.is_punct("<") {
            depth += 1;
        } else if t.is_punct(")") || t.is_punct("]") || t.is_punct("}") || t.is_punct(">") {
            depth -= 1;
        } else if depth == 0 && t.is_punct(",") {
            push(&toks[start..i], &mut fields);
            start = i + 1;
        }
        i += 1;
    }
    push(&toks[start..], &mut fields);
    fields
}

/// Parses enum variant lists.
fn parse_variants(toks: &[Token]) -> Vec<VariantDef> {
    let mut variants = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        if toks[i].is_punct("#") {
            i += 1;
            if i < toks.len() && toks[i].is_punct("[") {
                i = skip_group(toks, i);
            }
            continue;
        }
        if toks[i].is_punct(",") {
            i += 1;
            continue;
        }
        if toks[i].kind == TokenKind::Ident {
            let name = toks[i].text.clone();
            let mut fields = Vec::new();
            let mut j = i + 1;
            if toks.get(j).is_some_and(|t| t.is_punct("(")) {
                let end = skip_group(toks, j);
                fields = parse_tuple_fields(&toks[j + 1..end.saturating_sub(1)]);
                j = end;
            } else if toks.get(j).is_some_and(|t| t.is_punct("{")) {
                let close = matching_brace(toks, j);
                fields = parse_fields(&toks[j + 1..close]);
                j = close + 1;
            }
            variants.push(VariantDef { name, fields });
            i = j;
            continue;
        }
        i += 1;
    }
    variants
}

/// Deterministic compact rendering of a type token run.
fn render_type(toks: &[Token]) -> String {
    let mut out = String::new();
    for t in toks {
        let wordy = matches!(t.kind, TokenKind::Ident | TokenKind::Int | TokenKind::Lifetime);
        if wordy && out.chars().last().is_some_and(|c| c.is_ascii_alphanumeric() || c == '_') {
            out.push(' ');
        }
        if t.kind == TokenKind::Lifetime {
            out.push('\'');
        }
        out.push_str(&t.text);
    }
    out
}

// ---------------------------------------------------------------------------
// Named locks and observability sites.
// ---------------------------------------------------------------------------

/// Finds `Mutex::named("…", …)` / `RwLock::named(…)` sites and the
/// identifier each lock is bound to (struct field init or let binding).
fn collect_lock_bindings(toks: &[Token], out: &mut ParsedFile) {
    for i in 0..toks.len() {
        if !(toks[i].is_ident("Mutex") || toks[i].is_ident("RwLock")) {
            continue;
        }
        if !(toks.get(i + 1).is_some_and(|t| t.is_punct("::"))
            && toks.get(i + 2).is_some_and(|t| t.is_ident("named"))
            && toks.get(i + 3).is_some_and(|t| t.is_punct("(")))
        {
            continue;
        }
        let Some(name_tok) = toks.get(i + 4).filter(|t| t.kind == TokenKind::Str) else {
            continue;
        };
        let lock = name_tok.text.clone();
        // Walk back over constructor wrappers (`Arc::new(`, path prefixes)
        // to the binding: `ident:` (field init) or `let [mut] ident =`.
        let mut j = i;
        let ident = loop {
            let Some(p) = j.checked_sub(1) else { break None };
            j = p;
            let t = &toks[j];
            if t.is_punct("(") || t.is_punct("::") || t.kind == TokenKind::Ident {
                continue;
            }
            if t.is_punct(":") || t.is_punct("=") {
                break j
                    .checked_sub(1)
                    .map(|q| &toks[q])
                    .filter(|t| t.kind == TokenKind::Ident && !t.is_ident("mut"))
                    .map(|t| t.text.clone())
                    .or_else(|| {
                        j.checked_sub(2)
                            .map(|q| &toks[q])
                            .filter(|t| t.kind == TokenKind::Ident)
                            .map(|t| t.text.clone())
                    });
            }
            break None;
        };
        if let Some(ident) = ident {
            out.lock_bindings.push(LockBinding { ident, lock, line: toks[i].line });
        }
    }
}

/// Finds metric macros with literal names and span entry sites.
fn collect_obs_sites(toks: &[Token], out: &mut ParsedFile) {
    for i in 0..toks.len() {
        let t = &toks[i];
        if t.kind != TokenKind::Ident {
            continue;
        }
        let kind = match t.text.as_str() {
            "counter" => Some(MetricKind::Counter),
            "gauge" => Some(MetricKind::Gauge),
            "histogram" => Some(MetricKind::Histogram),
            _ => None,
        };
        if let Some(kind) = kind {
            if toks.get(i + 1).is_some_and(|t| t.is_punct("!"))
                && toks.get(i + 2).is_some_and(|t| t.is_punct("("))
            {
                // Only literal names are checkable; `concat!`-built names
                // are skipped (documented incompleteness).
                if let Some(name_tok) = toks.get(i + 3).filter(|t| t.kind == TokenKind::Str) {
                    let help = toks
                        .get(i + 4)
                        .filter(|t| t.is_punct(","))
                        .and_then(|_| toks.get(i + 5))
                        .filter(|t| t.kind == TokenKind::Str)
                        .map(|t| t.text.clone());
                    out.metrics.push(MetricSite {
                        kind,
                        name: name_tok.text.clone(),
                        help,
                        line: t.line,
                    });
                }
            }
            continue;
        }
        if t.text == "span"
            && toks.get(i + 1).is_some_and(|t| t.is_punct("!"))
            && toks.get(i + 2).is_some_and(|t| t.is_punct("("))
        {
            if let Some(name_tok) = toks.get(i + 3).filter(|t| t.kind == TokenKind::Str) {
                out.spans.push(SpanSite { name: name_tok.text.clone(), line: t.line });
            }
        }
        if t.text == "enter_with_parent" && toks.get(i + 1).is_some_and(|t| t.is_punct("(")) {
            if let Some(name_tok) = toks.get(i + 2).filter(|t| t.kind == TokenKind::Str) {
                out.spans.push(SpanSite { name: name_tok.text.clone(), line: t.line });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::passes::live_mask;

    fn parsed(src: &str) -> ParsedFile {
        let lexed = lex(src);
        let live = live_mask(&lexed.tokens);
        parse(&lexed.tokens, &live)
    }

    #[test]
    fn fn_bodies_and_call_events() {
        let p = parsed(
            "impl S {\n    fn go(&self) {\n        let g = self.queue.lock();\n        write_line(&mut w, \"x\");\n        drop(g);\n    }\n}\n",
        );
        assert_eq!(p.fns.len(), 1);
        let f = &p.fns[0];
        assert_eq!(f.name, "go");
        assert_eq!(f.body.stmts.len(), 3);
        match &f.body.stmts[0] {
            Stmt::Let { name, calls, .. } => {
                assert_eq!(name.as_deref(), Some("g"));
                assert_eq!(calls.len(), 1);
                assert_eq!(calls[0].name, "lock");
                assert_eq!(calls[0].receiver.as_deref(), Some("queue"));
                assert!(calls[0].is_method && calls[0].no_args);
            }
            other => panic!("expected let, got {other:?}"),
        }
        match &f.body.stmts[2] {
            Stmt::Expr { calls, .. } => {
                assert_eq!(calls[0].name, "drop");
                assert_eq!(calls[0].arg_ident.as_deref(), Some("g"));
            }
            other => panic!("expected drop stmt, got {other:?}"),
        }
    }

    #[test]
    fn if_let_and_match_structure() {
        let p = parsed(
            "fn f(m: &M) {\n    if let Some(t) = m.running.lock().get(&1) {\n        t.cancel();\n    }\n    match m.kind() {\n        K::A => m.a(),\n        K::B => { m.b(); }\n    }\n}\n",
        );
        let f = &p.fns[0];
        assert_eq!(f.body.stmts.len(), 2);
        match &f.body.stmts[0] {
            Stmt::If { head, is_let, then_b, .. } => {
                assert!(is_let);
                assert!(head.iter().any(|c| c.name == "lock"));
                assert_eq!(then_b.stmts.len(), 1);
            }
            other => panic!("expected if-let, got {other:?}"),
        }
        match &f.body.stmts[1] {
            Stmt::Match { arms, .. } => assert_eq!(arms.len(), 2),
            other => panic!("expected match, got {other:?}"),
        }
    }

    #[test]
    fn serde_types_are_extracted() {
        let p = parsed(
            "#[derive(Debug, Serialize, Deserialize)]\npub struct Spec {\n    pub id: u64,\n    pub extra: Option<Meta>,\n}\n\n#[derive(Serialize, Deserialize)]\npub enum Msg {\n    Hello { protocol: u64 },\n    Grant(Lease),\n    Bye,\n}\n",
        );
        assert_eq!(p.types.len(), 2);
        let s = &p.types[0];
        assert_eq!(s.name, "Spec");
        assert!(s.derives.iter().any(|d| d == "Serialize"));
        assert_eq!(s.fields.len(), 2);
        assert_eq!(s.fields[1].ty, "Option<Meta>");
        assert!(s.fields[1].optional);
        let e = &p.types[1];
        assert_eq!(e.kind, TypeKind::Enum);
        assert_eq!(e.variants.len(), 3);
        assert_eq!(e.variants[0].fields[0].name, "protocol");
        assert_eq!(e.variants[1].fields[0].ty, "Lease");
        assert!(e.variants[2].fields.is_empty());
    }

    #[test]
    fn lock_bindings_field_and_let_forms() {
        let p = parsed(
            "fn b() -> S {\n    let session = Arc::new(Mutex::named(\"cluster.worker.session\", 0));\n    S { queue: Mutex::named(\"service.queue\", Vec::new()), session }\n}\n",
        );
        assert_eq!(p.lock_bindings.len(), 2);
        assert_eq!(p.lock_bindings[0].ident, "session");
        assert_eq!(p.lock_bindings[0].lock, "cluster.worker.session");
        assert_eq!(p.lock_bindings[1].ident, "queue");
        assert_eq!(p.lock_bindings[1].lock, "service.queue");
    }

    #[test]
    fn metric_and_span_sites() {
        let p = parsed(
            "fn f() {\n    counter!(\"snn_x_total\", \"Help.\").inc();\n    gauge!(\"snn_depth\", \"D.\").set(1.0);\n    let _s = span!(\"stage1\");\n    let _t = trace::enter_with_parent(\"faultsim.worker\", &_s);\n}\n",
        );
        assert_eq!(p.metrics.len(), 2);
        assert_eq!(p.metrics[0].name, "snn_x_total");
        assert_eq!(p.metrics[0].help.as_deref(), Some("Help."));
        assert_eq!(p.metrics[0].kind, MetricKind::Counter);
        let spans: Vec<&str> = p.spans.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(spans, vec!["stage1", "faultsim.worker"]);
    }

    #[test]
    fn test_code_is_masked_out() {
        let p = parsed("fn live() {}\n#[cfg(test)]\nmod tests {\n    fn dead() { x.lock(); }\n}\n");
        assert_eq!(p.fns.len(), 1);
        assert_eq!(p.fns[0].name, "live");
    }
}
