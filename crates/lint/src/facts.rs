//! Workspace-level facts and the cross-file halves of the v2 passes.
//!
//! The per-file passes in [`crate::passes`] consume a [`Facts`] snapshot
//! built once per lint run from every parsed file:
//!
//! - per-crate maps from receiver identifier to registered lock name
//!   (`queue` → `service.queue`), sourced from `Mutex::named` sites;
//! - the set of *transitively blocking* functions in the lock-disciplined
//!   crates (a function is blocking when it performs a blocking primitive
//!   or calls, by name, another namespace function that does);
//! - the set of lock names each namespace function transitively acquires
//!   (for lock-graph edges through calls).
//!
//! Name-based call resolution is deliberately conservative: method names
//! that collide with common `std` collection/iterator methods
//! ([`STD_METHOD_STOPLIST`]) are never resolved through the namespace, so
//! `state.campaigns.get(..)` cannot alias `JobStore::get`. The cost is
//! documented incompleteness (a blocking namespace fn named `get` would
//! be missed), which is the right trade for a zero-false-positive gate.

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};

use crate::diag::Diagnostic;
use crate::parser::{Block, CallEvent, MetricKind, ParsedFile, Stmt, TypeKind};
use crate::{cfg, dataflow};

/// Crates whose locks and blocking behaviour are analysed.
pub const LOCK_CRATES: &[&str] = &["service", "cluster", "reliability"];

/// Blocking path calls: (`prefix`, `name`) as in `TcpStream::connect`.
/// Filesystem writes are included deliberately: persisting a job record
/// under a hot lock stalls every other thread on disk latency, which is
/// exactly the class of bug L-HELDLOCK exists to catch.
const BLOCKING_PATH: &[(&str, &str)] = &[
    ("TcpStream", "connect"),
    ("TcpStream", "connect_timeout"),
    ("thread", "sleep"),
    ("fs", "write"),
    ("fs", "rename"),
    ("fs", "read_to_string"),
    ("fs", "create_dir_all"),
    ("fs", "read_dir"),
    ("fs", "remove_file"),
    ("fs", "remove_dir_all"),
    ("File", "create"),
    ("File", "open"),
];

/// Blocking bare function calls (workspace wire helpers).
const BLOCKING_BARE: &[&str] = &["write_line", "read_line", "read_raw_line"];

/// Blocking method calls. `try_send` / `try_recv` are intentionally
/// absent (non-blocking by contract); `join` blocks only in its
/// zero-argument `JoinHandle` form (`PathBuf::join` takes an argument).
const BLOCKING_METHOD: &[&str] = &[
    "recv",
    "recv_timeout",
    "accept",
    "write_all",
    "flush",
    "read_exact",
    "read_to_string",
    "read_until",
    "read_line",
    "send",
    "connect",
];

/// Condvar methods: called with a guard by design, and `wait*` releases
/// the mutex while parked — never a held-lock finding.
const CONDVAR_METHODS: &[&str] = &[
    "wait",
    "wait_for",
    "wait_while",
    "wait_timeout",
    "wait_timeout_while",
    "notify_one",
    "notify_all",
];

/// Method names never resolved through the namespace call graph because
/// they collide with ubiquitous `std` methods (see module docs).
const STD_METHOD_STOPLIST: &[&str] = &[
    "get",
    "get_mut",
    "insert",
    "remove",
    "push",
    "push_back",
    "push_front",
    "pop",
    "pop_front",
    "pop_back",
    "len",
    "is_empty",
    "clear",
    "contains",
    "contains_key",
    "iter",
    "iter_mut",
    "into_iter",
    "values",
    "values_mut",
    "keys",
    "entry",
    "or_insert",
    "or_insert_with",
    "or_default",
    "clone",
    "cloned",
    "copied",
    "collect",
    "map",
    "and_then",
    "filter",
    "next",
    "unwrap_or",
    "unwrap_or_else",
    "unwrap_or_default",
    "retain",
    "sort",
    "sort_by",
    "sort_unstable",
    "extend",
    "drain",
    "take",
    "replace",
    "swap",
    "min",
    "max",
    "abs",
    "to_string",
    "to_owned",
    "as_str",
    "as_ref",
    "as_mut",
    "into",
    "from",
    "new",
    "default",
    "load",
    "store",
    "fetch_add",
    "fetch_sub",
    "compare_exchange",
    "push_str",
    "starts_with",
    "ends_with",
    "split",
    "trim",
    "parse",
    "ok",
    "err",
    "is_some",
    "is_none",
    "is_ok",
    "is_err",
    "unwrap",
    "expect",
    "fmt",
    "eq",
    "cmp",
    "hash",
    "elapsed",
    "as_secs_f64",
    "saturating_sub",
    "enumerate",
    "zip",
    "rev",
    "any",
    "all",
    "find",
    "position",
    "count",
    "sum",
    "chain",
];

/// One parsed file handed to [`Facts::build`].
pub struct FileInput<'a> {
    /// Workspace-relative path.
    pub path: &'a str,
    /// Its parse.
    pub parsed: &'a ParsedFile,
}

/// Workspace-level facts shared by every per-file pass.
#[derive(Debug, Default)]
pub struct Facts {
    /// crate key (`service`) → receiver ident (`queue`) → lock name.
    pub locks: HashMap<String, HashMap<String, String>>,
    /// Namespace fn name → human reason why it (transitively) blocks.
    pub blocking: HashMap<String, String>,
    /// Namespace fn name → lock names it (transitively) acquires.
    pub fn_acquires: HashMap<String, BTreeSet<String>>,
    /// The service crate's `LOCK_ORDER` (rank = index).
    pub lock_order: Vec<String>,
    /// Fn name → description of the nondeterminism its return value may
    /// carry (interprocedural taint summaries, see [`crate::taint`]).
    pub fn_taint: BTreeMap<String, String>,
    /// file path → idents bound to unordered collections (HashMap/HashSet
    /// struct fields and let bindings).
    pub unordered: HashMap<String, BTreeSet<String>>,
}

/// The crate key of a workspace path (`crates/service/src/…` → `service`).
pub fn crate_key(path: &str) -> Option<&str> {
    let rest = path.strip_prefix("crates/")?;
    let (name, tail) = rest.split_once('/')?;
    tail.starts_with("src/").then_some(name)
}

/// `true` when `path` belongs to a lock-disciplined crate.
pub fn in_lock_crates(path: &str) -> bool {
    crate_key(path).is_some_and(|k| LOCK_CRATES.contains(&k))
}

/// Collects every call event in a function body, in token order.
pub fn all_calls(block: &Block, out: &mut Vec<CallEvent>) {
    for stmt in &block.stmts {
        match stmt {
            Stmt::Let { calls, .. } | Stmt::Expr { calls, .. } | Stmt::Return { calls, .. } => {
                out.extend(calls.iter().cloned());
            }
            Stmt::If { head, then_b, else_b, .. } => {
                out.extend(head.iter().cloned());
                all_calls(then_b, out);
                if let Some(e) = else_b {
                    all_calls(e, out);
                }
            }
            Stmt::While { head, body, .. } | Stmt::For { head, body, .. } => {
                out.extend(head.iter().cloned());
                all_calls(body, out);
            }
            Stmt::Loop { body, .. } | Stmt::Sub { body, .. } => all_calls(body, out),
            Stmt::Match { head, arms, .. } => {
                out.extend(head.iter().cloned());
                for arm in arms {
                    all_calls(arm, out);
                }
            }
        }
    }
}

impl Facts {
    /// Builds facts from every parsed workspace file.
    pub fn build(files: &[FileInput<'_>], lock_order: Vec<String>) -> Facts {
        let mut facts = Facts { lock_order, ..Facts::default() };

        // Lock binding maps, per crate.
        for f in files {
            let Some(key) = crate_key(f.path) else { continue };
            if !LOCK_CRATES.contains(&key) {
                continue;
            }
            let map = facts.locks.entry(key.to_string()).or_default();
            for b in &f.parsed.lock_bindings {
                map.insert(b.ident.clone(), b.lock.clone());
            }
        }

        // Determinism-taint facts (whole workspace, obs exempt).
        facts.unordered = crate::taint::unordered_idents(files);
        facts.fn_taint = crate::taint::summaries(files, &facts.unordered);

        // Per-function direct facts over the namespace crates. BTreeMap:
        // the fixpoint below locks in the first blocking reason it sees
        // per function, so iteration order must be deterministic.
        let mut calls_of: BTreeMap<String, Vec<CallEvent>> = BTreeMap::new();
        let mut fn_names: HashSet<String> = HashSet::new();
        let mut crate_of_fn: HashMap<String, Vec<String>> = HashMap::new();
        for f in files {
            let Some(key) = crate_key(f.path) else { continue };
            if !LOCK_CRATES.contains(&key) {
                continue;
            }
            for fun in &f.parsed.fns {
                let mut calls = Vec::new();
                all_calls(&fun.body, &mut calls);
                calls_of.entry(fun.name.clone()).or_default().extend(calls);
                fn_names.insert(fun.name.clone());
                crate_of_fn.entry(fun.name.clone()).or_default().push(key.to_string());
            }
        }

        // Direct blocking + direct acquisitions.
        for (name, calls) in &calls_of {
            for c in calls {
                if let Some(reason) = direct_blocking(c) {
                    facts.blocking.entry(name.clone()).or_insert(reason);
                }
            }
            let mut acquired = BTreeSet::new();
            for key in crate_of_fn.get(name).into_iter().flatten() {
                let Some(map) = facts.locks.get(key) else { continue };
                for c in calls {
                    if is_acquire(c) {
                        if let Some(lock) = c.receiver.as_deref().and_then(|r| map.get(r)) {
                            acquired.insert(lock.clone());
                        }
                    }
                }
            }
            if !acquired.is_empty() {
                facts.fn_acquires.insert(name.clone(), acquired);
            }
        }

        // Fixpoint: propagate blocking and acquisitions through name-based
        // calls (stoplisted names excluded).
        loop {
            let mut changed = false;
            for (name, calls) in &calls_of {
                for c in calls {
                    let Some(callee) = resolvable_callee(c, &fn_names) else { continue };
                    if callee == *name {
                        continue;
                    }
                    if let Some(reason) = facts.blocking.get(&callee).cloned() {
                        facts.blocking.entry(name.clone()).or_insert_with(|| {
                            changed = true;
                            format!("calls `{callee}` which {reason}")
                        });
                    }
                    if let Some(acq) = facts.fn_acquires.get(&callee).cloned() {
                        let own = facts.fn_acquires.entry(name.clone()).or_default();
                        for lock in acq {
                            changed |= own.insert(lock);
                        }
                    }
                }
            }
            if !changed {
                break;
            }
        }
        facts
    }

    /// Receiver-ident → lock-name resolver for one file.
    pub fn lock_of<'a>(&'a self, path: &str) -> impl Fn(&str) -> Option<String> + 'a {
        let map = crate_key(path).and_then(|k| self.locks.get(k));
        move |recv: &str| map.and_then(|m| m.get(recv).cloned())
    }
}

/// `true` for a no-arg `.lock()` / `.read()` / `.write()` method call.
fn is_acquire(c: &CallEvent) -> bool {
    c.is_method && c.no_args && matches!(c.name.as_str(), "lock" | "read" | "write")
}

/// Direct blocking classification of one call (no namespace resolution).
fn direct_blocking(c: &CallEvent) -> Option<String> {
    if c.is_method && CONDVAR_METHODS.contains(&c.name.as_str()) {
        return None;
    }
    if let Some(prefix) = &c.path_prefix {
        if BLOCKING_PATH.iter().any(|(p, n)| p == prefix && *n == c.name) {
            return Some(format!("performs `{prefix}::{}`", c.name));
        }
        return None;
    }
    if c.is_method {
        if BLOCKING_METHOD.contains(&c.name.as_str()) {
            return Some(format!("performs `.{}()`", c.name));
        }
        if c.name == "join" && c.no_args {
            return Some("performs `.join()` on a thread handle".to_string());
        }
        return None;
    }
    if BLOCKING_BARE.contains(&c.name.as_str()) {
        return Some(format!("performs `{}()`", c.name));
    }
    None
}

/// `true` when a method name collides with a ubiquitous `std` method and
/// must never resolve through the namespace call graph.
pub(crate) fn is_stoplisted(name: &str) -> bool {
    STD_METHOD_STOPLIST.contains(&name)
}

/// The namespace function a call may resolve to, if any (stoplist and
/// primitive-shape aware).
fn resolvable_callee(c: &CallEvent, fn_names: &HashSet<String>) -> Option<String> {
    if c.path_prefix.is_some() {
        return None; // path calls resolve only against primitives
    }
    if c.name == "drop" || STD_METHOD_STOPLIST.contains(&c.name.as_str()) {
        return None;
    }
    if c.is_method && CONDVAR_METHODS.contains(&c.name.as_str()) {
        return None;
    }
    fn_names.contains(&c.name).then(|| c.name.clone())
}

/// Why a call is considered blocking, for L-HELDLOCK messages. `None`
/// when the call cannot block.
pub fn blocking_reason(c: &CallEvent, facts: &Facts) -> Option<String> {
    if let Some(reason) = direct_blocking(c) {
        return Some(reason);
    }
    if c.path_prefix.is_some() || c.name == "drop" {
        return None;
    }
    if STD_METHOD_STOPLIST.contains(&c.name.as_str())
        || (c.is_method && CONDVAR_METHODS.contains(&c.name.as_str()))
    {
        return None;
    }
    facts.blocking.get(&c.name).map(|r| format!("calls `{}` which {r}", c.name))
}

// ---------------------------------------------------------------------------
// Lock-graph extraction (L-LOCKGRAPH).
// ---------------------------------------------------------------------------

/// One lock-order edge observed at a source location: `held` was live
/// when `acquired` was (transitively) taken.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LockEdge {
    /// The lock already held.
    pub held: String,
    /// The lock being acquired.
    pub acquired: String,
    /// File of the acquisition site.
    pub file: String,
    /// Line of the acquisition site.
    pub line: u32,
}

/// Extracts lock-graph edges from one file's functions (guard dataflow
/// per function; call edges resolved through `fn_acquires`).
pub fn lock_edges(path: &str, parsed: &ParsedFile, facts: &Facts) -> Vec<LockEdge> {
    let mut edges = Vec::new();
    if !in_lock_crates(path) {
        return edges;
    }
    let lock_of = facts.lock_of(path);
    for fun in &parsed.fns {
        let g = cfg::build(fun, &lock_of);
        let flow = dataflow::held_guards(&g);
        for (i, node) in g.nodes.iter().enumerate() {
            let Some(held) = flow[i].as_ref().filter(|h| !h.is_empty()) else { continue };
            let held_locks: Vec<&str> = held
                .iter()
                .filter_map(|&gid| g.guards.get(gid))
                .map(|gi| gi.lock.as_str())
                .collect();
            match node {
                cfg::Node::Acquire { guard } => {
                    if let Some(info) = g.guards.get(*guard) {
                        for h in &held_locks {
                            edges.push(LockEdge {
                                held: (*h).to_string(),
                                acquired: info.lock.clone(),
                                file: path.to_string(),
                                line: info.line,
                            });
                        }
                    }
                }
                cfg::Node::Call(c) => {
                    let Some(callee) = resolvable_callee_for_edges(c) else { continue };
                    let Some(acq) = facts.fn_acquires.get(&callee) else { continue };
                    for lock in acq {
                        for h in &held_locks {
                            edges.push(LockEdge {
                                held: (*h).to_string(),
                                acquired: lock.clone(),
                                file: path.to_string(),
                                line: c.line,
                            });
                        }
                    }
                }
                _ => {}
            }
        }
    }
    edges
}

/// Stoplist-aware callee resolution for edge extraction (no fn-name set
/// needed: `fn_acquires` lookup already restricts to namespace fns).
fn resolvable_callee_for_edges(c: &CallEvent) -> Option<String> {
    if c.path_prefix.is_some() || c.name == "drop" {
        return None;
    }
    if STD_METHOD_STOPLIST.contains(&c.name.as_str())
        || (c.is_method && CONDVAR_METHODS.contains(&c.name.as_str()))
    {
        return None;
    }
    Some(c.name.clone())
}

/// Checks the collected lock graph: rank consistency against LOCK_ORDER,
/// re-entrancy, and acyclicity.
pub fn check_lock_graph(edges: &[LockEdge], lock_order: &[String]) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let rank = |name: &str| lock_order.iter().position(|o| o == name);
    // Deduplicate edges, keeping the first site (deterministic: callers
    // collect files in sorted order).
    let mut seen: BTreeMap<(String, String), (String, u32)> = BTreeMap::new();
    for e in edges {
        seen.entry((e.held.clone(), e.acquired.clone()))
            .or_insert_with(|| (e.file.clone(), e.line));
    }
    for ((held, acquired), (file, line)) in &seen {
        if held == acquired {
            out.push(Diagnostic {
                file: file.clone(),
                line: *line,
                id: "L-LOCKGRAPH",
                message: format!(
                    "re-entrant acquisition: `{held}` is (transitively) taken while a guard \
                     for it is already live — this deadlocks a non-reentrant mutex"
                ),
            });
            continue;
        }
        if let (Some(rh), Some(ra)) = (rank(held), rank(acquired)) {
            if rh >= ra {
                out.push(Diagnostic {
                    file: file.clone(),
                    line: *line,
                    id: "L-LOCKGRAPH",
                    message: format!(
                        "lock-order violation: `{acquired}` (rank {ra}) acquired while \
                         holding `{held}` (rank {rh}) — LOCK_ORDER requires strictly \
                         increasing ranks (crates/service/src/lock_order.rs)"
                    ),
                });
            }
        }
    }
    // Cycle detection over the deduplicated graph (covers locks that are
    // not in LOCK_ORDER at all).
    let nodes: BTreeSet<&String> = seen.keys().flat_map(|(a, b)| [a, b]).collect();
    let mut succ: BTreeMap<&String, Vec<&String>> = BTreeMap::new();
    for (a, b) in seen.keys() {
        succ.entry(a).or_default().push(b);
    }
    let mut state: BTreeMap<&String, u8> = BTreeMap::new(); // 0 new, 1 open, 2 done
    for start in &nodes {
        if state.get(*start).copied().unwrap_or(0) != 0 {
            continue;
        }
        // Iterative DFS with an explicit path for cycle reporting.
        let mut stack: Vec<(&String, usize)> = vec![(*start, 0)];
        state.insert(*start, 1);
        let mut path: Vec<&String> = vec![*start];
        while let Some((node, idx)) = stack.last_mut() {
            let next = succ.get(*node).and_then(|s| s.get(*idx)).copied();
            *idx += 1;
            match next {
                Some(n) => {
                    let st = state.get(n).copied().unwrap_or(0);
                    if st == 1 {
                        // Found a cycle: report it once, anchored at the
                        // first recorded edge site inside the cycle.
                        let from = path.iter().position(|p| *p == n).unwrap_or(0);
                        let mut cycle: Vec<String> =
                            path[from..].iter().map(|s| (*s).clone()).collect();
                        cycle.push(n.clone());
                        let anchor = seen
                            .get(&(cycle[0].clone(), cycle[1].clone()))
                            .cloned()
                            .unwrap_or_else(|| ("crates/service/src/lock_order.rs".into(), 1));
                        out.push(Diagnostic {
                            file: anchor.0,
                            line: anchor.1,
                            id: "L-LOCKGRAPH",
                            message: format!(
                                "lock-acquisition cycle: {} — no total order can schedule \
                                 these guards; break the cycle by narrowing one guard scope",
                                cycle.join(" -> ")
                            ),
                        });
                        // Stop after the first cycle through this edge to
                        // avoid duplicate reports of the same loop.
                        state.insert(n, 2);
                    } else if st == 0 {
                        state.insert(n, 1);
                        stack.push((n, 0));
                        path.push(n);
                    }
                }
                None => {
                    state.insert(*node, 2);
                    stack.pop();
                    path.pop();
                }
            }
        }
    }
    out
}

/// Compares the two committed `LOCK_ORDER` registries (service is the
/// canonical copy; cluster must match byte for byte).
pub fn check_lock_order_registries(
    service: &[String],
    cluster: Option<&[String]>,
) -> Vec<Diagnostic> {
    let Some(cluster) = cluster else { return Vec::new() };
    if service == cluster {
        return Vec::new();
    }
    vec![Diagnostic {
        file: "crates/cluster/src/lock_order.rs".to_string(),
        line: 1,
        id: "L-LOCKGRAPH",
        message: format!(
            "LOCK_ORDER registries diverge: service has [{}], cluster has [{}] — the two \
             crates share one process-wide order and the lists must be identical",
            service.join(", "),
            cluster.join(", ")
        ),
    }]
}

// ---------------------------------------------------------------------------
// Wire-protocol schema (L-WIRE).
// ---------------------------------------------------------------------------

/// The serde-facing files captured in the committed baseline, in order.
pub const WIRE_FILES: &[&str] = &["crates/cluster/src/wire.rs", "crates/service/src/protocol.rs"];

/// Workspace-relative path of the committed baseline.
pub const WIRE_BASELINE_PATH: &str = "crates/lint/wire_schema.txt";

/// Renders the deterministic schema text for the wire files present in
/// `files` (types with a `Serialize` or `Deserialize` derive, in source
/// order).
pub fn wire_schema_text(files: &[FileInput<'_>]) -> String {
    let mut out = String::new();
    out.push_str("# snn-lint wire-protocol schema baseline (pass L-WIRE).\n");
    out.push_str("# Captures the serde-facing shape of the cluster and service protocols.\n");
    out.push_str("# Regenerate after an intentional protocol change with:\n");
    out.push_str("#   cargo run -p snn-lint -- --write-wire-baseline\n");
    out.push_str("# See DESIGN.md section 15 for the compatibility workflow.\n");
    for wf in WIRE_FILES {
        let Some(input) = files.iter().find(|f| f.path == *wf) else { continue };
        out.push('\n');
        out.push_str("file ");
        out.push_str(wf);
        out.push('\n');
        for ty in &input.parsed.types {
            if !ty.derives.iter().any(|d| d == "Serialize" || d == "Deserialize") {
                continue;
            }
            match ty.kind {
                TypeKind::Struct => {
                    out.push_str(&format!("struct {}\n", ty.name));
                    for f in &ty.fields {
                        out.push_str(&render_field(f, 1));
                    }
                }
                TypeKind::Enum => {
                    out.push_str(&format!("enum {}\n", ty.name));
                    for v in &ty.variants {
                        out.push_str(&format!("  variant {}\n", v.name));
                        for f in &v.fields {
                            out.push_str(&render_field(f, 2));
                        }
                    }
                }
            }
        }
    }
    out
}

fn render_field(f: &crate::parser::FieldDef, indent: usize) -> String {
    format!(
        "{}field {}: {} {}\n",
        "  ".repeat(indent),
        f.name,
        f.ty,
        if f.optional { "optional" } else { "required" }
    )
}

/// A parsed schema: file → type name → record.
type Schema = BTreeMap<String, BTreeMap<String, TypeRec>>;

#[derive(Debug, Default, PartialEq)]
struct TypeRec {
    kind: String,
    /// Struct fields: name → (type, optional).
    fields: BTreeMap<String, (String, bool)>,
    /// Field names in declaration order (for messages).
    variants: BTreeMap<String, BTreeMap<String, (String, bool)>>,
}

/// Parses schema text (the committed baseline or a fresh rendering).
fn parse_schema(text: &str) -> Schema {
    let mut schema = Schema::new();
    let mut file = String::new();
    let mut ty = String::new();
    let mut variant: Option<String> = None;
    for raw in text.lines() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if let Some(rest) = line.strip_prefix("file ") {
            file = rest.trim().to_string();
            schema.entry(file.clone()).or_default();
            continue;
        }
        if let Some(rest) = line.strip_prefix("struct ") {
            ty = rest.trim().to_string();
            variant = None;
            schema
                .entry(file.clone())
                .or_default()
                .insert(ty.clone(), TypeRec { kind: "struct".into(), ..TypeRec::default() });
            continue;
        }
        if let Some(rest) = line.strip_prefix("enum ") {
            ty = rest.trim().to_string();
            variant = None;
            schema
                .entry(file.clone())
                .or_default()
                .insert(ty.clone(), TypeRec { kind: "enum".into(), ..TypeRec::default() });
            continue;
        }
        if let Some(rest) = line.strip_prefix("variant ") {
            let v = rest.trim().to_string();
            if let Some(rec) = schema.get_mut(&file).and_then(|m| m.get_mut(&ty)) {
                rec.variants.entry(v.clone()).or_default();
            }
            variant = Some(v);
            continue;
        }
        if let Some(rest) = line.strip_prefix("field ") {
            let Some((name, tail)) = rest.split_once(':') else { continue };
            let tail = tail.trim();
            let (field_ty, optional) = match tail.strip_suffix(" optional") {
                Some(t) => (t.trim().to_string(), true),
                None => (tail.strip_suffix(" required").unwrap_or(tail).trim().to_string(), false),
            };
            if let Some(rec) = schema.get_mut(&file).and_then(|m| m.get_mut(&ty)) {
                let target = match &variant {
                    Some(v) => rec.variants.entry(v.clone()).or_default(),
                    None => &mut rec.fields,
                };
                target.insert(name.trim().to_string(), (field_ty, optional));
            }
        }
    }
    schema
}

/// Structural baseline-vs-current diff: returns L-WIRE findings for every
/// breaking change (removed/renamed types, variants or fields; changed
/// field types; new required fields). Additive optional changes pass here
/// (byte-identity of the committed baseline is gated separately).
pub fn wire_breaking_changes(
    baseline_text: &str,
    current_text: &str,
    type_lines: &HashMap<(String, String), u32>,
) -> Vec<Diagnostic> {
    let baseline = parse_schema(baseline_text);
    let current = parse_schema(current_text);
    let mut out = Vec::new();
    let hint = "breaking protocol drift: if intentional, bump PROTOCOL_VERSION and regenerate \
                the baseline (`cargo run -p snn-lint -- --write-wire-baseline`, DESIGN.md §15)";
    let anchor = |file: &str, ty: &str| {
        type_lines.get(&(file.to_string(), ty.to_string())).copied().unwrap_or(1)
    };
    let diag = |file: &str, line: u32, message: String| Diagnostic {
        file: file.to_string(),
        line,
        id: "L-WIRE",
        message,
    };
    for (file, base_types) in &baseline {
        let empty = BTreeMap::new();
        let cur_types = current.get(file).unwrap_or(&empty);
        for (name, base) in base_types {
            let Some(cur) = cur_types.get(name) else {
                out.push(diag(
                    file,
                    1,
                    format!(
                        "wire type `{name}` was removed or renamed — v1–v4 peers still \
                         send/expect it; {hint}"
                    ),
                ));
                continue;
            };
            if cur.kind != base.kind {
                out.push(diag(
                    file,
                    anchor(file, name),
                    format!(
                        "wire type `{name}` changed from {} to {} — {hint}",
                        base.kind, cur.kind
                    ),
                ));
                continue;
            }
            diff_fields(
                &mut out,
                file,
                anchor(file, name),
                name,
                None,
                &base.fields,
                &cur.fields,
                hint,
            );
            for (vname, vbase) in &base.variants {
                let Some(vcur) = cur.variants.get(vname) else {
                    out.push(diag(
                        file,
                        anchor(file, name),
                        format!(
                            "enum `{name}` lost variant `{vname}` — decoding v1–v4 \
                             payloads carrying it will fail; {hint}"
                        ),
                    ));
                    continue;
                };
                diff_fields(
                    &mut out,
                    file,
                    anchor(file, name),
                    name,
                    Some(vname),
                    vbase,
                    vcur,
                    hint,
                );
            }
            // New required variant fields / struct fields in current.
            check_new_required(
                &mut out,
                file,
                anchor(file, name),
                name,
                None,
                &base.fields,
                &cur.fields,
                hint,
            );
            for (vname, vcur) in &cur.variants {
                let vbase = base.variants.get(vname).cloned().unwrap_or_default();
                check_new_required(
                    &mut out,
                    file,
                    anchor(file, name),
                    name,
                    Some(vname),
                    &vbase,
                    vcur,
                    hint,
                );
            }
        }
    }
    out
}

#[allow(clippy::too_many_arguments)]
fn diff_fields(
    out: &mut Vec<Diagnostic>,
    file: &str,
    line: u32,
    ty: &str,
    variant: Option<&str>,
    base: &BTreeMap<String, (String, bool)>,
    cur: &BTreeMap<String, (String, bool)>,
    hint: &str,
) {
    let ctx = match variant {
        Some(v) => format!("`{ty}::{v}`"),
        None => format!("`{ty}`"),
    };
    for (fname, (fty, _)) in base {
        match cur.get(fname) {
            None => out.push(Diagnostic {
                file: file.to_string(),
                line,
                id: "L-WIRE",
                message: format!(
                    "{ctx} lost field `{fname}: {fty}` — old encodings carry it and new \
                     encodings omit it; {hint}"
                ),
            }),
            Some((cty, _)) if cty != fty => out.push(Diagnostic {
                file: file.to_string(),
                line,
                id: "L-WIRE",
                message: format!(
                    "{ctx} field `{fname}` changed type from `{fty}` to `{cty}` — {hint}"
                ),
            }),
            _ => {}
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn check_new_required(
    out: &mut Vec<Diagnostic>,
    file: &str,
    line: u32,
    ty: &str,
    variant: Option<&str>,
    base: &BTreeMap<String, (String, bool)>,
    cur: &BTreeMap<String, (String, bool)>,
    hint: &str,
) {
    let ctx = match variant {
        Some(v) => format!("`{ty}::{v}`"),
        None => format!("`{ty}`"),
    };
    for (fname, (fty, optional)) in cur {
        if base.contains_key(fname) || *optional {
            continue;
        }
        out.push(Diagnostic {
            file: file.to_string(),
            line,
            id: "L-WIRE",
            message: format!(
                "{ctx} gained *required* field `{fname}: {fty}` — v1–v4 peers omit it and \
                 their messages will no longer decode; make it `Option<…>` or {hint}"
            ),
        });
    }
}

/// Map from (wire file, type name) to the type's current source line, for
/// anchoring L-WIRE findings.
pub fn wire_type_lines(files: &[FileInput<'_>]) -> HashMap<(String, String), u32> {
    let mut map = HashMap::new();
    for wf in WIRE_FILES {
        let Some(input) = files.iter().find(|f| f.path == *wf) else { continue };
        for ty in &input.parsed.types {
            map.insert(((*wf).to_string(), ty.name.clone()), ty.line);
        }
    }
    map
}

// ---------------------------------------------------------------------------
// Observability consistency (L-OBS, cross-file half).
// ---------------------------------------------------------------------------

/// Cross-file metric and span checks: one registration site per metric
/// name, consistent kind/help, and span names declared in the
/// `SPAN_NAMES` registry and all registry entries used.
pub fn check_obs_consistency(
    files: &[FileInput<'_>],
    span_registry: Option<&[(String, u32)]>,
) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    // Metric sites by name, in deterministic file order.
    let mut sites: BTreeMap<&str, Vec<(&str, &crate::parser::MetricSite)>> = BTreeMap::new();
    for f in files {
        for m in &f.parsed.metrics {
            sites.entry(m.name.as_str()).or_default().push((f.path, m));
        }
    }
    for (name, sites) in &sites {
        if sites.len() > 1 {
            let (first_file, first) = sites[0];
            for (file, m) in &sites[1..] {
                out.push(Diagnostic {
                    file: (*file).to_string(),
                    line: m.line,
                    id: "L-OBS",
                    message: format!(
                        "metric `{name}` is registered at multiple sites (first: \
                         {first_file}:{}) — route every update through one registration \
                         site so kind/help can never diverge",
                        first.line
                    ),
                });
            }
            let _ = first;
        }
    }
    // Span usage vs the registry.
    if let Some(registry) = span_registry {
        let declared: HashSet<&str> = registry.iter().map(|(n, _)| n.as_str()).collect();
        let mut used: HashSet<&str> = HashSet::new();
        for f in files {
            if f.path.starts_with("crates/obs/src/") {
                continue; // the registry and the span! macro definition
            }
            for s in &f.parsed.spans {
                used.insert(s.name.as_str());
                if !declared.contains(s.name.as_str()) {
                    out.push(Diagnostic {
                        file: f.path.to_string(),
                        line: s.line,
                        id: "L-OBS",
                        message: format!(
                            "span name {:?} is not declared in SPAN_NAMES \
                             (crates/obs/src/span_names.rs) — declare it there so span \
                             names stay greppable and consistent",
                            s.name
                        ),
                    });
                }
            }
        }
        for (name, line) in registry {
            if !used.contains(name.as_str()) {
                out.push(Diagnostic {
                    file: "crates/obs/src/span_names.rs".to_string(),
                    line: *line,
                    id: "L-OBS",
                    message: format!(
                        "SPAN_NAMES entry {name:?} is never used by a span!/enter_with_parent \
                         site — remove it or restore the instrumentation"
                    ),
                });
            }
        }
    }
    out
}

/// Per-file metric naming rules (Prometheus conventions); used by the
/// registry pass in [`crate::passes`].
pub fn metric_naming_findings(path: &str, parsed: &ParsedFile) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let diag = |line: u32, message: String| Diagnostic {
        file: path.to_string(),
        line,
        id: "L-OBS",
        message,
    };
    for m in &parsed.metrics {
        let name = m.name.as_str();
        let well_formed = name.starts_with("snn_")
            && name.len() > 4
            && name.chars().all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_');
        if !well_formed {
            out.push(diag(
                m.line,
                format!(
                    "metric name {name:?} must match `snn_[a-z0-9_]+` (workspace prefix, \
                     lowercase snake_case)"
                ),
            ));
            continue;
        }
        match m.kind {
            MetricKind::Counter => {
                if !name.ends_with("_total") {
                    out.push(diag(
                        m.line,
                        format!(
                            "counter `{name}` must end in `_total` (Prometheus counter \
                             convention)"
                        ),
                    ));
                }
            }
            MetricKind::Gauge | MetricKind::Histogram => {
                if name.ends_with("_total") {
                    out.push(diag(
                        m.line,
                        format!(
                            "{} `{name}` must not end in `_total` — that suffix is \
                             reserved for counters",
                            m.kind.as_str()
                        ),
                    ));
                }
                if m.kind == MetricKind::Histogram
                    && !(name.ends_with("_seconds")
                        || name.ends_with("_bytes")
                        || name.ends_with("_ratio"))
                {
                    out.push(diag(
                        m.line,
                        format!(
                            "histogram `{name}` must carry a base-unit suffix \
                             (`_seconds`, `_bytes` or `_ratio`)"
                        ),
                    ));
                }
            }
        }
        if m.help.as_deref().is_some_and(|h| h.is_empty()) {
            out.push(diag(m.line, format!("metric `{name}` has an empty help string")));
        }
    }
    out
}
