//! Diagnostics, allow directives and output formatting.

use crate::lexer::Comment;
use crate::sarif::json_string;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// One lint finding, anchored to a file and line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Workspace-relative path, forward slashes.
    pub file: String,
    /// 1-based line number.
    pub line: u32,
    /// Stable lint id, e.g. `L-PANIC`.
    pub id: &'static str,
    /// Human-readable explanation.
    pub message: String,
}

impl Diagnostic {
    /// Renders the canonical single-line text form.
    pub fn render(&self) -> String {
        format!("{}:{}: [{}] {}", self.file, self.line, self.id, self.message)
    }
}

/// An in-source suppression: `// snn-lint: allow(L-XXX): justification`.
///
/// A trailing directive suppresses findings on its own line; a standalone
/// directive suppresses findings on the next line. The justification text
/// is mandatory — an empty one is itself a finding ([`crate::ALLOW_ID`]).
#[derive(Debug, Clone)]
pub struct AllowDirective {
    /// Lint ids this directive suppresses.
    pub ids: Vec<String>,
    /// The written justification (may be empty — then the directive is
    /// reported instead of honored).
    pub justification: String,
    /// Line the directive comment starts on.
    pub line: u32,
    /// The line whose findings it suppresses.
    pub target_line: u32,
    /// Set when the directive suppressed at least one finding.
    pub used: bool,
}

const DIRECTIVE_PREFIX: &str = "snn-lint:";

/// Extracts every allow directive from the comments of one file.
///
/// Returns the directives plus malformed-directive diagnostics (a comment
/// that starts with `snn-lint:` but does not parse is an error, not a
/// silently ignored annotation).
pub fn parse_directives(
    file: &str,
    comments: &[Comment],
) -> (Vec<AllowDirective>, Vec<Diagnostic>) {
    let mut directives = Vec::new();
    let mut errors = Vec::new();
    for comment in comments {
        let text = comment.text.trim();
        let Some(rest) = text.strip_prefix(DIRECTIVE_PREFIX) else { continue };
        let rest = rest.trim();
        let malformed = |why: &str| Diagnostic {
            file: file.to_string(),
            line: comment.line,
            id: crate::ALLOW_ID,
            message: format!("malformed snn-lint directive ({why}): `// snn-lint: {rest}`"),
        };
        let Some(args) = rest.strip_prefix("allow") else {
            errors.push(malformed("only `allow(<ID>): <justification>` is supported"));
            continue;
        };
        let args = args.trim_start();
        let Some(close) = args.find(')') else {
            errors.push(malformed("missing `)`"));
            continue;
        };
        let Some(inner) = args[..close].strip_prefix('(') else {
            errors.push(malformed("missing `(` after allow"));
            continue;
        };
        let ids: Vec<String> =
            inner.split(',').map(|s| s.trim().to_string()).filter(|s| !s.is_empty()).collect();
        if ids.is_empty() {
            errors.push(malformed("no lint id inside allow(…)"));
            continue;
        }
        let after = args[close + 1..].trim_start();
        let justification = after.strip_prefix(':').map(str::trim).unwrap_or("").to_string();
        let target_line = if comment.trailing { comment.line } else { comment.line + 1 };
        directives.push(AllowDirective {
            ids,
            justification,
            line: comment.line,
            target_line,
            used: false,
        });
    }
    (directives, errors)
}

/// Applies directives to raw findings: suppressed findings are dropped,
/// and directive misuse (no justification, unknown id, unused directive)
/// is reported as new findings.
pub fn apply_directives(
    file: &str,
    findings: Vec<Diagnostic>,
    mut directives: Vec<AllowDirective>,
    known_ids: &[&str],
) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for finding in findings {
        let suppressed = directives.iter_mut().any(|d| {
            let hit = d.target_line == finding.line
                && d.ids.iter().any(|id| id == finding.id)
                && !d.justification.is_empty();
            if hit {
                d.used = true;
            }
            hit
        });
        if !suppressed {
            out.push(finding);
        }
    }
    for d in &directives {
        if d.justification.is_empty() {
            out.push(Diagnostic {
                file: file.to_string(),
                line: d.line,
                id: crate::ALLOW_ID,
                message: format!(
                    "allow({}) carries no justification — write `allow({}): <why this is sound>`",
                    d.ids.join(", "),
                    d.ids.join(", ")
                ),
            });
            continue;
        }
        for id in &d.ids {
            if !known_ids.contains(&id.as_str()) {
                out.push(Diagnostic {
                    file: file.to_string(),
                    line: d.line,
                    id: crate::ALLOW_ID,
                    message: format!("allow({id}) names an unknown lint id"),
                });
            }
        }
        if !d.used {
            out.push(Diagnostic {
                file: file.to_string(),
                line: d.line,
                id: crate::ALLOW_ID,
                message: format!(
                    "allow({}) suppresses nothing on line {} — stale directive, remove it",
                    d.ids.join(", "),
                    d.target_line
                ),
            });
        }
    }
    out
}

/// Renders diagnostics as a JSON document:
/// `{"checked_files": N, "diagnostics": [{file, line, id, message}, …]}`.
///
/// Hand-rolled (the tool is dependency-free); strings are escaped per
/// RFC 8259.
pub fn to_json(diagnostics: &[Diagnostic], checked_files: usize) -> String {
    let mut s = String::new();
    let _ = write!(s, "{{\"checked_files\":{checked_files},\"diagnostics\":[");
    for (i, d) in diagnostics.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let _ = write!(
            s,
            "{{\"file\":{},\"line\":{},\"id\":{},\"message\":{}}}",
            json_string(&d.file),
            d.line,
            json_string(d.id),
            json_string(&d.message)
        );
    }
    s.push_str("]}");
    s
}

/// Stable ordering for reports: by file, then line, then id.
pub fn sort(diagnostics: &mut [Diagnostic]) {
    diagnostics
        .sort_by(|a, b| (a.file.as_str(), a.line, a.id).cmp(&(b.file.as_str(), b.line, b.id)));
}

/// Per-id counts, for the summary line.
pub fn count_by_id(diagnostics: &[Diagnostic]) -> BTreeMap<&'static str, usize> {
    let mut counts = BTreeMap::new();
    for d in diagnostics {
        *counts.entry(d.id).or_insert(0) += 1;
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn directive(src: &str) -> (Vec<AllowDirective>, Vec<Diagnostic>) {
        parse_directives("f.rs", &lex(src).comments)
    }

    #[test]
    fn parses_trailing_and_standalone_targets() {
        let (ds, errs) = directive(
            "let a = 1; // snn-lint: allow(L-PANIC): fine here\n\
             // snn-lint: allow(L-CAST): next line is checked\nlet b = 2;",
        );
        assert!(errs.is_empty());
        assert_eq!(ds[0].target_line, 1);
        assert_eq!(ds[1].target_line, 3);
        assert_eq!(ds[1].ids, vec!["L-CAST"]);
        assert_eq!(ds[1].justification, "next line is checked");
    }

    #[test]
    fn missing_justification_is_kept_but_flagged_on_apply() {
        let (ds, errs) = directive("// snn-lint: allow(L-PANIC):\nfoo();");
        assert!(errs.is_empty());
        assert!(ds[0].justification.is_empty());
        let out = apply_directives("f.rs", vec![], ds, &["L-PANIC"]);
        assert_eq!(out.len(), 1);
        assert!(out[0].message.contains("no justification"));
    }

    #[test]
    fn malformed_directives_are_errors() {
        let (_, errs) = directive("// snn-lint: deny(L-PANIC): nope\n");
        assert_eq!(errs.len(), 1);
        assert!(errs[0].message.contains("malformed"));
    }

    #[test]
    fn suppression_and_unused_reporting() {
        let (ds, _) = directive(
            "// snn-lint: allow(L-PANIC): justified\nfoo();\n// snn-lint: allow(L-CAST): stale\n",
        );
        let finding =
            Diagnostic { file: "f.rs".into(), line: 2, id: "L-PANIC", message: "x".into() };
        let out = apply_directives("f.rs", vec![finding], ds, &["L-PANIC", "L-CAST"]);
        // The L-PANIC finding is gone; the stale L-CAST directive is reported.
        assert_eq!(out.len(), 1);
        assert!(out[0].message.contains("suppresses nothing"));
    }

    #[test]
    fn unknown_id_in_allow_is_reported() {
        let (ds, _) = directive("// snn-lint: allow(L-BOGUS): misspelled\nfoo();\n");
        let out = apply_directives("f.rs", vec![], ds, &["L-PANIC"]);
        assert!(out.iter().any(|d| d.message.contains("unknown lint id")));
    }

    #[test]
    fn json_escapes_and_counts() {
        let d = Diagnostic {
            file: "a\"b.rs".into(),
            line: 3,
            id: "L-PANIC",
            message: "tab\there".into(),
        };
        let json = to_json(&[d], 7);
        assert!(json.contains("\"checked_files\":7"));
        assert!(json.contains("a\\\"b.rs"));
        assert!(json.contains("tab\\there"));
    }
}
