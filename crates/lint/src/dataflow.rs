//! A tiny intraprocedural forward-dataflow framework over [`crate::cfg`]
//! graphs, plus the held-guard analysis used by L-HELDLOCK and
//! L-LOCKGRAPH.
//!
//! The framework is a classic worklist fixpoint for *may* analyses: facts
//! are joined over predecessors, the transfer function is applied per
//! node, and nodes are revisited until nothing changes. CFGs here are tiny
//! (one function each), so no ordering heuristics are needed.

use std::collections::BTreeSet;

use crate::cfg::{FnCfg, Node, ENTRY};

/// A forward dataflow analysis over CFG nodes.
pub trait Analysis {
    /// The lattice element propagated along edges.
    type Fact: Clone + PartialEq;

    /// The fact holding at function entry.
    fn boundary(&self) -> Self::Fact;

    /// Join of two facts (least upper bound for a may-analysis).
    fn join(&self, a: &Self::Fact, b: &Self::Fact) -> Self::Fact;

    /// Applies one node's effect to the incoming fact.
    fn transfer(&self, node: &Node, fact: &Self::Fact) -> Self::Fact;
}

/// Runs `analysis` to fixpoint; returns the fact holding *on entry to*
/// each node (`None` for unreachable nodes).
pub fn solve<A: Analysis>(cfg: &FnCfg, analysis: &A) -> Vec<Option<A::Fact>> {
    let n = cfg.nodes.len();
    let mut input: Vec<Option<A::Fact>> = vec![None; n];
    input[ENTRY] = Some(analysis.boundary());
    let mut work: Vec<usize> = vec![ENTRY];
    while let Some(node) = work.pop() {
        let Some(in_fact) = input[node].clone() else { continue };
        let out = analysis.transfer(&cfg.nodes[node], &in_fact);
        for &succ in &cfg.succ[node] {
            let merged = match &input[succ] {
                Some(existing) => analysis.join(existing, &out),
                None => out.clone(),
            };
            if input[succ].as_ref() != Some(&merged) {
                input[succ] = Some(merged);
                if !work.contains(&succ) {
                    work.push(succ);
                }
            }
        }
    }
    input
}

/// May-held guard analysis: the fact is the set of guard ids (indices
/// into [`FnCfg::guards`]) that may be live on entry to a node.
pub struct HeldGuards;

impl Analysis for HeldGuards {
    type Fact = BTreeSet<usize>;

    fn boundary(&self) -> Self::Fact {
        BTreeSet::new()
    }

    fn join(&self, a: &Self::Fact, b: &Self::Fact) -> Self::Fact {
        a.union(b).copied().collect()
    }

    fn transfer(&self, node: &Node, fact: &Self::Fact) -> Self::Fact {
        let mut out = fact.clone();
        match node {
            Node::Acquire { guard } => {
                out.insert(*guard);
            }
            Node::Release { guard } => {
                out.remove(guard);
            }
            _ => {}
        }
        out
    }
}

/// Convenience: the held-guard fact on entry to every node.
pub fn held_guards(cfg: &FnCfg) -> Vec<Option<BTreeSet<usize>>> {
    solve(cfg, &HeldGuards)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cfg;
    use crate::lexer::lex;
    use crate::parser;
    use crate::passes::live_mask;

    fn held_at_call(src: &str, callee: &str) -> Vec<String> {
        let lexed = lex(src);
        let live = live_mask(&lexed.tokens);
        let parsed = parser::parse(&lexed.tokens, &live);
        let lock_of = |r: &str| match r {
            "queue" => Some("service.queue".to_string()),
            "jobs" => Some("service.store.jobs".to_string()),
            _ => None,
        };
        let g = cfg::build(&parsed.fns[0], &lock_of);
        let facts = held_guards(&g);
        for (i, node) in g.nodes.iter().enumerate() {
            if let Node::Call(c) = node {
                if c.name == callee {
                    let held = facts[i].clone().unwrap_or_default();
                    return held.iter().map(|&gid| g.guards[gid].lock.clone()).collect();
                }
            }
        }
        panic!("no call to {callee} found");
    }

    #[test]
    fn guard_held_across_call_in_same_block() {
        let held = held_at_call(
            "fn f(s: &S) {\n    let g = s.queue.lock();\n    s.store.persist();\n}\n",
            "persist",
        );
        assert_eq!(held, vec!["service.queue"]);
    }

    #[test]
    fn drop_clears_the_guard() {
        let held = held_at_call(
            "fn f(s: &S) {\n    let g = s.queue.lock();\n    drop(g);\n    s.store.persist();\n}\n",
            "persist",
        );
        assert!(held.is_empty());
    }

    #[test]
    fn scoped_block_clears_the_guard() {
        let held = held_at_call(
            "fn f(s: &S) {\n    {\n        let g = s.queue.lock();\n        g.push(1);\n    }\n    s.store.persist();\n}\n",
            "persist",
        );
        assert!(held.is_empty());
    }

    #[test]
    fn may_analysis_joins_branches() {
        // Guard acquired only on one branch: the join point may hold it.
        let held = held_at_call(
            "fn f(s: &S, c: bool) {\n    let g = s.queue.lock();\n    if c {\n        drop(g);\n    }\n    s.store.persist();\n}\n",
            "persist",
        );
        // drop() inside the branch refers to the outer binding; the else
        // path still holds it, so the may-set is non-empty.
        assert_eq!(held, vec!["service.queue"]);
    }

    #[test]
    fn nested_guards_stack() {
        let held = held_at_call(
            "fn f(s: &S) {\n    let q = s.queue.lock();\n    let j = s.jobs.lock();\n    s.net.send_all();\n}\n",
            "send_all",
        );
        assert_eq!(held, vec!["service.queue", "service.store.jobs"]);
    }
}
