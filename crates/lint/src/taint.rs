//! Interprocedural determinism-taint analysis (L-DET-FLOW, L-DET-ITER).
//!
//! The repo's load-bearing guarantee — collapsed-campaign expansion,
//! cluster merge, reliability distribution — is *bitwise-identical*
//! verdicts and FNV digests. This module proves, statically and
//! conservatively, that no nondeterministic value can flow into a
//! serialized result:
//!
//! - **Sources** introduce taint: wall-clock reads outside the sanctioned
//!   `snn_obs::clock` module, unseeded RNG (`thread_rng`, `from_entropy`,
//!   `rand::random`), thread identity, environment variables, and — the
//!   big one — iteration over `HashMap`/`HashSet`, whose order differs
//!   per process.
//! - **Propagation** flows through assignments (statement [`cfg::Node::Bind`]
//!   nodes commit expression taint to `let` bindings), through arguments
//!   and receivers of further calls, and *interprocedurally* through
//!   return values via per-function summaries ([`summaries`]) resolved by
//!   the same name-based, stoplist-guarded call graph that powers
//!   L-HELDLOCK.
//! - **Sinks** are anything serialized into a result: `verdict_digest` /
//!   `verdict_digest_hex` (FNV digest inputs), `write_line` (the wire
//!   protocol), and `fs::write` (result files).
//!
//! The analysis is a forward may-analysis over the per-function CFG: the
//! fact is a map from live binding names to their taint origin plus the
//! taint of the value currently being built by the statement. Everything
//! over-approximates (any tainted argument taints a call's value; loops
//! and branches join) except pattern bindings (`if let`, `for` patterns,
//! destructuring `let`), which are not tracked — a documented
//! incompleteness, partially covered by L-DET-ITER flagging unordered
//! iteration *without* requiring proven sink reach.
//!
//! Sanitizers: in-place `sort*` method calls clear a binding's taint
//! (sorting is exactly the documented fix for iteration-order taint).

use std::collections::{BTreeMap, BTreeSet, HashMap};

use crate::cfg::{self, Node};
use crate::dataflow::{self, Analysis};
use crate::diag::Diagnostic;
use crate::facts::{self, Facts, FileInput};
use crate::parser::{Block, CallEvent, Stmt};

/// Methods whose iteration order over `HashMap`/`HashSet` is
/// nondeterministic per process.
pub const ITER_METHODS: &[&str] =
    &["iter", "iter_mut", "keys", "values", "values_mut", "drain", "into_iter"];

/// Method-call prefixes that deterministically reorder a collection in
/// place, clearing its taint.
const SANITIZER_METHODS: &[&str] = &[
    "sort",
    "sort_by",
    "sort_by_key",
    "sort_unstable",
    "sort_unstable_by",
    "sort_unstable_by_key",
];

/// Crates whose serialized results must be bitwise-reproducible; the
/// L-DET-FLOW and L-DET-ITER passes run here.
pub const DIGEST_CRATES: &[&str] = &["faults", "batch", "cluster", "reliability", "analyze"];

/// `true` when `path` is in a digest-equality crate.
pub fn in_digest_crates(path: &str) -> bool {
    facts::crate_key(path).is_some_and(|k| DIGEST_CRATES.contains(&k))
}

// ---------------------------------------------------------------------------
// Sources, sinks, unordered-collection facts.
// ---------------------------------------------------------------------------

/// Collects, per *file*, the binding/field identifiers holding an
/// unordered collection (`HashMap` / `HashSet`): struct fields whose type
/// mentions one, and simple `let` bindings constructed from one.
///
/// File granularity (not crate) keeps resolution precise: binding names
/// are file-local, and the repo keeps a struct's iterating code next to
/// its definition. A field iterated from a *different* file than the one
/// defining it is out of scope — and crate-wide name matching is worse,
/// not better: one file's `campaigns: HashMap` cache must not flag
/// another file's `campaigns: BTreeMap` as unordered.
pub fn unordered_idents(files: &[FileInput<'_>]) -> HashMap<String, BTreeSet<String>> {
    let mut out: HashMap<String, BTreeSet<String>> = HashMap::new();
    for f in files {
        let set = out.entry(f.path.to_string()).or_default();
        for ty in &f.parsed.types {
            for field in &ty.fields {
                if field.ty.contains("HashMap") || field.ty.contains("HashSet") {
                    set.insert(field.name.clone());
                }
            }
        }
        for fun in &f.parsed.fns {
            collect_unordered_lets(&fun.body, set);
        }
    }
    out
}

/// `let m = HashMap::new()` / `HashSet::with_capacity(..)` bindings.
fn collect_unordered_lets(block: &Block, set: &mut BTreeSet<String>) {
    for stmt in &block.stmts {
        match stmt {
            Stmt::Let { name: Some(name), calls, .. }
                if calls.iter().any(|c| {
                    c.path_prefix.as_deref().is_some_and(|p| p == "HashMap" || p == "HashSet")
                }) =>
            {
                set.insert(name.clone());
            }
            Stmt::If { then_b, else_b, .. } => {
                collect_unordered_lets(then_b, set);
                if let Some(e) = else_b {
                    collect_unordered_lets(e, set);
                }
            }
            Stmt::While { body, .. }
            | Stmt::For { body, .. }
            | Stmt::Loop { body, .. }
            | Stmt::Sub { body, .. } => collect_unordered_lets(body, set),
            Stmt::Match { arms, .. } => {
                for arm in arms {
                    collect_unordered_lets(arm, set);
                }
            }
            _ => {}
        }
    }
}

/// Classifies one call as a taint source. `unordered` is the enclosing
/// file's unordered-collection ident set. Returns the human description
/// of the nondeterminism introduced.
pub fn classify_source(c: &CallEvent, unordered: &BTreeSet<String>) -> Option<String> {
    if let Some(prefix) = c.path_prefix.as_deref() {
        return match (prefix, c.name.as_str()) {
            ("Instant", "now") => Some("`Instant::now()` (wall clock)".into()),
            ("SystemTime", "now") => Some("`SystemTime::now()` (wall clock)".into()),
            ("rand", "random") => Some("`rand::random()` (unseeded RNG)".into()),
            ("env", "var" | "vars" | "var_os") => {
                Some(format!("`env::{}()` (environment read)", c.name))
            }
            ("thread", "current") => Some("`thread::current()` (thread identity)".into()),
            _ => None,
        };
    }
    match c.name.as_str() {
        "thread_rng" => Some("`thread_rng()` (unseeded RNG)".into()),
        "from_entropy" => Some("`from_entropy()` (unseeded RNG)".into()),
        name if c.is_method && ITER_METHODS.contains(&name) => {
            let recv = c.receiver.as_deref()?;
            unordered.contains(recv).then(|| {
                format!("iteration over unordered `{recv}` (`.{name}()` on a HashMap/HashSet)")
            })
        }
        _ => None,
    }
}

/// Classifies one call as a serialization sink; returns its description.
pub fn sink_desc(c: &CallEvent) -> Option<&'static str> {
    match c.name.as_str() {
        "verdict_digest" | "verdict_digest_hex" => Some("the FNV verdict digest"),
        "write_line" if !c.is_method => Some("a wire-protocol record (`write_line`)"),
        "write" if c.path_prefix.as_deref() == Some("fs") => Some("a result file (`fs::write`)"),
        _ => None,
    }
}

/// `true` when a method call deterministically reorders its receiver in
/// place (clearing iteration-order taint).
fn is_sanitizer(c: &CallEvent) -> bool {
    c.is_method && SANITIZER_METHODS.contains(&c.name.as_str())
}

// ---------------------------------------------------------------------------
// Interprocedural summaries.
// ---------------------------------------------------------------------------

/// The namespace function a taint-relevant call may resolve to: bare or
/// method calls whose name is summarized and not stoplisted. Mirrors the
/// blocking-closure resolution rules.
fn summary_callee<'a>(c: &CallEvent, summaries: &'a BTreeMap<String, String>) -> Option<&'a str> {
    if c.path_prefix.is_some() || c.name == "drop" || facts::is_stoplisted(&c.name) {
        return None;
    }
    summaries.get_key_value(c.name.as_str()).map(|(k, _)| k.as_str())
}

/// Calls in return position: every `return` statement plus the
/// function's top-level tail expression. Nested construct tails (`if` /
/// `match` arms as tail values) are not walked — a documented
/// under-approximation.
fn return_calls(block: &Block, top: bool, out: &mut Vec<CallEvent>) {
    let last = block.stmts.len().saturating_sub(1);
    for (i, stmt) in block.stmts.iter().enumerate() {
        match stmt {
            Stmt::Return { calls, .. } => out.extend(calls.iter().cloned()),
            Stmt::Expr { calls, .. } if top && i == last => out.extend(calls.iter().cloned()),
            Stmt::If { then_b, else_b, .. } => {
                return_calls(then_b, false, out);
                if let Some(e) = else_b {
                    return_calls(e, false, out);
                }
            }
            Stmt::While { body, .. }
            | Stmt::For { body, .. }
            | Stmt::Loop { body, .. }
            | Stmt::Sub { body, .. } => return_calls(body, false, out),
            Stmt::Match { arms, .. } => {
                for arm in arms {
                    return_calls(arm, false, out);
                }
            }
            _ => {}
        }
    }
}

/// Builds per-function taint summaries: fn name → description of the
/// nondeterminism its return value may carry, with the interprocedural
/// chain rendered `source -> \`callee()\` -> …`. `crates/obs/src` is
/// exempt: its clock module holds the one sanctioned raw clock read, and
/// values routed through `snn_obs::clock` are deterministic by contract
/// (the monotonic epoch is pinned per process run, and campaign results
/// never embed it).
pub fn summaries(
    files: &[FileInput<'_>],
    unordered: &HashMap<String, BTreeSet<String>>,
) -> BTreeMap<String, String> {
    let empty = BTreeSet::new();
    // fn name → its return-position calls (BTreeMap: deterministic
    // fixpoint, so the chain locked in by `or_insert` is stable).
    let mut rets: BTreeMap<String, Vec<(CallEvent, String)>> = BTreeMap::new();
    let mut out: BTreeMap<String, String> = BTreeMap::new();
    for f in files {
        if facts::crate_key(f.path).is_none() || f.path.starts_with("crates/obs/src/") {
            continue;
        }
        let file_unordered = unordered.get(f.path).unwrap_or(&empty);
        for fun in &f.parsed.fns {
            let mut calls = Vec::new();
            return_calls(&fun.body, true, &mut calls);
            for c in calls {
                if let Some(desc) = classify_source(&c, file_unordered) {
                    out.entry(fun.name.clone()).or_insert(desc);
                }
                rets.entry(fun.name.clone()).or_default().push((c, f.path.to_string()));
            }
        }
    }
    // Fixpoint: a function returning a summarized callee's value inherits
    // its taint, with the chain extended.
    loop {
        let mut changed = false;
        for (name, calls) in &rets {
            if out.contains_key(name) {
                continue;
            }
            for (c, _) in calls {
                let Some(callee) = summary_callee(c, &out) else { continue };
                if callee == name {
                    continue;
                }
                let chained = format!("{} -> `{callee}()`", out[callee]);
                out.insert(name.clone(), chained);
                changed = true;
                break;
            }
        }
        if !changed {
            break;
        }
    }
    out
}

// ---------------------------------------------------------------------------
// The dataflow instance.
// ---------------------------------------------------------------------------

/// Where a tainted value came from, with the propagation chain already
/// rendered into `desc`. Ordered line-first so joins pick a deterministic
/// representative.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct TaintOrigin {
    /// Line where the taint entered this function.
    pub line: u32,
    /// Human chain: ``"`thread_rng()` (unseeded RNG) -> `entropy()` -> `x`"``.
    pub desc: String,
}

/// The dataflow fact: taint of live bindings plus the taint of the value
/// the current statement is building.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TaintFact {
    /// Binding name → origin of its taint.
    pub vars: BTreeMap<String, TaintOrigin>,
    /// Taint of the in-flight statement value (cleared at each
    /// [`Node::Bind`]).
    pub expr: Option<TaintOrigin>,
}

/// Forward may-analysis instance: see the module docs for the lattice.
pub struct TaintState<'a> {
    /// The enclosing file's unordered-collection idents.
    pub unordered: &'a BTreeSet<String>,
    /// Interprocedural return-taint summaries.
    pub summaries: &'a BTreeMap<String, String>,
}

fn min_origin(a: Option<TaintOrigin>, b: Option<TaintOrigin>) -> Option<TaintOrigin> {
    match (a, b) {
        (Some(x), Some(y)) => Some(x.min(y)),
        (x, y) => x.or(y),
    }
}

impl TaintState<'_> {
    /// The origin of any tainted input to `c` (receiver or argument) in
    /// `fact`, or the in-flight expression taint.
    fn tainted_input(&self, c: &CallEvent, fact: &TaintFact) -> Option<TaintOrigin> {
        let mut origin = fact.expr.clone();
        if let Some(recv) = c.receiver.as_deref() {
            origin = min_origin(origin, fact.vars.get(recv).cloned());
        }
        for arg in &c.arg_idents {
            origin = min_origin(origin, fact.vars.get(arg).cloned());
        }
        origin
    }
}

impl Analysis for TaintState<'_> {
    type Fact = TaintFact;

    fn boundary(&self) -> TaintFact {
        TaintFact::default()
    }

    fn join(&self, a: &TaintFact, b: &TaintFact) -> TaintFact {
        let mut vars = a.vars.clone();
        for (name, origin) in &b.vars {
            vars.entry(name.clone())
                .and_modify(|o| {
                    if origin < o {
                        *o = origin.clone();
                    }
                })
                .or_insert_with(|| origin.clone());
        }
        TaintFact { vars, expr: min_origin(a.expr.clone(), b.expr.clone()) }
    }

    fn transfer(&self, node: &Node, fact: &TaintFact) -> TaintFact {
        let mut out = fact.clone();
        match node {
            Node::Call(c) => {
                if is_sanitizer(c) {
                    if let Some(recv) = c.receiver.as_deref() {
                        out.vars.remove(recv);
                    }
                    return out;
                }
                if let Some(desc) = classify_source(c, self.unordered) {
                    out.expr = min_origin(out.expr, Some(TaintOrigin { line: c.line, desc }));
                } else if let Some(callee) = summary_callee(c, self.summaries) {
                    let desc = format!("{} -> `{callee}()`", self.summaries[callee]);
                    out.expr = min_origin(out.expr, Some(TaintOrigin { line: c.line, desc }));
                } else if let Some(origin) = self.tainted_input(c, fact) {
                    // A tainted receiver or argument taints the value the
                    // statement keeps building.
                    out.expr = min_origin(out.expr, Some(origin));
                }
            }
            Node::Bind { name, .. } => {
                if let (Some(name), Some(origin)) = (name, out.expr.take()) {
                    let desc = format!("{} -> `{name}`", origin.desc);
                    out.vars.insert(name.clone(), TaintOrigin { line: origin.line, desc });
                }
                out.expr = None;
            }
            _ => {}
        }
        out
    }
}

// ---------------------------------------------------------------------------
// The passes.
// ---------------------------------------------------------------------------

/// L-DET-FLOW: source→sink findings for one file, with the full
/// propagation chain in the message (like L-LOCKGRAPH cycle reports).
pub fn flow_findings(
    path: &str,
    parsed: &crate::parser::ParsedFile,
    facts: &Facts,
) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let empty = BTreeSet::new();
    let unordered = facts.unordered.get(path).unwrap_or(&empty);
    let lock_of = facts.lock_of(path);
    let analysis = TaintState { unordered, summaries: &facts.fn_taint };
    // Nested fns appear twice in the parse (standalone + inline): dedup.
    let mut seen: BTreeSet<(u32, String)> = BTreeSet::new();
    for fun in &parsed.fns {
        let g = cfg::build(fun, &lock_of);
        let flow = dataflow::solve(&g, &analysis);
        for (i, node) in g.nodes.iter().enumerate() {
            let Node::Call(c) = node else { continue };
            let Some(sink) = sink_desc(c) else { continue };
            let Some(fact) = flow[i].as_ref() else { continue };
            let origin = analysis
                .tainted_input(c, fact)
                .or_else(|| nested_arg_taint(&g, &flow, i, &analysis));
            let Some(origin) = origin else { continue };
            let message = format!(
                "nondeterministic value reaches {sink}: {} flows into `{}` — make the \
                 value deterministic at its origin (seeded RNG, `snn_obs::clock`, \
                 BTreeMap/sorted order) so digests stay bitwise-reproducible",
                origin.desc, c.name
            );
            if seen.insert((c.line, message.clone())) {
                out.push(Diagnostic {
                    file: path.to_string(),
                    line: c.line,
                    id: "L-DET-FLOW",
                    message,
                });
            }
        }
    }
    out
}

/// Token order puts a sink's *nested* argument calls after the sink node
/// (`verdict_digest(tainted())` lexes callee-first), so the entry fact at
/// the sink misses them. Scan the statement's remaining call chain — the
/// straight-line `Call` successors up to the next statement boundary —
/// for sources, summarized callees, or tainted-variable uses.
fn nested_arg_taint(
    g: &cfg::FnCfg,
    flow: &[Option<TaintFact>],
    sink: usize,
    analysis: &TaintState<'_>,
) -> Option<TaintOrigin> {
    let mut best: Option<TaintOrigin> = None;
    let mut i = sink;
    loop {
        let succ = g.succ.get(i)?;
        if succ.len() != 1 {
            break;
        }
        i = succ[0];
        let Node::Call(c) = &g.nodes[i] else { break };
        if let Some(desc) = classify_source(c, analysis.unordered) {
            best = min_origin(best, Some(TaintOrigin { line: c.line, desc }));
        } else if let Some(callee) = summary_callee(c, analysis.summaries) {
            let desc = format!("{} -> `{callee}()`", analysis.summaries[callee]);
            best = min_origin(best, Some(TaintOrigin { line: c.line, desc }));
        } else if let Some(fact) = flow[i].as_ref() {
            best = min_origin(best, analysis.tainted_input(c, fact));
        }
    }
    best
}

/// L-DET-ITER: unordered-collection iteration in digest-equality code,
/// flagged even without proven sink reach (pattern bindings defeat the
/// flow analysis, so iteration order gets its own sound-by-scope pass).
pub fn iter_findings(
    path: &str,
    parsed: &crate::parser::ParsedFile,
    facts: &Facts,
) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let Some(unordered) = facts.unordered.get(path) else { return out };
    let mut seen: BTreeSet<(u32, String)> = BTreeSet::new();
    for fun in &parsed.fns {
        let mut calls = Vec::new();
        facts::all_calls(&fun.body, &mut calls);
        for c in calls {
            if !(c.is_method && ITER_METHODS.contains(&c.name.as_str())) {
                continue;
            }
            let Some(recv) = c.receiver.as_deref() else { continue };
            if !unordered.contains(recv) {
                continue;
            }
            let message = format!(
                "iteration over unordered collection `{recv}` (`.{}()`) in digest-equality \
                 code — its order differs per process; use a BTreeMap/BTreeSet, or collect \
                 and sort before the order can reach a result",
                c.name
            );
            if seen.insert((c.line, message.clone())) {
                out.push(Diagnostic {
                    file: path.to_string(),
                    line: c.line,
                    id: "L-DET-ITER",
                    message,
                });
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::parser;
    use crate::passes::live_mask;

    fn inputs_of(_path: &str, src: &str) -> (parser::ParsedFile, Vec<crate::lexer::Token>) {
        let lexed = lex(src);
        let live = live_mask(&lexed.tokens);
        (parser::parse(&lexed.tokens, &live), lexed.tokens)
    }

    #[test]
    fn unordered_idents_from_fields_and_lets() {
        let (parsed, _) = inputs_of(
            "crates/cluster/src/x.rs",
            "struct S { workers: HashMap<String,W>, names: Vec<String> }\n\
             fn f() { let mut cache = HashMap::new(); let v = Vec::new(); }\n",
        );
        let files = [FileInput { path: "crates/cluster/src/x.rs", parsed: &parsed }];
        let map = unordered_idents(&files);
        let set = &map["crates/cluster/src/x.rs"];
        assert!(set.contains("workers") && set.contains("cache"));
        assert!(!set.contains("names") && !set.contains("v"));
    }

    #[test]
    fn summaries_chain_through_calls() {
        let (parsed, _) = inputs_of(
            "crates/cluster/src/x.rs",
            "fn entropy() -> u64 { thread_rng() }\n\
             fn indirection() -> u64 { entropy() }\n",
        );
        let files = [FileInput { path: "crates/cluster/src/x.rs", parsed: &parsed }];
        let sums = summaries(&files, &unordered_idents(&files));
        assert!(sums["entropy"].contains("thread_rng"));
        assert!(sums["indirection"].contains("entropy"), "{sums:?}");
    }

    #[test]
    fn obs_clock_is_exempt_from_summaries() {
        let (parsed, _) = inputs_of(
            "crates/obs/src/clock.rs",
            "fn raw_instant() -> Instant { Instant::now() }\n",
        );
        let files = [FileInput { path: "crates/obs/src/clock.rs", parsed: &parsed }];
        assert!(summaries(&files, &HashMap::new()).is_empty());
    }

    #[test]
    fn source_classification() {
        let (parsed, _) = inputs_of(
            "crates/cluster/src/x.rs",
            "fn f(m: &M) { Instant::now(); env::var(\"X\"); m.map.keys(); m.v.iter(); }\n",
        );
        let mut calls = Vec::new();
        facts::all_calls(&parsed.fns[0].body, &mut calls);
        let unordered: BTreeSet<String> = ["map".to_string()].into();
        let descs: Vec<Option<String>> =
            calls.iter().map(|c| classify_source(c, &unordered)).collect();
        assert!(descs[0].as_deref().unwrap().contains("wall clock"));
        assert!(descs[1].as_deref().unwrap().contains("environment"));
        assert!(descs[2].as_deref().unwrap().contains("unordered `map`"));
        assert!(descs[3].is_none(), "Vec iteration is ordered");
    }
}
