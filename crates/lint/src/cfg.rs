//! Per-function control-flow graphs over the parsed statement tree.
//!
//! Nodes are *events* the concurrency passes care about — lock
//! acquisitions, releases, and calls — rather than raw statements. The
//! builder encodes the Rust 2021 temporary-lifetime rules that matter for
//! guard analysis:
//!
//! - a let-bound guard lives until `drop(name)` or the end of its
//!   enclosing block;
//! - a statement temporary (`self.queue.lock().len()`) dies at the end of
//!   its statement;
//! - an `if let` / `while let` / `match` scrutinee temporary lives until
//!   the end of the *whole* construct (the 2021 rule that makes
//!   `if let Some(x) = m.lock().get(k) { … }` hold the guard across the
//!   body);
//! - a `for` loop iterator temporary lives for the entire loop;
//! - plain `if` / `while` condition temporaries die when the condition
//!   finishes evaluating.
//!
//! `break` / `continue` are approximated as ordinary fall-through and
//! `loop` bodies get a synthetic exit edge; both over-approximate the set
//! of live guards, which is the safe direction for L-HELDLOCK and
//! L-LOCKGRAPH (possible false positives, no false negatives from control
//! flow).

use crate::parser::{Block, CallEvent, FnDef, Stmt};

/// One CFG node.
#[derive(Debug)]
pub enum Node {
    /// Function entry.
    Entry,
    /// Function exit (also the target of `return`).
    Exit,
    /// Control-flow join (no event).
    Join,
    /// A named-lock acquisition creating guard `guard`.
    Acquire {
        /// Index into [`FnCfg::guards`].
        guard: usize,
    },
    /// Guard `guard` goes out of scope or is dropped.
    Release {
        /// Index into [`FnCfg::guards`].
        guard: usize,
    },
    /// Any other call event (blocking-op and call-graph analysis).
    Call(CallEvent),
    /// Statement boundary. `name` is the `let` binding the statement's
    /// value flows into (`None` for expression statements and construct
    /// heads). The taint analysis commits expression taint to the binding
    /// here and clears it otherwise; guard analyses ignore these nodes.
    Bind {
        /// The `let` binding name, when the statement is a simple let.
        name: Option<String>,
        /// Source line of the statement.
        line: u32,
    },
}

/// Static information about one acquisition site.
#[derive(Debug)]
pub struct GuardInfo {
    /// Registered lock name (`"service.queue"`).
    pub lock: String,
    /// Source line of the acquisition.
    pub line: u32,
}

/// A function CFG: nodes, successor lists, and the guard table.
#[derive(Debug)]
pub struct FnCfg {
    /// Nodes; index 0 is always [`Node::Entry`], index 1 [`Node::Exit`].
    pub nodes: Vec<Node>,
    /// Successor edges per node.
    pub succ: Vec<Vec<usize>>,
    /// Acquisition sites referenced by `Acquire` / `Release` nodes.
    pub guards: Vec<GuardInfo>,
}

/// Entry node index.
pub const ENTRY: usize = 0;
/// Exit node index.
pub const EXIT: usize = 1;

/// Method names that acquire a guard when called with no arguments on a
/// known lock binding.
const ACQUIRE_METHODS: &[&str] = &["lock", "read", "write"];

/// Builds the CFG for one function. `lock_of` maps a receiver identifier
/// to its registered lock name (`queue` → `service.queue`).
pub fn build(f: &FnDef, lock_of: &dyn Fn(&str) -> Option<String>) -> FnCfg {
    let mut b = Builder {
        nodes: vec![Node::Entry, Node::Exit],
        succ: vec![Vec::new(), Vec::new()],
        guards: Vec::new(),
        scopes: vec![ScopeFrame::default()],
        lock_of,
    };
    let tails = b.block(&f.body, vec![ENTRY]);
    let frame = b.scopes.pop().unwrap_or_default();
    let tails = b.release_frame(tails, &frame);
    for t in tails {
        b.edge(t, EXIT);
    }
    FnCfg { nodes: b.nodes, succ: b.succ, guards: b.guards }
}

/// Guards opened in one lexical scope, for block-end release.
///
/// A `drop(name)` emits a `Release` on its own path but does NOT remove
/// the entry: the sibling paths that skipped the drop still hold the
/// guard, so the scope-end `Release` must stay. Releasing an
/// already-released guard is a no-op in the dataflow (set removal), so
/// double releases on the drop path are harmless.
#[derive(Default, Clone)]
struct ScopeFrame {
    /// (binding name if let-bound, guard id).
    guards: Vec<(Option<String>, usize)>,
}

struct Builder<'a> {
    nodes: Vec<Node>,
    succ: Vec<Vec<usize>>,
    guards: Vec<GuardInfo>,
    /// Lexical scope stack; `drop(name)` searches from the innermost
    /// frame outwards, so dropping an outer binding inside a nested block
    /// is modelled correctly.
    scopes: Vec<ScopeFrame>,
    lock_of: &'a dyn Fn(&str) -> Option<String>,
}

impl Builder<'_> {
    fn edge(&mut self, from: usize, to: usize) {
        if !self.succ[from].contains(&to) {
            self.succ[from].push(to);
        }
    }

    fn push(&mut self, node: Node, preds: Vec<usize>) -> usize {
        let id = self.nodes.len();
        self.nodes.push(node);
        self.succ.push(Vec::new());
        for p in preds {
            self.edge(p, id);
        }
        id
    }

    /// Emits the event chain for one run of calls. Acquisitions of known
    /// locks become `Acquire` nodes; `bound_to` receives the guard id when
    /// the run is a single acquisition bound by a `let`. Returns the new
    /// tails and the temp guard ids created by this run.
    fn calls(
        &mut self,
        calls: &[CallEvent],
        mut tails: Vec<usize>,
        bind_single: bool,
    ) -> (Vec<usize>, Vec<usize>, Option<usize>) {
        let mut temps = Vec::new();
        let mut bound = None;
        for (idx, c) in calls.iter().enumerate() {
            let acquired_lock =
                if c.is_method && c.no_args && ACQUIRE_METHODS.contains(&c.name.as_str()) {
                    c.receiver.as_deref().and_then(|r| (self.lock_of)(r))
                } else {
                    None
                };
            if let Some(lock) = acquired_lock {
                let guard = self.guards.len();
                self.guards.push(GuardInfo { lock, line: c.line });
                let n = self.push(Node::Acquire { guard }, tails);
                tails = vec![n];
                if bind_single && calls.len() == 1 && idx == 0 {
                    bound = Some(guard);
                } else {
                    temps.push(guard);
                }
            } else {
                let n = self.push(Node::Call(c.clone()), tails);
                tails = vec![n];
            }
        }
        (tails, temps, bound)
    }

    /// Emits `Release` nodes for a set of guard ids.
    fn release(&mut self, guards: &[usize], mut tails: Vec<usize>) -> Vec<usize> {
        for &g in guards {
            let n = self.push(Node::Release { guard: g }, tails);
            tails = vec![n];
        }
        tails
    }

    /// Releases every guard of one frame (reverse order).
    fn release_frame(&mut self, mut tails: Vec<usize>, frame: &ScopeFrame) -> Vec<usize> {
        for (_, g) in frame.guards.iter().rev() {
            let n = self.push(Node::Release { guard: *g }, tails);
            tails = vec![n];
        }
        tails
    }

    /// Releases every still-live guard on the whole scope stack (used on
    /// `return` paths).
    fn release_all_scopes(&mut self, mut tails: Vec<usize>) -> Vec<usize> {
        let frames = self.scopes.clone();
        for frame in frames.iter().rev() {
            tails = self.release_frame(tails, frame);
        }
        tails
    }

    /// Handles `drop(name)` against let-bound guards, innermost scope
    /// first (shadowing-aware). Emits a path-local `Release`; the scope
    /// entry stays so sibling paths still release at scope end.
    fn handle_drop(&mut self, calls: &[CallEvent], tails: &mut Vec<usize>) {
        for c in calls {
            if c.is_method || c.name != "drop" {
                continue;
            }
            let Some(arg) = &c.arg_ident else { continue };
            let mut found = None;
            'search: for frame in self.scopes.iter().rev() {
                for entry in frame.guards.iter().rev() {
                    if entry.0.as_deref() == Some(arg.as_str()) {
                        found = Some(entry.1);
                        break 'search;
                    }
                }
            }
            if let Some(g) = found {
                let n = self.push(Node::Release { guard: g }, std::mem::take(tails));
                *tails = vec![n];
            }
        }
    }

    /// Builds a nested block with its own scope; returns its tails after
    /// scope-end releases.
    fn nested(&mut self, body: &Block, preds: Vec<usize>) -> Vec<usize> {
        self.scopes.push(ScopeFrame::default());
        let tails = self.block(body, preds);
        let frame = self.scopes.pop().unwrap_or_default();
        self.release_frame(tails, &frame)
    }

    fn block(&mut self, b: &Block, mut tails: Vec<usize>) -> Vec<usize> {
        for stmt in &b.stmts {
            tails = self.stmt(stmt, tails);
        }
        tails
    }

    fn stmt(&mut self, stmt: &Stmt, tails: Vec<usize>) -> Vec<usize> {
        match stmt {
            Stmt::Let { name, calls, line } => {
                let (mut tails, temps, bound) = self.calls(calls, tails, name.is_some());
                self.handle_drop(calls, &mut tails);
                // Statement temporaries die here; a let-bound guard joins
                // the scope.
                let tails = self.release(&temps, tails);
                if let Some(g) = bound {
                    if let Some(frame) = self.scopes.last_mut() {
                        frame.guards.push((name.clone(), g));
                    }
                }
                vec![self.push(Node::Bind { name: name.clone(), line: *line }, tails)]
            }
            Stmt::Expr { calls, line } | Stmt::Return { calls, line } => {
                let (mut tails, temps, _) = self.calls(calls, tails, false);
                self.handle_drop(calls, &mut tails);
                let tails = self.release(&temps, tails);
                if matches!(stmt, Stmt::Return { .. }) {
                    // Every scope's guards are released on return.
                    let tails = self.release_all_scopes(tails);
                    for t in tails {
                        self.edge(t, EXIT);
                    }
                    return Vec::new();
                }
                vec![self.push(Node::Bind { name: None, line: *line }, tails)]
            }
            Stmt::If { head, is_let, then_b, else_b, line } => {
                let (head_tails, temps, _) = self.calls(head, tails, false);
                // Plain-if condition temporaries die before branching; the
                // 2021 if-let scrutinee lives across both branches.
                let head_tails =
                    if *is_let { head_tails } else { self.release(&temps, head_tails) };
                // Condition/scrutinee values are consumed here (pattern
                // bindings are not tracked — documented under-approx).
                let head_tails =
                    vec![self.push(Node::Bind { name: None, line: *line }, head_tails)];
                let then_tails = self.nested(then_b, head_tails.clone());
                let else_tails = match else_b {
                    Some(e) => self.nested(e, head_tails.clone()),
                    None => head_tails.clone(),
                };
                let join = self.push(Node::Join, [then_tails, else_tails].concat());
                if *is_let {
                    self.release(&temps, vec![join])
                } else {
                    vec![join]
                }
            }
            Stmt::While { head, is_let, body, line } => {
                let head_entry = self.push(Node::Join, tails);
                let (head_tails, temps, _) = self.calls(head, vec![head_entry], false);
                let head_tails =
                    if *is_let { head_tails } else { self.release(&temps, head_tails) };
                let head_tails =
                    vec![self.push(Node::Bind { name: None, line: *line }, head_tails)];
                let body_tails = self.nested(body, head_tails.clone());
                for t in body_tails {
                    self.edge(t, head_entry);
                }
                let after = self.push(Node::Join, head_tails);
                if *is_let {
                    self.release(&temps, vec![after])
                } else {
                    vec![after]
                }
            }
            Stmt::For { head, body, line } => {
                // The iterator expression is evaluated once; its
                // temporaries (e.g. a guard in `for x in m.lock().iter()`)
                // live for the whole loop.
                let (head_tails, temps, _) = self.calls(head, tails, false);
                let head_tails =
                    vec![self.push(Node::Bind { name: None, line: *line }, head_tails)];
                let head_entry = self.push(Node::Join, head_tails);
                let body_tails = self.nested(body, vec![head_entry]);
                for t in body_tails {
                    self.edge(t, head_entry);
                }
                let after = self.push(Node::Join, vec![head_entry]);
                self.release(&temps, vec![after])
            }
            Stmt::Loop { body, .. } => {
                let head_entry = self.push(Node::Join, tails);
                let body_tails = self.nested(body, vec![head_entry]);
                for t in &body_tails {
                    self.edge(*t, head_entry);
                }
                // Synthetic exit edge: `break` is not tracked, so pretend
                // the loop can fall through from its head and body ends.
                let mut preds = body_tails;
                preds.push(head_entry);
                vec![self.push(Node::Join, preds)]
            }
            Stmt::Match { head, arms, line } => {
                let (head_tails, temps, _) = self.calls(head, tails, false);
                let head_tails =
                    vec![self.push(Node::Bind { name: None, line: *line }, head_tails)];
                let mut arm_tails = Vec::new();
                for arm in arms {
                    arm_tails.extend(self.nested(arm, head_tails.clone()));
                }
                if arm_tails.is_empty() {
                    arm_tails = head_tails;
                }
                let join = self.push(Node::Join, arm_tails);
                // Scrutinee temporaries live across every arm.
                self.release(&temps, vec![join])
            }
            Stmt::Sub { body, .. } => self.nested(body, tails),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::parser;
    use crate::passes::live_mask;

    fn cfg_of(src: &str) -> FnCfg {
        let lexed = lex(src);
        let live = live_mask(&lexed.tokens);
        let parsed = parser::parse(&lexed.tokens, &live);
        let lock_of = |r: &str| match r {
            "queue" => Some("service.queue".to_string()),
            "running" => Some("service.running".to_string()),
            _ => None,
        };
        build(&parsed.fns[0], &lock_of)
    }

    fn count_acquires(cfg: &FnCfg) -> usize {
        cfg.nodes.iter().filter(|n| matches!(n, Node::Acquire { .. })).count()
    }

    #[test]
    fn let_bound_guard_released_by_drop() {
        let cfg =
            cfg_of("fn f(s: &S) {\n    let g = s.queue.lock();\n    drop(g);\n    s.send();\n}\n");
        assert_eq!(count_acquires(&cfg), 1);
        // The drop releases on its path; the scope end releases again (a
        // dataflow no-op) so sibling paths that skip a conditional drop
        // stay correct.
        let releases = cfg.nodes.iter().filter(|n| matches!(n, Node::Release { .. })).count();
        assert_eq!(releases, 2);
        // The send call must come after the drop's release.
        let rel = cfg.nodes.iter().position(|n| matches!(n, Node::Release { .. })).unwrap();
        let send =
            cfg.nodes.iter().position(|n| matches!(n, Node::Call(c) if c.name == "send")).unwrap();
        assert!(rel < send);
    }

    #[test]
    fn conditional_drop_keeps_sibling_path_release() {
        // drop() on one branch must not eat the scope-end release that
        // the other branch relies on; and a later acquisition in a loop
        // must not see the guard as still held via the back edge.
        let cfg = cfg_of(
            "fn f(s: &S, c: bool) {\n    loop {\n        let g = s.queue.lock();\n        if c {\n            drop(g);\n            continue;\n        }\n        drop(g);\n    }\n}\n",
        );
        let flow = crate::dataflow::held_guards(&cfg);
        for (i, node) in cfg.nodes.iter().enumerate() {
            if let Node::Acquire { .. } = node {
                let held = flow[i].clone().unwrap_or_default();
                assert!(held.is_empty(), "no guard may survive the back edge: {held:?}");
            }
        }
    }

    #[test]
    fn statement_temp_released_same_statement() {
        let cfg = cfg_of("fn f(s: &S) {\n    s.queue.lock().len();\n    s.send();\n}\n");
        // Order must be Acquire, Call(len), Release, Call(send).
        let kinds: Vec<&str> = cfg
            .nodes
            .iter()
            .map(|n| match n {
                Node::Acquire { .. } => "acq",
                Node::Release { .. } => "rel",
                Node::Call(c) => {
                    if c.name == "send" {
                        "send"
                    } else {
                        "call"
                    }
                }
                _ => "-",
            })
            .collect();
        let acq = kinds.iter().position(|k| *k == "acq").unwrap();
        let rel = kinds.iter().position(|k| *k == "rel").unwrap();
        let send = kinds.iter().position(|k| *k == "send").unwrap();
        assert!(acq < rel && rel < send);
    }

    #[test]
    fn if_let_scrutinee_guard_spans_body() {
        let cfg = cfg_of(
            "fn f(s: &S) {\n    if let Some(t) = s.running.lock().get(&1) {\n        t.cancel();\n    }\n}\n",
        );
        assert_eq!(count_acquires(&cfg), 1);
        // The release node must come after the join (i.e. after the body).
        let rel = cfg.nodes.iter().position(|n| matches!(n, Node::Release { .. })).unwrap();
        let cancel = cfg
            .nodes
            .iter()
            .position(|n| matches!(n, Node::Call(c) if c.name == "cancel"))
            .unwrap();
        assert!(cancel < rel, "guard must outlive the if-let body");
    }
}
