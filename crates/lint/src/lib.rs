//! `snn-lint`: repo-native static analysis for the snn-mtfc workspace.
//!
//! Grown from a `rust-lang/rust` `tidy`-style token linter into a small
//! analysis engine: a minimal Rust lexer ([`lexer`]), a tolerant
//! item/body/expression parser ([`parser`]), per-function control-flow
//! graphs ([`cfg`]) with a worklist dataflow framework ([`dataflow`]),
//! workspace-level fact extraction ([`facts`]), a registry of repo-
//! specific lint passes ([`passes`]) and a vendored-dependency integrity
//! check ([`vendor`]), wired into CI via `cargo run -p snn-lint`.
//!
//! The passes encode this repository's history: the seed's one real bug
//! was a silent mixed-precision cast (`L-CAST`), PR 1 introduced typed
//! errors that casual `unwrap()`s bypass (`L-PANIC`), the service crate
//! is multi-threaded with an ordered lock discipline (`L-LOCK`,
//! `L-HELDLOCK`, `L-LOCKGRAPH`), the cluster protocol promises v1–v4
//! decode compatibility (`L-WIRE`), and the telemetry surface promises
//! stable metric/span names (`L-OBS`). See DESIGN.md §15 for the
//! analysis model and each pass's soundness/completeness contract.
//!
//! Findings are suppressed in-source with a mandatory justification:
//!
//! ```text
//! // snn-lint: allow(L-CAST): usize count fits f32 exactly below 2^24
//! ```
//!
//! A trailing directive covers its own line; a standalone one covers the
//! next line. Unused or unjustified directives are themselves findings
//! (`L-ALLOW`), so the allow list can never silently rot.

#![forbid(unsafe_code)]

pub mod cfg;
pub mod dataflow;
pub mod diag;
pub mod facts;
pub mod lexer;
pub mod parser;
pub mod passes;
pub mod sarif;
pub mod taint;
pub mod vendor;

pub use diag::Diagnostic;
pub use passes::{ALLOW_ID, LOCKGRAPH_ID, VENDOR_ID, WIRE_ID};

use passes::FileContext;
use std::collections::{BTreeSet, HashMap, HashSet};
use std::fs;
use std::path::{Path, PathBuf};

/// Result of linting a workspace.
#[derive(Debug)]
pub struct Report {
    /// All findings, sorted by file, line, id.
    pub diagnostics: Vec<Diagnostic>,
    /// Number of source files scanned.
    pub checked_files: usize,
}

impl Report {
    /// `true` when the workspace is clean.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }
}

/// Tuning for [`run_with_options`].
#[derive(Debug, Clone)]
pub struct RunOptions {
    /// When set, only findings anchored in these workspace-relative files
    /// are reported. The whole workspace is still parsed (workspace-level
    /// facts would otherwise be wrong), so this trades report scope for
    /// nothing — it exists to keep `--changed-only` output focused.
    pub report_only: Option<BTreeSet<String>>,
    /// Worker threads for the per-file phases (1 = sequential).
    pub threads: usize,
}

impl Default for RunOptions {
    fn default() -> Self {
        RunOptions { report_only: None, threads: default_threads() }
    }
}

/// Default lint parallelism: the machine's parallelism, capped at 8
/// (the workspace has ~60 files; more threads only add spawn cost).
pub fn default_threads() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get()).min(8)
}

/// One scanned file: source derivatives shared by every pass.
pub struct FileData {
    /// Workspace-relative path, forward slashes.
    pub path: String,
    /// Lexed tokens and comments.
    pub lexed: lexer::Lexed,
    /// Live-token mask (test code masked out).
    pub live: Vec<bool>,
    /// The parse.
    pub parsed: parser::ParsedFile,
}

impl FileData {
    fn parse(path: &str, source: &str) -> FileData {
        let lexed = lexer::lex(source);
        let live = passes::live_mask(&lexed.tokens);
        let parsed = parser::parse(&lexed.tokens, &live);
        FileData { path: path.to_string(), lexed, live, parsed }
    }
}

/// Lints the workspace rooted at `root` with default options.
///
/// # Errors
///
/// Returns a message when `root` is not a workspace (no `Cargo.toml`) or
/// a source file cannot be read.
pub fn run(root: &Path) -> Result<Report, String> {
    run_with_options(root, &RunOptions::default())
}

/// Lints the workspace rooted at `root`.
///
/// Phases: (1) read + lex + parse every file (parallel); (2) build
/// workspace facts (lock maps, blocking closure, LOCK_ORDER registries,
/// span registry — sequential, cheap); (3) run the per-file pass registry
/// (parallel); (4) run the workspace-level checks (lock graph, wire
/// baseline, obs consistency); (5) apply allow directives per file.
///
/// # Errors
///
/// Returns a message when `root` is not a workspace (no `Cargo.toml`) or
/// a source file cannot be read.
pub fn run_with_options(root: &Path, opts: &RunOptions) -> Result<Report, String> {
    if !root.join("Cargo.toml").is_file() {
        return Err(format!("{} is not a cargo workspace (no Cargo.toml)", root.display()));
    }
    let lock_order = load_lock_order(root);
    let cluster_order = load_lock_order_at(&root.join("crates/cluster/src/lock_order.rs"));
    let span_registry = load_span_registry(root);
    let rels = workspace_files(root)?;
    let checked_files = rels.len();

    let mut sources: Vec<(String, String)> = Vec::with_capacity(rels.len());
    for rel in rels {
        let source =
            fs::read_to_string(root.join(&rel)).map_err(|e| format!("cannot read {rel}: {e}"))?;
        sources.push((rel, source));
    }
    let files: Vec<FileData> =
        par_map(&sources, opts.threads, |(rel, source)| FileData::parse(rel, source));
    drop(sources);

    let inputs: Vec<facts::FileInput<'_>> =
        files.iter().map(|f| facts::FileInput { path: &f.path, parsed: &f.parsed }).collect();
    let facts = facts::Facts::build(&inputs, lock_order.clone());

    let registry = passes::registry();
    let known = passes::known_ids();

    let per_file: Vec<Vec<Diagnostic>> = par_map(&files, opts.threads, |f| {
        let ctx = FileContext {
            path: &f.path,
            tokens: &f.lexed.tokens,
            live: &f.live,
            lock_order: &lock_order,
            parsed: &f.parsed,
            facts: &facts,
        };
        let mut findings = Vec::new();
        for pass in &registry {
            if pass.applies(&f.path) {
                findings.extend(pass.check(&ctx));
            }
        }
        findings
    });

    // Workspace-level checks.
    let mut edges = Vec::new();
    for f in &files {
        edges.extend(facts::lock_edges(&f.path, &f.parsed, &facts));
    }
    let mut extra = facts::check_lock_graph(&edges, &lock_order);
    extra.extend(facts::check_lock_order_registries(&lock_order, cluster_order.as_deref()));
    extra.extend(wire_findings(root, &inputs));
    extra.extend(facts::check_obs_consistency(&inputs, span_registry.as_deref()));

    // Route workspace findings to their file so in-source allows apply;
    // findings anchored outside the scanned set (e.g. a missing baseline)
    // pass through untouched.
    let scanned: HashSet<&str> = files.iter().map(|f| f.path.as_str()).collect();
    let mut by_extra: HashMap<String, Vec<Diagnostic>> = HashMap::new();
    let mut orphans = Vec::new();
    for d in extra {
        if scanned.contains(d.file.as_str()) {
            by_extra.entry(d.file.clone()).or_default().push(d);
        } else {
            orphans.push(d);
        }
    }

    let mut diagnostics = Vec::new();
    for (f, mut findings) in files.iter().zip(per_file) {
        if let Some(more) = by_extra.remove(&f.path) {
            findings.extend(more);
        }
        let (directives, mut out) = diag::parse_directives(&f.path, &f.lexed.comments);
        out.extend(diag::apply_directives(&f.path, findings, directives, &known));
        if opts.report_only.as_ref().is_none_or(|set| set.contains(&f.path)) {
            diagnostics.extend(out);
        }
    }
    diagnostics.extend(orphans);
    diagnostics.extend(vendor::check(root));
    diag::sort(&mut diagnostics);
    Ok(Report { diagnostics, checked_files })
}

/// Lints one source text as if it lived at workspace-relative path
/// `rel_path` (which decides pass scopes). Workspace-level checks (lock
/// graph, wire baseline, obs cross-file consistency) are skipped — they
/// need the whole workspace. Used by `run` and by the fixture tests.
pub fn lint_source(rel_path: &str, source: &str, lock_order: &[String]) -> Vec<Diagnostic> {
    let registry = passes::registry();
    let known = passes::known_ids();
    let f = FileData::parse(rel_path, source);
    let inputs = [facts::FileInput { path: rel_path, parsed: &f.parsed }];
    let facts = facts::Facts::build(&inputs, lock_order.to_vec());
    let ctx = FileContext {
        path: rel_path,
        tokens: &f.lexed.tokens,
        live: &f.live,
        lock_order,
        parsed: &f.parsed,
        facts: &facts,
    };
    let mut findings = Vec::new();
    for pass in &registry {
        if pass.applies(rel_path) {
            findings.extend(pass.check(&ctx));
        }
    }
    let (directives, mut out) = diag::parse_directives(rel_path, &f.lexed.comments);
    out.extend(diag::apply_directives(rel_path, findings, directives, &known));
    diag::sort(&mut out);
    out
}

/// Extracts the current wire-protocol schema text from the workspace's
/// wire files (see [`facts::WIRE_FILES`]).
///
/// # Errors
///
/// Returns a message when a wire file cannot be read.
pub fn extract_wire_schema(root: &Path) -> Result<String, String> {
    let mut datas = Vec::new();
    for wf in facts::WIRE_FILES {
        let source =
            fs::read_to_string(root.join(wf)).map_err(|e| format!("cannot read {wf}: {e}"))?;
        datas.push(FileData::parse(wf, &source));
    }
    let inputs: Vec<facts::FileInput<'_>> =
        datas.iter().map(|f| facts::FileInput { path: &f.path, parsed: &f.parsed }).collect();
    Ok(facts::wire_schema_text(&inputs))
}

/// L-WIRE findings for the workspace: structural breaking changes against
/// the committed baseline, plus byte-level drift (the baseline must
/// reproduce exactly, so additive changes also require a regen + commit).
fn wire_findings(root: &Path, inputs: &[facts::FileInput<'_>]) -> Vec<Diagnostic> {
    if !facts::WIRE_FILES.iter().any(|wf| inputs.iter().any(|i| i.path == *wf)) {
        return Vec::new(); // not a workspace with wire files (unit-test trees)
    }
    let current = facts::wire_schema_text(inputs);
    let Ok(baseline) = fs::read_to_string(root.join(facts::WIRE_BASELINE_PATH)) else {
        return vec![Diagnostic {
            file: facts::WIRE_BASELINE_PATH.to_string(),
            line: 1,
            id: passes::WIRE_ID,
            message: "wire-schema baseline is missing — generate and commit it with \
                      `cargo run -p snn-lint -- --write-wire-baseline`"
                .to_string(),
        }];
    };
    let lines = facts::wire_type_lines(inputs);
    let mut out = facts::wire_breaking_changes(&baseline, &current, &lines);
    if out.is_empty() && baseline != current {
        out.push(Diagnostic {
            file: facts::WIRE_BASELINE_PATH.to_string(),
            line: 1,
            id: passes::WIRE_ID,
            message: "wire schema drifted from the committed baseline (non-breaking \
                      additions) — regenerate with `cargo run -p snn-lint -- \
                      --write-wire-baseline` and commit so the baseline stays byte-identical"
                .to_string(),
        });
    }
    out
}

/// Runs `f` over `items` on up to `threads` workers (vendored scoped
/// threads); preserves input order. Falls back to a sequential pass when
/// a worker panics, so a pass bug degrades to slow-but-diagnosable.
fn par_map<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let threads = threads.clamp(1, items.len().max(1));
    if threads == 1 {
        return items.iter().map(&f).collect();
    }
    let mut slots: Vec<Option<R>> = Vec::with_capacity(items.len());
    slots.resize_with(items.len(), || None);
    let chunk = items.len().div_ceil(threads);
    let fref = &f;
    let ok = crossbeam::thread::scope(|s| {
        for (ichunk, ochunk) in items.chunks(chunk).zip(slots.chunks_mut(chunk)) {
            s.spawn(move |_| {
                for (item, slot) in ichunk.iter().zip(ochunk.iter_mut()) {
                    *slot = Some(fref(item));
                }
            });
        }
    })
    .is_ok();
    if ok && slots.iter().all(Option::is_some) {
        slots.into_iter().flatten().collect()
    } else {
        items.iter().map(&f).collect()
    }
}

/// The service crate's documented lock-order list, parsed from
/// `crates/service/src/lock_order.rs` (the string literals of the
/// `LOCK_ORDER` const, in order). Empty when absent.
pub fn load_lock_order(root: &Path) -> Vec<String> {
    load_lock_order_at(&root.join("crates/service/src/lock_order.rs")).unwrap_or_default()
}

/// Parses the `LOCK_ORDER` const of one registry file; `None` when the
/// file is absent.
pub fn load_lock_order_at(path: &Path) -> Option<Vec<String>> {
    let source = fs::read_to_string(path).ok()?;
    Some(const_str_list(&source, "LOCK_ORDER").into_iter().map(|(name, _)| name).collect())
}

/// The observability span-name registry (`SPAN_NAMES` in
/// `crates/obs/src/span_names.rs`) with each entry's source line; `None`
/// when the registry file is absent (span cross-checks are then skipped).
pub fn load_span_registry(root: &Path) -> Option<Vec<(String, u32)>> {
    let source = fs::read_to_string(root.join("crates/obs/src/span_names.rs")).ok()?;
    Some(const_str_list(&source, "SPAN_NAMES"))
}

/// String literals (with lines) of `const <name>: … = [ "…", … ]`.
fn const_str_list(source: &str, name: &str) -> Vec<(String, u32)> {
    let lexed = lexer::lex(source);
    let tokens = &lexed.tokens;
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        if tokens[i].is_ident(name) {
            let mut j = i + 1;
            // Skip the type annotation: capture only after the `=`.
            let mut seen_eq = false;
            let mut started = false;
            while j < tokens.len() {
                let t = &tokens[j];
                if t.is_punct("=") {
                    seen_eq = true;
                } else if seen_eq && t.is_punct("[") {
                    started = true;
                } else if started && t.kind == lexer::TokenKind::Str {
                    out.push((t.text.clone(), t.line));
                } else if started && t.is_punct("]") {
                    return out;
                }
                j += 1;
            }
        }
        i += 1;
    }
    out
}

/// Parses `git diff --name-status -M` output into the set of changed
/// `.rs` paths. Renames/copies (`R<score>`/`C<score>` lines carrying
/// `old\tnew`) contribute their *new* path — a plain `--name-only` diff
/// silently drops renamed files. Deletions are skipped (nothing to lint).
pub fn parse_git_name_status(output: &str) -> BTreeSet<String> {
    let mut set = BTreeSet::new();
    for line in output.lines() {
        let mut fields = line.split('\t');
        let Some(status) = fields.next().map(str::trim) else { continue };
        let path = match status.chars().next() {
            Some('D') | None => continue,
            Some('R' | 'C') => fields.next_back(),
            _ => fields.next(),
        };
        if let Some(path) = path.map(str::trim) {
            if path.ends_with(".rs") {
                set.insert(path.to_string());
            }
        }
    }
    set
}

/// Collects every workspace-relative source path to scan, sorted:
/// `src/**/*.rs` and `crates/*/src/**/*.rs`. Vendored stand-ins, test
/// trees, benches, examples and fixtures are excluded — the tool lints
/// the product, the compiler and `cargo test` own the rest.
fn workspace_files(root: &Path) -> Result<Vec<String>, String> {
    let mut files = Vec::new();
    collect_rs(&root.join("src"), root, &mut files)?;
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        let mut members: Vec<PathBuf> = fs::read_dir(&crates_dir)
            .map_err(|e| format!("cannot read crates/: {e}"))?
            .flatten()
            .map(|e| e.path())
            .filter(|p| p.is_dir())
            .collect();
        members.sort();
        for member in members {
            collect_rs(&member.join("src"), root, &mut files)?;
        }
    }
    files.sort();
    Ok(files)
}

fn collect_rs(dir: &Path, root: &Path, out: &mut Vec<String>) -> Result<(), String> {
    if !dir.is_dir() {
        return Ok(());
    }
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)
        .map_err(|e| format!("cannot read {}: {e}", dir.display()))?
        .flatten()
        .map(|e| e.path())
        .collect();
    entries.sort();
    for path in entries {
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if path.is_dir() {
            if matches!(name, "tests" | "benches" | "examples" | "fixtures" | "target") {
                continue;
            }
            collect_rs(&path, root, out)?;
        } else if name.ends_with(".rs") {
            let rel = path
                .strip_prefix(root)
                .map_err(|_| format!("{} escapes the workspace root", path.display()))?;
            out.push(rel.to_string_lossy().replace('\\', "/"));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lint_source_runs_scoped_passes_and_allows() {
        let src = "fn f(x: f64) -> f32 {\n\
                   // snn-lint: allow(L-CAST): precision loss acceptable in this test helper\n\
                   x as f32\n}";
        let out = lint_source("crates/tensor/src/ops.rs", src, &[]);
        assert!(out.is_empty(), "{out:?}");
        let out = lint_source("crates/tensor/src/ops.rs", "fn f(x: f64) -> f32 { x as f32 }", &[]);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].id, "L-CAST");
    }

    #[test]
    fn out_of_scope_paths_are_untouched() {
        // datasets is not a kernel crate: no L-CAST there.
        let out = lint_source(
            "crates/datasets/src/gesture_like.rs",
            "fn f(x: f64) -> f32 { x as f32 }",
            &[],
        );
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn lock_order_parsing_from_source() {
        let dir = std::env::temp_dir().join(format!("snn-lint-order-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(dir.join("crates/service/src")).unwrap();
        fs::write(
            dir.join("crates/service/src/lock_order.rs"),
            "pub const LOCK_ORDER: &[&str] = &[\n    \"service.queue\",\n    \"service.store.jobs\",\n];\n",
        )
        .unwrap();
        let order = load_lock_order(&dir);
        assert_eq!(order, vec!["service.queue".to_string(), "service.store.jobs".to_string()]);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn git_name_status_keeps_rename_targets() {
        let out = parse_git_name_status(
            "M\tcrates/lint/src/lib.rs\n\
             A\tcrates/lint/src/taint.rs\n\
             R087\tcrates/lint/src/old.rs\tcrates/lint/src/new.rs\n\
             C100\tcrates/a/src/x.rs\tcrates/b/src/x.rs\n\
             D\tcrates/lint/src/gone.rs\n\
             M\tREADME.md\n",
        );
        let want: Vec<&str> = vec![
            "crates/b/src/x.rs",
            "crates/lint/src/lib.rs",
            "crates/lint/src/new.rs",
            "crates/lint/src/taint.rs",
        ];
        assert_eq!(out.iter().map(String::as_str).collect::<Vec<_>>(), want);
    }

    #[test]
    fn par_map_preserves_order() {
        let items: Vec<usize> = (0..100).collect();
        let out = par_map(&items, 4, |&x| x * 2);
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
        let out = par_map(&items, 1, |&x| x + 1);
        assert_eq!(out.len(), 100);
        let empty: Vec<usize> = Vec::new();
        assert!(par_map(&empty, 4, |&x: &usize| x).is_empty());
    }
}
