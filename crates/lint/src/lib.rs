//! `snn-lint`: repo-native static analysis for the snn-mtfc workspace.
//!
//! A `rust-lang/rust` `tidy`-style tool: a minimal Rust lexer
//! ([`lexer`]), a registry of repo-specific lint passes ([`passes`]) and
//! a vendored-dependency integrity check ([`vendor`]), wired into CI via
//! `cargo run -p snn-lint`. The passes encode this repository's history:
//! the seed's one real bug was a silent mixed-precision cast (`L-CAST`),
//! PR 1 introduced typed errors that casual `unwrap()`s bypass
//! (`L-PANIC`), and the service crate is multi-threaded with an ordered
//! lock discipline (`L-LOCK`, enforced dynamically by the vendored
//! `parking_lot`'s debug lock-order detector).
//!
//! Findings are suppressed in-source with a mandatory justification:
//!
//! ```text
//! // snn-lint: allow(L-CAST): usize count fits f32 exactly below 2^24
//! ```
//!
//! A trailing directive covers its own line; a standalone one covers the
//! next line. Unused or unjustified directives are themselves findings
//! (`L-ALLOW`), so the allow list can never silently rot.

#![forbid(unsafe_code)]

pub mod diag;
pub mod lexer;
pub mod passes;
pub mod sarif;
pub mod vendor;

pub use diag::Diagnostic;
pub use passes::{ALLOW_ID, VENDOR_ID};

use passes::FileContext;
use std::fs;
use std::path::{Path, PathBuf};

/// Result of linting a workspace.
#[derive(Debug)]
pub struct Report {
    /// All findings, sorted by file, line, id.
    pub diagnostics: Vec<Diagnostic>,
    /// Number of source files scanned.
    pub checked_files: usize,
}

impl Report {
    /// `true` when the workspace is clean.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }
}

/// Lints the workspace rooted at `root`.
///
/// # Errors
///
/// Returns a message when `root` is not a workspace (no `Cargo.toml`) or
/// a source file cannot be read.
pub fn run(root: &Path) -> Result<Report, String> {
    if !root.join("Cargo.toml").is_file() {
        return Err(format!("{} is not a cargo workspace (no Cargo.toml)", root.display()));
    }
    let lock_order = load_lock_order(root);
    let files = workspace_files(root)?;
    let checked_files = files.len();
    let registry = passes::registry();
    let known = passes::known_ids();

    let mut diagnostics = Vec::new();
    for rel in &files {
        let source =
            fs::read_to_string(root.join(rel)).map_err(|e| format!("cannot read {rel}: {e}"))?;
        diagnostics.extend(lint_file(rel, &source, &lock_order, &registry, &known));
    }
    diagnostics.extend(vendor::check(root));
    diag::sort(&mut diagnostics);
    Ok(Report { diagnostics, checked_files })
}

/// Lints one source text as if it lived at workspace-relative path
/// `rel_path` (which decides pass scopes). Used by `run` and by the
/// fixture tests.
pub fn lint_source(rel_path: &str, source: &str, lock_order: &[String]) -> Vec<Diagnostic> {
    let registry = passes::registry();
    let known = passes::known_ids();
    let mut out = lint_file(rel_path, source, lock_order, &registry, &known);
    diag::sort(&mut out);
    out
}

fn lint_file(
    rel_path: &str,
    source: &str,
    lock_order: &[String],
    registry: &[passes::Pass],
    known_ids: &[&'static str],
) -> Vec<Diagnostic> {
    let lexed = lexer::lex(source);
    let live = passes::live_mask(&lexed.tokens);
    let ctx = FileContext { path: rel_path, tokens: &lexed.tokens, live: &live, lock_order };
    let mut findings = Vec::new();
    for pass in registry {
        if pass.applies(rel_path) {
            findings.extend(pass.check(&ctx));
        }
    }
    let (directives, mut out) = diag::parse_directives(rel_path, &lexed.comments);
    out.extend(diag::apply_directives(rel_path, findings, directives, known_ids));
    out
}

/// The service crate's documented lock-order list, parsed from
/// `crates/service/src/lock_order.rs` (the string literals of the
/// `LOCK_ORDER` const, in order). Empty when absent.
pub fn load_lock_order(root: &Path) -> Vec<String> {
    let path = root.join("crates/service/src/lock_order.rs");
    let Ok(source) = fs::read_to_string(path) else {
        return Vec::new();
    };
    let lexed = lexer::lex(&source);
    let tokens = &lexed.tokens;
    let mut names = Vec::new();
    let mut i = 0usize;
    // Find `LOCK_ORDER`, then collect string literals until the closing `]`.
    while i < tokens.len() {
        if tokens[i].is_ident("LOCK_ORDER") {
            let mut j = i + 1;
            // Skip the type annotation: capture only after the `=`.
            let mut seen_eq = false;
            let mut started = false;
            while j < tokens.len() {
                let t = &tokens[j];
                if t.is_punct("=") {
                    seen_eq = true;
                } else if seen_eq && t.is_punct("[") {
                    started = true;
                } else if started && t.kind == lexer::TokenKind::Str {
                    names.push(t.text.clone());
                } else if started && t.is_punct("]") {
                    return names;
                }
                j += 1;
            }
        }
        i += 1;
    }
    names
}

/// Collects every workspace-relative source path to scan, sorted:
/// `src/**/*.rs` and `crates/*/src/**/*.rs`. Vendored stand-ins, test
/// trees, benches, examples and fixtures are excluded — the tool lints
/// the product, the compiler and `cargo test` own the rest.
fn workspace_files(root: &Path) -> Result<Vec<String>, String> {
    let mut files = Vec::new();
    collect_rs(&root.join("src"), root, &mut files)?;
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        let mut members: Vec<PathBuf> = fs::read_dir(&crates_dir)
            .map_err(|e| format!("cannot read crates/: {e}"))?
            .flatten()
            .map(|e| e.path())
            .filter(|p| p.is_dir())
            .collect();
        members.sort();
        for member in members {
            collect_rs(&member.join("src"), root, &mut files)?;
        }
    }
    files.sort();
    Ok(files)
}

fn collect_rs(dir: &Path, root: &Path, out: &mut Vec<String>) -> Result<(), String> {
    if !dir.is_dir() {
        return Ok(());
    }
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)
        .map_err(|e| format!("cannot read {}: {e}", dir.display()))?
        .flatten()
        .map(|e| e.path())
        .collect();
    entries.sort();
    for path in entries {
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if path.is_dir() {
            if matches!(name, "tests" | "benches" | "examples" | "fixtures" | "target") {
                continue;
            }
            collect_rs(&path, root, out)?;
        } else if name.ends_with(".rs") {
            let rel = path
                .strip_prefix(root)
                .map_err(|_| format!("{} escapes the workspace root", path.display()))?;
            out.push(rel.to_string_lossy().replace('\\', "/"));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lint_source_runs_scoped_passes_and_allows() {
        let src = "fn f(x: f64) -> f32 {\n\
                   // snn-lint: allow(L-CAST): precision loss acceptable in this test helper\n\
                   x as f32\n}";
        let out = lint_source("crates/tensor/src/ops.rs", src, &[]);
        assert!(out.is_empty(), "{out:?}");
        let out = lint_source("crates/tensor/src/ops.rs", "fn f(x: f64) -> f32 { x as f32 }", &[]);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].id, "L-CAST");
    }

    #[test]
    fn out_of_scope_paths_are_untouched() {
        // datasets is not a kernel crate: no L-CAST there.
        let out = lint_source(
            "crates/datasets/src/gesture_like.rs",
            "fn f(x: f64) -> f32 { x as f32 }",
            &[],
        );
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn lock_order_parsing_from_source() {
        let dir = std::env::temp_dir().join(format!("snn-lint-order-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(dir.join("crates/service/src")).unwrap();
        fs::write(
            dir.join("crates/service/src/lock_order.rs"),
            "pub const LOCK_ORDER: &[&str] = &[\n    \"service.queue\",\n    \"service.store.jobs\",\n];\n",
        )
        .unwrap();
        let order = load_lock_order(&dir);
        assert_eq!(order, vec!["service.queue".to_string(), "service.store.jobs".to_string()]);
        let _ = fs::remove_dir_all(&dir);
    }
}
