//! Shared diagnostics serialization: SARIF 2.1.0 output and the JSON
//! string escaper used by every hand-rolled JSON emitter in the
//! workspace's analysis tools.
//!
//! Both `snn-lint` (source-level findings) and `snn-analyze`
//! (model-level findings) emit the same [`Diagnostic`] record; this
//! module turns a batch of them into a single-run SARIF log so CI
//! systems can surface findings as code annotations. The emitter is
//! hand-rolled — the lint tool is deliberately dependency-free — and
//! covers exactly the subset of SARIF the two tools need: one run, one
//! driver, a rule table, and physical locations with a line number.

use crate::diag::Diagnostic;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Severity level of a SARIF result.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Level {
    /// Informational finding.
    Note,
    /// Default severity for lint/analysis findings.
    Warning,
    /// Soundness or correctness error.
    Error,
}

impl Level {
    fn as_str(self) -> &'static str {
        match self {
            Level::Note => "note",
            Level::Warning => "warning",
            Level::Error => "error",
        }
    }
}

/// A rule entry for the SARIF driver's rule table.
#[derive(Debug, Clone)]
pub struct SarifRule {
    /// Stable rule id (`L-PANIC`, `A-DEAD`, …).
    pub id: &'static str,
    /// One-line description shown by SARIF viewers.
    pub short_description: String,
}

/// Renders diagnostics as a SARIF 2.1.0 log with a single run.
///
/// `tool_name` names the driver (e.g. `snn-lint`); `info_uri` points at
/// the in-repo documentation for the rule set. `rules` describes every
/// id that may appear; ids present in `diagnostics` but missing from
/// `rules` still render (SARIF does not require the table to be total).
/// `level_of` maps a diagnostic to its severity.
pub fn render(
    tool_name: &str,
    info_uri: &str,
    rules: &[SarifRule],
    diagnostics: &[Diagnostic],
    level_of: fn(&Diagnostic) -> Level,
) -> String {
    let mut s = String::new();
    s.push_str("{\"$schema\":\"https://json.schemastore.org/sarif-2.1.0.json\",");
    s.push_str("\"version\":\"2.1.0\",\"runs\":[{\"tool\":{\"driver\":{");
    let _ = write!(
        s,
        "\"name\":{},\"informationUri\":{},\"rules\":[",
        json_string(tool_name),
        json_string(info_uri)
    );
    for (i, rule) in rules.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let _ = write!(
            s,
            "{{\"id\":{},\"shortDescription\":{{\"text\":{}}}}}",
            json_string(rule.id),
            json_string(&rule.short_description)
        );
    }
    s.push_str("]}},\"results\":[");
    for (i, d) in diagnostics.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let _ = write!(
            s,
            "{{\"ruleId\":{},\"level\":{},\"message\":{{\"text\":{}}},\
             \"locations\":[{{\"physicalLocation\":{{\"artifactLocation\":{{\"uri\":{}}},\
             \"region\":{{\"startLine\":{}}}}}}}]}}",
            json_string(d.id),
            json_string(level_of(d).as_str()),
            json_string(&d.message),
            json_string(&d.file),
            d.line.max(1)
        );
    }
    s.push_str("]}]}");
    s
}

/// Builds a rule table from the diagnostics themselves: one entry per
/// distinct id, described by the first message carrying it. Useful when
/// the caller has no static registry for some ids.
pub fn rules_from_diagnostics(diagnostics: &[Diagnostic]) -> Vec<SarifRule> {
    let mut seen: BTreeMap<&'static str, String> = BTreeMap::new();
    for d in diagnostics {
        seen.entry(d.id).or_insert_with(|| d.message.clone());
    }
    seen.into_iter().map(|(id, short_description)| SarifRule { id, short_description }).collect()
}

/// Escapes `v` as a JSON string per RFC 8259, including the surrounding
/// quotes. Shared by the lint JSON emitter, the SARIF emitter, and
/// `snn-analyze`'s JSON report.
pub fn json_string(v: &str) -> String {
    let mut s = String::with_capacity(v.len() + 2);
    s.push('"');
    for c in v.chars() {
        match c {
            '"' => s.push_str("\\\""),
            '\\' => s.push_str("\\\\"),
            '\n' => s.push_str("\\n"),
            '\r' => s.push_str("\\r"),
            '\t' => s.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(s, "\\u{:04x}", c as u32);
            }
            c => s.push(c),
        }
    }
    s.push('"');
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diag(file: &str, line: u32, id: &'static str, message: &str) -> Diagnostic {
        Diagnostic { file: file.into(), line, id, message: message.into() }
    }

    #[test]
    fn renders_schema_run_and_result_shape() {
        let rules = vec![SarifRule { id: "L-PANIC", short_description: "no panics".into() }];
        let ds = vec![diag("src/lib.rs", 12, "L-PANIC", "unwrap() in library code")];
        let out = render("snn-lint", "DESIGN.md", &rules, &ds, |_| Level::Warning);
        assert!(out.contains("\"$schema\":\"https://json.schemastore.org/sarif-2.1.0.json\""));
        assert!(out.contains("\"version\":\"2.1.0\""));
        assert!(out.contains("\"name\":\"snn-lint\""));
        assert!(out.contains("\"id\":\"L-PANIC\""));
        assert!(out.contains("\"ruleId\":\"L-PANIC\""));
        assert!(out.contains("\"level\":\"warning\""));
        assert!(out.contains("\"uri\":\"src/lib.rs\""));
        assert!(out.contains("\"startLine\":12"));
    }

    #[test]
    fn empty_inputs_render_valid_empty_run() {
        let out = render("snn-analyze", "DESIGN.md", &[], &[], |_| Level::Note);
        assert!(out.contains("\"rules\":[]"));
        assert!(out.contains("\"results\":[]"));
    }

    #[test]
    fn line_zero_is_clamped_to_one() {
        // Model-level findings have no meaningful source line; SARIF
        // requires startLine >= 1.
        let ds = vec![diag("model.snn", 0, "A-DEAD", "neuron can never fire")];
        let out = render("snn-analyze", "DESIGN.md", &[], &ds, |_| Level::Warning);
        assert!(out.contains("\"startLine\":1"));
    }

    #[test]
    fn escapes_strings_in_messages_and_paths() {
        let ds = vec![diag("a\"b.rs", 3, "L-PANIC", "tab\there\nline")];
        let out = render("snn-lint", "DESIGN.md", &[], &ds, |_| Level::Error);
        assert!(out.contains("a\\\"b.rs"));
        assert!(out.contains("tab\\there\\nline"));
    }

    #[test]
    fn rule_table_from_diagnostics_dedupes_by_id() {
        let ds = vec![
            diag("x.rs", 1, "L-CAST", "first"),
            diag("y.rs", 2, "L-CAST", "second"),
            diag("z.rs", 3, "L-PANIC", "third"),
        ];
        let rules = rules_from_diagnostics(&ds);
        assert_eq!(rules.len(), 2);
        assert_eq!(rules[0].id, "L-CAST");
        assert_eq!(rules[0].short_description, "first");
    }
}
