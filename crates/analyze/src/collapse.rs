//! Structural fault collapsing.
//!
//! Partitions a [`FaultUniverse`] into *representatives* (faults that
//! must be simulated) and *collapsed* faults whose campaign outcome is
//! decided statically, each carrying a machine-checkable
//! [`CollapseReason`] that [`CollapsedUniverse::self_check`] re-derives
//! from scratch. Every rule is an *exact* program-equivalence argument
//! about the f32 simulator — see DESIGN.md §10 for the soundness proof
//! of each rule; the one-line versions:
//!
//! * [`CollapseReason::IdenticalWeight`] — the injected value bit-equals
//!   the stored weight (`±0.0` counts: zero signs never change spike
//!   outputs), so the faulty network *is* the fault-free network.
//! * [`CollapseReason::SilentSource`] — the synapse's source feature is
//!   provably silent, so the weight is multiplied by 0 on every tick in
//!   both networks.
//! * [`CollapseReason::DeadTarget`] — the target neuron (conv: the whole
//!   out-channel) is provably dead and remains provably dead with the
//!   injected value substituted into its drive bound; a neuron that
//!   never fires in either network contributes identically (nothing)
//!   downstream.
//! * [`CollapseReason::DeadNeuron`] / [`CollapseReason::TimingOnDead`] —
//!   forcing a provably-dead neuron dead, or perturbing its parameters
//!   such that it provably stays dead, is a no-op.
//! * [`CollapseReason::AliasOf`] — same synapse, same injected value as
//!   an earlier representative: the two faulty networks are identical,
//!   so the outcome is copied.
//! * [`CollapseReason::SaturatedOutput`] — a saturated neuron in a
//!   spiking *final* layer fires every tick, while its healthy self has
//!   `refrac_steps ≥ 1` and therefore cannot; any test of ≥ 2 ticks
//!   distinguishes them at the (unmasked) output, so the fault is
//!   provably detected.

use crate::interval::{provably_dead, IntervalAnalysis};
use snn_faults::{
    CampaignError, CampaignOutcome, CancelToken, Fault, FaultKind, FaultOutcome, FaultSimConfig,
    FaultSimulator, FaultSite, FaultUniverse, Injection, ProgressSink,
};
use snn_model::{Layer, LifParams, Network, WeightRef};
use snn_tensor::Tensor;
use std::collections::HashMap;

/// Bit-exact f32 equality. The collapse rules reason about the exact
/// values the simulator will load; an epsilon comparison would be
/// *unsound* here (two almost-equal weights can produce different spike
/// trains), so this is the rare place where `==` on floats is correct.
#[allow(clippy::float_cmp)]
fn f32_eq(a: f32, b: f32) -> bool {
    a == b
}

/// The upstream feature a synaptic weight reads from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SourceRef {
    /// Input feature `feature` of layer `layer` (dense column /
    /// recurrent `w_in` column).
    InFeature {
        /// Layer owning the synapse.
        layer: usize,
        /// Feature index in that layer's input.
        feature: usize,
    },
    /// A whole input channel of a conv layer (one kernel weight touches
    /// every spatial position of the channel).
    InChannel {
        /// Layer owning the synapse.
        layer: usize,
        /// Input channel index.
        channel: usize,
    },
    /// Same-layer recurrent source unit (`w_rec` column).
    RecUnit {
        /// Layer owning the synapse.
        layer: usize,
        /// Source unit index.
        unit: usize,
    },
}

/// The neuron(s) a synaptic weight drives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TargetRef {
    /// A single neuron (dense row / recurrent row).
    Neuron {
        /// Layer owning the synapse.
        layer: usize,
        /// Neuron index within the layer.
        index: usize,
    },
    /// A whole conv out-channel (one kernel weight drives every spatial
    /// position of the channel).
    Channel {
        /// Layer owning the synapse.
        layer: usize,
        /// Output channel index.
        channel: usize,
    },
}

/// Machine-checkable justification for one collapsed fault. Every
/// numeric field is re-derived by [`CollapsedUniverse::self_check`].
#[derive(Debug, Clone, PartialEq)]
pub enum CollapseReason {
    /// Injected value bit-equals the stored weight → ≡ fault-free.
    IdenticalWeight {
        /// The synapse.
        at: WeightRef,
        /// Stored weight (== injected value).
        weight: f32,
    },
    /// Source feature is provably silent → ≡ fault-free.
    SilentSource {
        /// The synapse.
        at: WeightRef,
        /// The silent source.
        source: SourceRef,
    },
    /// Target provably dead before and after substituting the injected
    /// value into its drive bound → ≡ fault-free.
    DeadTarget {
        /// The synapse.
        at: WeightRef,
        /// The dead target.
        target: TargetRef,
        /// Injected weight value.
        injected: f32,
        /// Drive bound of the target with `injected` substituted.
        z_max_faulty: f64,
    },
    /// `NeuronDead` on a provably-dead neuron → ≡ fault-free.
    DeadNeuron {
        /// Layer of the neuron.
        layer: usize,
        /// Neuron index within the layer.
        index: usize,
    },
    /// `NeuronTiming` on a provably-dead neuron that stays provably dead
    /// under the perturbed effective parameters → ≡ fault-free.
    TimingOnDead {
        /// Layer of the neuron.
        layer: usize,
        /// Neuron index within the layer.
        index: usize,
        /// The neuron's drive bound (unchanged by a timing fault).
        z_max: f64,
        /// Effective threshold after the fault's scaling and clamping.
        threshold_scaled: f32,
        /// Effective leak after the fault's scaling and clamping.
        leak_scaled: f32,
    },
    /// Same synapse and same injected value as representative fault
    /// `representative` → identical faulty network, outcome copied.
    AliasOf {
        /// Fault id of the representative.
        representative: usize,
        /// The shared synapse.
        at: WeightRef,
        /// The shared injected value.
        injected: f32,
    },
    /// `NeuronSaturated` on a spiking final-layer neuron with healthy
    /// `refrac_steps ≥ 1` → provably detected by any test of ≥ 2 ticks.
    SaturatedOutput {
        /// Final layer index.
        layer: usize,
        /// Neuron index within the layer.
        index: usize,
        /// Healthy refractory period (≥ 1).
        refrac_steps: u32,
    },
}

impl CollapseReason {
    /// `true` when the collapsed fault is equivalent to the fault-free
    /// network (undetectable); `false` for outcome-copying /
    /// provably-detected reasons.
    pub fn equivalent_to_fault_free(&self) -> bool {
        !matches!(self, CollapseReason::AliasOf { .. } | CollapseReason::SaturatedOutput { .. })
    }

    /// Short rule id for reports (stable, kebab-free uppercase).
    pub fn rule(&self) -> &'static str {
        match self {
            CollapseReason::IdenticalWeight { .. } => "identical-weight",
            CollapseReason::SilentSource { .. } => "silent-source",
            CollapseReason::DeadTarget { .. } => "dead-target",
            CollapseReason::DeadNeuron { .. } => "dead-neuron",
            CollapseReason::TimingOnDead { .. } => "timing-on-dead",
            CollapseReason::AliasOf { .. } => "alias",
            CollapseReason::SaturatedOutput { .. } => "saturated-output",
        }
    }
}

/// One collapsed fault.
#[derive(Debug, Clone, PartialEq)]
pub struct Collapse {
    /// Id of the collapsed fault in its universe.
    pub fault_id: usize,
    /// Why its outcome is statically known.
    pub reason: CollapseReason,
}

/// Errors mapping representative outcomes back to the full universe.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExpandError {
    /// A representative's outcome is missing from the supplied slice.
    MissingRepresentative {
        /// The fault id without an outcome.
        fault_id: usize,
    },
    /// A `SaturatedOutput` collapse requires tests of at least 2 ticks.
    TestTooShort {
        /// The offending test length.
        steps: usize,
    },
}

impl std::fmt::Display for ExpandError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExpandError::MissingRepresentative { fault_id } => {
                write!(f, "no outcome supplied for representative fault {fault_id}")
            }
            ExpandError::TestTooShort { steps } => {
                write!(f, "saturated-output collapses need tests of ≥ 2 ticks, got {steps}")
            }
        }
    }
}

impl std::error::Error for ExpandError {}

/// Error running a collapsed campaign.
#[derive(Debug)]
pub enum CollapsedCampaignError {
    /// The underlying representative campaign failed.
    Campaign(CampaignError),
    /// Expansion back to the full universe failed.
    Expand(ExpandError),
}

impl std::fmt::Display for CollapsedCampaignError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CollapsedCampaignError::Campaign(e) => write!(f, "{e}"),
            CollapsedCampaignError::Expand(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for CollapsedCampaignError {}

/// A fault universe partitioned into representatives and statically
/// decided faults.
#[derive(Debug, Clone)]
pub struct CollapsedUniverse {
    universe_len: usize,
    representatives: Vec<Fault>,
    collapses: Vec<Collapse>,
}

impl CollapsedUniverse {
    /// Partitions `universe` using the facts in `intervals` (which must
    /// come from the same `net`).
    pub fn build(net: &Network, universe: &FaultUniverse, intervals: &IntervalAnalysis) -> Self {
        let last_spiking_output = net.layers().last().is_some_and(Layer::is_spiking);
        let last_layer = net.layers().len().saturating_sub(1);
        let mut representatives = Vec::new();
        let mut collapses = Vec::new();
        let mut by_site_value: HashMap<(WeightRef, u32), usize> = HashMap::new();

        for fault in universe.faults() {
            let reason = match (fault.site, fault.kind) {
                (FaultSite::Neuron { layer, index }, FaultKind::NeuronDead) => {
                    if intervals.is_dead(layer, index) {
                        Some(CollapseReason::DeadNeuron { layer, index })
                    } else {
                        None
                    }
                }
                (FaultSite::Neuron { layer, index }, FaultKind::NeuronSaturated) => {
                    let healthy_refrac =
                        net.layers().get(layer).and_then(Layer::lif).map_or(0, |l| l.refrac_steps);
                    if last_spiking_output && layer == last_layer && healthy_refrac >= 1 {
                        Some(CollapseReason::SaturatedOutput {
                            layer,
                            index,
                            refrac_steps: healthy_refrac,
                        })
                    } else {
                        None
                    }
                }
                (
                    FaultSite::Neuron { layer, index },
                    FaultKind::NeuronTiming { threshold_scale, leak_scale, .. },
                ) => timing_on_dead(net, intervals, layer, index, threshold_scale, leak_scale),
                // Kind/site mismatches cannot be enumerated by
                // FaultUniverse; never collapse them.
                (FaultSite::Neuron { .. }, _) => None,
                (FaultSite::Synapse(at), _) => {
                    match Injection::for_fault(net, universe, fault) {
                        Ok(Injection::Weight { at: _, value }) => {
                            synapse_collapse(net, intervals, at, value, &by_site_value)
                        }
                        // An injection error is never collapsed; the
                        // simulator will surface it.
                        _ => None,
                    }
                }
            };
            match reason {
                Some(reason) => collapses.push(Collapse { fault_id: fault.id, reason }),
                None => {
                    if let (FaultSite::Synapse(at), Ok(Injection::Weight { value, .. })) =
                        (fault.site, Injection::for_fault(net, universe, fault))
                    {
                        by_site_value.entry((at, value.to_bits())).or_insert(fault.id);
                    }
                    representatives.push(*fault);
                }
            }
        }
        Self { universe_len: universe.len(), representatives, collapses }
    }

    /// Faults that must actually be simulated, in id order.
    pub fn representatives(&self) -> &[Fault] {
        &self.representatives
    }

    /// Statically decided faults, in id order.
    pub fn collapses(&self) -> &[Collapse] {
        &self.collapses
    }

    /// Size of the underlying universe.
    pub fn universe_len(&self) -> usize {
        self.universe_len
    }

    /// Fraction of the universe decided statically (0.0 for an empty
    /// universe).
    pub fn collapse_fraction(&self) -> f64 {
        if self.universe_len == 0 {
            return 0.0;
        }
        // snn-lint note: usize→f64 is exact below 2^53, far beyond any universe.
        self.collapses.len() as f64 / self.universe_len as f64
    }

    /// Maps representative outcomes back to a full-universe outcome
    /// vector, in fault-id order. `test_steps` is the shortest test
    /// length of the campaign (guards `SaturatedOutput` expansions).
    ///
    /// # Errors
    ///
    /// [`ExpandError::MissingRepresentative`] when `rep_outcomes` lacks a
    /// representative; [`ExpandError::TestTooShort`] when a
    /// `SaturatedOutput` collapse exists but `test_steps < 2`.
    pub fn expand(
        &self,
        rep_outcomes: &[FaultOutcome],
        test_steps: usize,
    ) -> Result<Vec<FaultOutcome>, ExpandError> {
        // Expansion is the post-loop kernel phase of a collapsed
        // campaign: account it alongside inject/forward/compare and
        // publish it as a synthetic `phase.expand` span when tracing.
        let expand_started = snn_obs::clock::monotonic();
        let result = self.expand_inner(rep_outcomes, test_steps);
        let elapsed = snn_obs::clock::monotonic().saturating_sub(expand_started);
        snn_obs::phase::faultsim().add(snn_obs::phase::Phase::Expand, elapsed);
        snn_obs::histogram!(
            "snn_analyze_expand_seconds",
            "Time expanding representative verdicts onto the full universe.",
            snn_obs::metrics::FINE_DURATION_BUCKETS
        )
        .observe_duration(elapsed);
        if let Some(collector) = snn_obs::trace::installed() {
            collector.push_synthetic(
                "phase.expand",
                snn_obs::trace::current_id(),
                elapsed,
                vec![("count".to_string(), "1".to_string())],
            );
        }
        result
    }

    fn expand_inner(
        &self,
        rep_outcomes: &[FaultOutcome],
        test_steps: usize,
    ) -> Result<Vec<FaultOutcome>, ExpandError> {
        let by_id: HashMap<usize, &FaultOutcome> =
            rep_outcomes.iter().map(|o| (o.fault_id, o)).collect();
        let reasons: HashMap<usize, &CollapseReason> =
            self.collapses.iter().map(|c| (c.fault_id, &c.reason)).collect();
        let mut out = Vec::with_capacity(self.universe_len);
        for id in 0..self.universe_len {
            if let Some(reason) = reasons.get(&id) {
                match reason {
                    CollapseReason::AliasOf { representative, .. } => {
                        let rep = by_id.get(representative).ok_or(
                            ExpandError::MissingRepresentative { fault_id: *representative },
                        )?;
                        out.push(FaultOutcome {
                            fault_id: id,
                            detected: rep.detected,
                            distance: rep.distance,
                            class_diff: rep.class_diff.clone(),
                        });
                    }
                    CollapseReason::SaturatedOutput { .. } => {
                        if test_steps < 2 {
                            return Err(ExpandError::TestTooShort { steps: test_steps });
                        }
                        // distance is a provable lower bound (the healthy
                        // and saturated output trains differ in ≥ 1 tick),
                        // not the simulated value.
                        out.push(FaultOutcome {
                            fault_id: id,
                            detected: true,
                            distance: 1.0,
                            class_diff: None,
                        });
                    }
                    _ => out.push(FaultOutcome {
                        fault_id: id,
                        detected: false,
                        distance: 0.0,
                        class_diff: None,
                    }),
                }
            } else {
                let rep =
                    by_id.get(&id).ok_or(ExpandError::MissingRepresentative { fault_id: id })?;
                out.push((*rep).clone());
            }
        }
        Ok(out)
    }

    /// Runs a campaign over the representatives only and expands the
    /// outcome to the full universe. Drop-in replacement for
    /// `FaultSimulator::detect_with` over `universe.faults()`.
    ///
    /// # Errors
    ///
    /// Propagates the representative campaign's error or the expansion
    /// error.
    pub fn detect_collapsed(
        &self,
        net: &Network,
        universe: &FaultUniverse,
        tests: &[Tensor],
        cfg: FaultSimConfig,
        sink: &dyn ProgressSink,
        cancel: &CancelToken,
    ) -> Result<CampaignOutcome, CollapsedCampaignError> {
        let sim = FaultSimulator::new(net, cfg);
        self.detect_collapsed_via(tests, |reps| {
            sim.detect_with(universe, reps, tests, sink, cancel)
        })
    }

    /// [`detect_collapsed`](Self::detect_collapsed) with the
    /// representative campaign supplied as a closure, so alternative
    /// execution engines (e.g. `snn-batch`'s packed engine) can run
    /// underneath the expansion without this crate depending on them.
    /// `tests` is only consulted for the minimum test length the
    /// expansion of saturated-threshold justifications needs.
    ///
    /// # Errors
    ///
    /// Propagates the representative campaign's error or the expansion
    /// error.
    pub fn detect_collapsed_via<F>(
        &self,
        tests: &[Tensor],
        campaign: F,
    ) -> Result<CampaignOutcome, CollapsedCampaignError>
    where
        F: FnOnce(&[Fault]) -> Result<CampaignOutcome, CampaignError>,
    {
        let outcome = campaign(&self.representatives).map_err(CollapsedCampaignError::Campaign)?;
        let min_steps =
            tests.iter().map(|t| t.shape().dims().first().copied().unwrap_or(0)).min().unwrap_or(0);
        let per_fault =
            self.expand(&outcome.per_fault, min_steps).map_err(CollapsedCampaignError::Expand)?;
        Ok(CampaignOutcome { per_fault, elapsed: outcome.elapsed })
    }

    /// Re-derives every recorded justification from scratch against
    /// `net` and `universe`. Returns human-readable descriptions of any
    /// violation — an empty vector means the collapse set is sound.
    pub fn self_check(&self, net: &Network, universe: &FaultUniverse) -> Vec<String> {
        let intervals = IntervalAnalysis::new(net);
        let mut errors = Vec::new();
        if self.representatives.len() + self.collapses.len() != self.universe_len
            || self.universe_len != universe.len()
        {
            errors.push(format!(
                "partition mismatch: {} reps + {} collapses != universe of {}",
                self.representatives.len(),
                self.collapses.len(),
                universe.len()
            ));
        }
        let rep_ids: std::collections::HashSet<usize> =
            self.representatives.iter().map(|f| f.id).collect();
        let faults = universe.faults();
        for c in &self.collapses {
            let Some(fault) = faults.get(c.fault_id) else {
                errors.push(format!("collapse refers to unknown fault {}", c.fault_id));
                continue;
            };
            if let Some(e) = check_reason(net, universe, &intervals, fault, &c.reason, &rep_ids) {
                errors.push(format!("fault {}: {e}", c.fault_id));
            }
        }
        errors
    }
}

/// Effective parameters after a timing fault, mirroring the simulator's
/// clamping (`snn::sim::EffectiveParams`): `θ' = max(θ·ts, ε)`,
/// `λ' = clamp(λ·ls, ε, 1)`.
fn scaled_params(lif: &LifParams, threshold_scale: f32, leak_scale: f32) -> (f32, f32) {
    let threshold = (lif.threshold * threshold_scale).max(f32::EPSILON);
    let leak = (lif.leak * leak_scale).clamp(f32::EPSILON, 1.0);
    (threshold, leak)
}

fn timing_on_dead(
    net: &Network,
    intervals: &IntervalAnalysis,
    layer: usize,
    index: usize,
    threshold_scale: f32,
    leak_scale: f32,
) -> Option<CollapseReason> {
    if !intervals.is_dead(layer, index) {
        return None;
    }
    let lif = net.layers().get(layer).and_then(Layer::lif)?;
    let (threshold_scaled, leak_scaled) = scaled_params(lif, threshold_scale, leak_scale);
    let z_max = intervals.z_max(layer, index);
    let perturbed = LifParams { threshold: threshold_scaled, leak: leak_scaled, ..*lif };
    if provably_dead(z_max, &perturbed) {
        Some(CollapseReason::TimingOnDead { layer, index, z_max, threshold_scaled, leak_scaled })
    } else {
        None
    }
}

/// Decodes the source feature of a weight from its offset, mirroring
/// the layer weight layouts (`DenseLayer` `[out×in]`, `ConvLayer`
/// `[oc,ic,k,k]`, `RecurrentLayer` `[units×in]` + `[units×units]`).
pub fn source_of(net: &Network, at: WeightRef) -> Option<SourceRef> {
    match net.layers().get(at.layer)? {
        Layer::Dense(d) => {
            let cols = d.weight.shape().dims()[1];
            Some(SourceRef::InFeature { layer: at.layer, feature: at.offset % cols })
        }
        Layer::Conv(c) => {
            let k = c.spec.kernel;
            let ic = (at.offset / (k * k)) % c.spec.in_channels;
            Some(SourceRef::InChannel { layer: at.layer, channel: ic })
        }
        Layer::Recurrent(r) => {
            if at.tensor == 0 {
                let cols = r.w_in.shape().dims()[1];
                Some(SourceRef::InFeature { layer: at.layer, feature: at.offset % cols })
            } else {
                let units = r.w_rec.shape().dims()[0];
                Some(SourceRef::RecUnit { layer: at.layer, unit: at.offset % units })
            }
        }
        Layer::Pool(_) => None,
    }
}

/// Decodes the target neuron(s) of a weight from its offset.
pub fn target_of(net: &Network, at: WeightRef) -> Option<TargetRef> {
    match net.layers().get(at.layer)? {
        Layer::Dense(d) => {
            let cols = d.weight.shape().dims()[1];
            Some(TargetRef::Neuron { layer: at.layer, index: at.offset / cols })
        }
        Layer::Conv(c) => {
            let k = c.spec.kernel;
            let oc = at.offset / (c.spec.in_channels * k * k);
            Some(TargetRef::Channel { layer: at.layer, channel: oc })
        }
        Layer::Recurrent(r) => {
            let cols =
                if at.tensor == 0 { r.w_in.shape().dims()[1] } else { r.w_rec.shape().dims()[0] };
            Some(TargetRef::Neuron { layer: at.layer, index: at.offset / cols })
        }
        Layer::Pool(_) => None,
    }
}

/// `true` when the interval analysis proves the source feature silent.
fn source_silent(net: &Network, intervals: &IntervalAnalysis, source: SourceRef) -> bool {
    match source {
        SourceRef::InFeature { layer, feature } => intervals
            .layers()
            .get(layer)
            .and_then(|l| l.silent_in.get(feature))
            .copied()
            .unwrap_or(false),
        SourceRef::InChannel { layer, channel } => match net.layers().get(layer) {
            Some(Layer::Conv(c)) => {
                let silent_in = intervals.layers().get(layer).map(|l| l.silent_in.as_slice());
                silent_in
                    .map(|s| crate::interval::conv_channel_silent(c, s, channel))
                    .unwrap_or(false)
            }
            _ => false,
        },
        SourceRef::RecUnit { layer, unit } => intervals.is_dead(layer, unit),
    }
}

/// Representative neuron index of a target (conv: first position of the
/// channel), used to look up interval facts.
fn target_neuron_index(net: &Network, target: TargetRef) -> (usize, usize) {
    match target {
        TargetRef::Neuron { layer, index } => (layer, index),
        TargetRef::Channel { layer, channel } => {
            let per = match net.layers().get(layer) {
                Some(Layer::Conv(c)) => {
                    let (oh, ow) = c.out_hw();
                    oh * ow
                }
                _ => 1,
            };
            (layer, channel * per)
        }
    }
}

/// Drive bound of the target with `value` substituted for the stored
/// weight at `at`.
fn substituted_z_max(
    net: &Network,
    intervals: &IntervalAnalysis,
    at: WeightRef,
    value: f32,
) -> f64 {
    let Some(target) = target_of(net, at) else { return f64::INFINITY };
    let (layer, index) = target_neuron_index(net, target);
    let z_max = intervals.z_max(layer, index);
    let w = f64::from(net.weight(at));
    z_max - w.max(0.0) + f64::from(value).max(0.0)
}

fn synapse_collapse(
    net: &Network,
    intervals: &IntervalAnalysis,
    at: WeightRef,
    value: f32,
    by_site_value: &HashMap<(WeightRef, u32), usize>,
) -> Option<CollapseReason> {
    let current = net.weight(at);
    if f32_eq(value, current) {
        return Some(CollapseReason::IdenticalWeight { at, weight: current });
    }
    let source = source_of(net, at)?;
    if source_silent(net, intervals, source) {
        return Some(CollapseReason::SilentSource { at, source });
    }
    let target = target_of(net, at)?;
    let (layer, index) = target_neuron_index(net, target);
    if intervals.is_dead(layer, index) {
        let lif = net.layers().get(layer).and_then(Layer::lif)?;
        let z_max_faulty = substituted_z_max(net, intervals, at, value);
        if provably_dead(z_max_faulty, lif) {
            return Some(CollapseReason::DeadTarget { at, target, injected: value, z_max_faulty });
        }
    }
    by_site_value.get(&(at, value.to_bits())).map(|&representative| CollapseReason::AliasOf {
        representative,
        at,
        injected: value,
    })
}

/// Re-derives one recorded reason; `None` when it checks out.
fn check_reason(
    net: &Network,
    universe: &FaultUniverse,
    intervals: &IntervalAnalysis,
    fault: &Fault,
    reason: &CollapseReason,
    rep_ids: &std::collections::HashSet<usize>,
) -> Option<String> {
    let injected_value = || match Injection::for_fault(net, universe, fault) {
        Ok(Injection::Weight { value, .. }) => Some(value),
        _ => None,
    };
    match reason {
        CollapseReason::IdenticalWeight { at, weight } => {
            let Some(value) = injected_value() else {
                return Some("fault does not inject a weight".into());
            };
            if !f32_eq(net.weight(*at), *weight) {
                return Some(format!("recorded weight {weight} != stored {}", net.weight(*at)));
            }
            if !f32_eq(value, *weight) {
                return Some(format!("injected {value} != recorded weight {weight}"));
            }
            None
        }
        CollapseReason::SilentSource { at, source } => {
            if source_of(net, *at) != Some(*source) {
                return Some("recorded source does not match the weight layout".into());
            }
            if !source_silent(net, intervals, *source) {
                return Some(format!("source {source:?} is not provably silent"));
            }
            None
        }
        CollapseReason::DeadTarget { at, target, injected, z_max_faulty } => {
            let Some(value) = injected_value() else {
                return Some("fault does not inject a weight".into());
            };
            if !f32_eq(value, *injected) {
                return Some(format!("injected {value} != recorded {injected}"));
            }
            if target_of(net, *at) != Some(*target) {
                return Some("recorded target does not match the weight layout".into());
            }
            let (layer, index) = target_neuron_index(net, *target);
            if !intervals.is_dead(layer, index) {
                return Some(format!("target {target:?} is not provably dead"));
            }
            let recomputed = substituted_z_max(net, intervals, *at, value);
            if (recomputed - z_max_faulty).abs() > 1e-12 * z_max_faulty.abs().max(1.0) {
                return Some(format!(
                    "recorded faulty bound {z_max_faulty} != recomputed {recomputed}"
                ));
            }
            let Some(lif) = net.layers().get(layer).and_then(Layer::lif) else {
                return Some("target layer has no LIF parameters".into());
            };
            if !provably_dead(recomputed, lif) {
                return Some(format!("target not provably dead under faulty bound {recomputed}"));
            }
            None
        }
        CollapseReason::DeadNeuron { layer, index } => {
            if !intervals.is_dead(*layer, *index) {
                return Some(format!("neuron {layer}/{index} is not provably dead"));
            }
            None
        }
        CollapseReason::TimingOnDead { layer, index, z_max, threshold_scaled, leak_scaled } => {
            if !intervals.is_dead(*layer, *index) {
                return Some(format!("neuron {layer}/{index} is not provably dead"));
            }
            let FaultKind::NeuronTiming { threshold_scale, leak_scale, .. } = fault.kind else {
                return Some("timing-on-dead recorded for a non-timing fault".into());
            };
            let Some(lif) = net.layers().get(*layer).and_then(Layer::lif) else {
                return Some("neuron layer has no LIF parameters".into());
            };
            let (t, l) = scaled_params(lif, threshold_scale, leak_scale);
            if !f32_eq(t, *threshold_scaled) || !f32_eq(l, *leak_scaled) {
                return Some(format!(
                    "recorded scaled params ({threshold_scaled}, {leak_scaled}) != recomputed ({t}, {l})"
                ));
            }
            let recomputed = intervals.z_max(*layer, *index);
            if (recomputed - z_max).abs() > 1e-12 * z_max.abs().max(1.0) {
                return Some(format!("recorded z_max {z_max} != recomputed {recomputed}"));
            }
            let perturbed = LifParams { threshold: t, leak: l, ..*lif };
            if !provably_dead(recomputed, &perturbed) {
                return Some("neuron not provably dead under perturbed parameters".into());
            }
            None
        }
        CollapseReason::AliasOf { representative, at, injected } => {
            if !rep_ids.contains(representative) {
                return Some(format!("alias points at non-representative {representative}"));
            }
            let Some(value) = injected_value() else {
                return Some("fault does not inject a weight".into());
            };
            if !f32_eq(value, *injected) {
                return Some(format!("injected {value} != recorded {injected}"));
            }
            let rep_fault = universe.faults().get(*representative);
            let rep_inj = rep_fault.and_then(|f| match Injection::for_fault(net, universe, f) {
                Ok(Injection::Weight { at: rat, value: rv }) => Some((rat, rv)),
                _ => None,
            });
            match rep_inj {
                Some((rat, rv)) if rat == *at && f32_eq(rv, value) => None,
                _ => Some(format!(
                    "representative {representative} does not inject the same (site, value)"
                )),
            }
        }
        CollapseReason::SaturatedOutput { layer, index, refrac_steps } => {
            let last = net.layers().len().saturating_sub(1);
            if *layer != last || !net.layers().get(*layer).is_some_and(|l| l.is_spiking()) {
                return Some(format!("layer {layer} is not the spiking final layer"));
            }
            let healthy =
                net.layers().get(*layer).and_then(Layer::lif).map_or(0, |l| l.refrac_steps);
            if healthy < 1 || healthy != *refrac_steps {
                return Some(format!(
                    "recorded refrac {refrac_steps} != healthy {healthy} (must be ≥ 1)"
                ));
            }
            let count = net.layers().get(*layer).map_or(0, Layer::out_features);
            if *index >= count {
                return Some(format!("neuron index {index} out of range ({count})"));
            }
            None
        }
    }
}
