//! Rendering of analysis results as human text, JSON, or SARIF.
//!
//! Reuses `snn-lint`'s [`Diagnostic`] record and shared serialization
//! (`snn_lint::sarif`), so CI treats model-level findings exactly like
//! source-level ones. Model findings have no meaningful source line;
//! they anchor to line 0 (clamped to 1 in SARIF) of the model file.

use crate::{Analysis, NeuronClass};
use snn_lint::sarif::{self, json_string, Level, SarifRule};
use snn_lint::Diagnostic;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Provably-dead neuron: its `NeuronDead` fault is untestable.
pub const DEAD_ID: &str = "A-DEAD";
/// Per-rule collapse summary.
pub const COLLAPSE_ID: &str = "A-COLLAPSE";
/// Soundness self-check violation.
pub const UNSOUND_ID: &str = "A-UNSOUND";

/// Rule table for SARIF output.
pub fn sarif_rules() -> Vec<SarifRule> {
    vec![
        SarifRule {
            id: DEAD_ID,
            short_description: "neuron provably never reaches threshold; its NeuronDead fault \
                                is untestable"
                .into(),
        },
        SarifRule {
            id: COLLAPSE_ID,
            short_description: "faults statically decided by a collapse rule".into(),
        },
        SarifRule {
            id: UNSOUND_ID,
            short_description: "collapse justification failed the soundness self-check".into(),
        },
    ]
}

/// Severity mapping for SARIF: self-check violations are errors,
/// dead neurons warnings, collapse summaries notes.
pub fn level_of(d: &Diagnostic) -> Level {
    match d.id {
        UNSOUND_ID => Level::Error,
        DEAD_ID => Level::Warning,
        _ => Level::Note,
    }
}

/// Per-collapse-rule counts, in stable rule order.
pub fn rule_counts(analysis: &Analysis) -> BTreeMap<&'static str, usize> {
    let mut counts = BTreeMap::new();
    for c in analysis.collapsed.collapses() {
        *counts.entry(c.reason.rule()).or_insert(0) += 1;
    }
    counts
}

/// Builds the diagnostic list for `analysis`: one `A-DEAD` per
/// provably-dead neuron, one `A-COLLAPSE` per rule with a count, and
/// one `A-UNSOUND` per self-check error. `model` is the file the
/// diagnostics anchor to.
pub fn diagnostics(
    model: &str,
    analysis: &Analysis,
    self_check_errors: &[String],
) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for (layer_idx, la) in analysis.intervals.layers().iter().enumerate() {
        for (index, class) in la.class.iter().enumerate() {
            if *class == NeuronClass::Dead {
                out.push(Diagnostic {
                    file: model.to_string(),
                    line: 0,
                    id: DEAD_ID,
                    message: format!(
                        "neuron {index} of layer {layer_idx} provably never fires \
                         (drive bound {:.4}); its NeuronDead fault is untestable",
                        la.z_max.get(index).copied().unwrap_or(0.0)
                    ),
                });
            }
        }
    }
    for (rule, count) in rule_counts(analysis) {
        out.push(Diagnostic {
            file: model.to_string(),
            line: 0,
            id: COLLAPSE_ID,
            message: format!("{count} faults collapsed by rule `{rule}`"),
        });
    }
    for e in self_check_errors {
        out.push(Diagnostic {
            file: model.to_string(),
            line: 0,
            id: UNSOUND_ID,
            message: e.clone(),
        });
    }
    out
}

/// Human-readable report.
pub fn render_text(model: &str, analysis: &Analysis, self_check_errors: &[String]) -> String {
    let s = &analysis.summary;
    let mut out = String::new();
    let _ = writeln!(out, "snn-analyze: {model}");
    let _ = writeln!(
        out,
        "  neurons: {} ({} excitable, {} dead, {} undecided)",
        s.neurons, s.excitable_neurons, s.dead_neurons, s.undecided_neurons
    );
    let _ = writeln!(
        out,
        "  faults:  {} ({} collapsed = {:.1}%, {} to simulate)",
        s.faults,
        s.collapsed,
        s.collapse_fraction * 100.0,
        s.representatives
    );
    let counts = rule_counts(analysis);
    if !counts.is_empty() {
        let per_rule: Vec<String> = counts.iter().map(|(rule, n)| format!("{n}× {rule}")).collect();
        let _ = writeln!(out, "  rules:   {}", per_rule.join(", "));
    }
    for d in diagnostics(model, analysis, &[]) {
        if d.id == DEAD_ID {
            let _ = writeln!(out, "  [{}] {}", d.id, d.message);
        }
    }
    if self_check_errors.is_empty() {
        let _ = writeln!(out, "  self-check: ok");
    } else {
        for e in self_check_errors {
            let _ = writeln!(out, "  [{UNSOUND_ID}] {e}");
        }
    }
    out
}

/// JSON report: summary, per-rule counts, and lint-style diagnostics.
pub fn render_json(model: &str, analysis: &Analysis, self_check_errors: &[String]) -> String {
    let s = &analysis.summary;
    let mut out = String::new();
    let _ = write!(out, "{{\"model\":{},", json_string(model));
    let _ = write!(
        out,
        "\"summary\":{{\"neurons\":{},\"dead_neurons\":{},\"excitable_neurons\":{},\
         \"undecided_neurons\":{},\"faults\":{},\"collapsed\":{},\"representatives\":{},\
         \"collapse_fraction\":{}}},",
        s.neurons,
        s.dead_neurons,
        s.excitable_neurons,
        s.undecided_neurons,
        s.faults,
        s.collapsed,
        s.representatives,
        s.collapse_fraction
    );
    out.push_str("\"rules\":{");
    for (i, (rule, count)) in rule_counts(analysis).iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{}:{}", json_string(rule), count);
    }
    out.push_str("},\"diagnostics\":[");
    for (i, d) in diagnostics(model, analysis, self_check_errors).iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"file\":{},\"line\":{},\"id\":{},\"message\":{}}}",
            json_string(&d.file),
            d.line,
            json_string(d.id),
            json_string(&d.message)
        );
    }
    out.push_str("]}");
    out
}

/// SARIF report via the shared `snn_lint::sarif` module.
pub fn render_sarif(model: &str, analysis: &Analysis, self_check_errors: &[String]) -> String {
    let ds = diagnostics(model, analysis, self_check_errors);
    sarif::render("snn-analyze", "DESIGN.md", &sarif_rules(), &ds, level_of)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use snn_faults::FaultUniverse;
    use snn_model::{LifParams, NetworkBuilder};

    fn analysis() -> (snn_model::Network, Analysis) {
        let mut rng = StdRng::seed_from_u64(3);
        let mut net =
            NetworkBuilder::new(5, LifParams::default()).dense(6).dense(2).build(&mut rng);
        crate::magnitude_prune(&mut net, 0.5);
        let universe = FaultUniverse::standard(&net);
        let a = crate::analyze(&net, &universe);
        (net, a)
    }

    #[test]
    fn text_report_names_model_and_rules() {
        let (_, a) = analysis();
        let out = render_text("m.snn", &a, &[]);
        assert!(out.contains("snn-analyze: m.snn"));
        assert!(out.contains("identical-weight"));
        assert!(out.contains("self-check: ok"));
    }

    #[test]
    fn json_report_carries_summary_and_rules() {
        let (_, a) = analysis();
        let out = render_json("m.snn", &a, &[]);
        assert!(out.contains("\"model\":\"m.snn\""));
        assert!(out.contains(&format!("\"faults\":{}", a.summary.faults)));
        assert!(out.contains("\"identical-weight\":"));
        assert!(out.contains("\"diagnostics\":["));
    }

    #[test]
    fn sarif_report_is_wellformed_and_flags_unsound_as_error() {
        let (_, a) = analysis();
        let out = render_sarif("m.snn", &a, &["bogus collapse".into()]);
        assert!(out.contains("\"name\":\"snn-analyze\""));
        assert!(out.contains("\"level\":\"error\""));
        assert!(out.contains("bogus collapse"));
    }

    #[test]
    fn self_check_errors_appear_in_text() {
        let (_, a) = analysis();
        let out = render_text("m.snn", &a, &["fault 3: bad".into()]);
        assert!(out.contains("[A-UNSOUND] fault 3: bad"));
        assert!(!out.contains("self-check: ok"));
    }
}
