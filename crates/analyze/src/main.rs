//! `snn-analyze` CLI: static testability analysis of a saved model.
//!
//! ```text
//! snn-analyze <model.snn> [--format text|json|sarif] [--timing-faults]
//!             [--bitflip-bits 0,3,7] [--self-check] [--min-collapse <frac>]
//! ```
//!
//! Exit codes: 0 ok, 1 self-check violation or collapse fraction below
//! `--min-collapse`, 2 usage or I/O error.

use snn_faults::{FaultModelConfig, FaultUniverse};
use snn_model::Network;
use std::fs::File;
use std::io::BufReader;
use std::process::ExitCode;

#[derive(Clone, Copy, PartialEq, Eq)]
enum Format {
    Text,
    Json,
    Sarif,
}

struct Args {
    model: String,
    format: Format,
    timing_faults: bool,
    bitflip_bits: Vec<u8>,
    self_check: bool,
    min_collapse: Option<f64>,
}

fn parse_args() -> Result<Args, String> {
    let mut model = None;
    let mut format = Format::Text;
    let mut timing_faults = false;
    let mut bitflip_bits = Vec::new();
    let mut self_check = false;
    let mut min_collapse = None;
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--format" => match it.next().as_deref() {
                Some("text") => format = Format::Text,
                Some("json") => format = Format::Json,
                Some("sarif") => format = Format::Sarif,
                other => {
                    return Err(format!(
                        "--format expects `text`, `json` or `sarif`, got {:?}",
                        other.unwrap_or("<missing>")
                    ))
                }
            },
            "--timing-faults" => timing_faults = true,
            "--bitflip-bits" => {
                let value = it.next().ok_or("--bitflip-bits needs a comma-separated list")?;
                for part in value.split(',').filter(|p| !p.is_empty()) {
                    let bit: u8 = part
                        .trim()
                        .parse()
                        .map_err(|_| format!("--bitflip-bits: {part:?} is not a bit position"))?;
                    if bit > 7 {
                        return Err(format!("--bitflip-bits: {bit} exceeds 7 (int8 words)"));
                    }
                    bitflip_bits.push(bit);
                }
            }
            "--self-check" => self_check = true,
            "--min-collapse" => {
                let value = it.next().ok_or("--min-collapse needs a fraction argument")?;
                let frac: f64 = value
                    .parse()
                    .map_err(|_| format!("--min-collapse: {value:?} is not a number"))?;
                if !(0.0..=1.0).contains(&frac) {
                    return Err(format!("--min-collapse: {frac} is outside [0, 1]"));
                }
                min_collapse = Some(frac);
            }
            "--help" | "-h" => {
                println!(
                    "snn-analyze: static testability analysis of an SNN model\n\n\
                     USAGE: snn-analyze <model.snn> [--format text|json|sarif]\n       \
                     [--timing-faults] [--bitflip-bits 0,3,7]\n       \
                     [--self-check] [--min-collapse <frac>]\n\n\
                     Classifies neurons (excitable/dead/undecided) by LIF interval\n\
                     analysis and collapses statically decided faults. --self-check\n\
                     re-derives every collapse justification; --min-collapse fails\n\
                     (exit 1) when less than the given fraction collapses.\n\n\
                     See DESIGN.md §10 for the rule set and soundness arguments."
                );
                std::process::exit(0);
            }
            other if !other.starts_with('-') && model.is_none() => {
                model = Some(other.to_string());
            }
            other => return Err(format!("unknown argument {other:?} (try --help)")),
        }
    }
    let model = model.ok_or("missing model path (try --help)")?;
    Ok(Args { model, format, timing_faults, bitflip_bits, self_check, min_collapse })
}

fn run(args: &Args) -> Result<bool, String> {
    let file = File::open(&args.model).map_err(|e| format!("cannot open {}: {e}", args.model))?;
    let net = Network::load(&mut BufReader::new(file))
        .map_err(|e| format!("cannot load {}: {e}", args.model))?;
    let universe = if args.timing_faults || !args.bitflip_bits.is_empty() {
        // Bit range was validated at parse time, so the constructor's
        // documented panic is unreachable.
        FaultUniverse::with_config(
            &net,
            FaultModelConfig::default(),
            args.timing_faults,
            &args.bitflip_bits,
        )
    } else {
        FaultUniverse::standard(&net)
    };
    let analysis = snn_analyze::analyze(&net, &universe);
    let self_check_errors =
        if args.self_check { analysis.collapsed.self_check(&net, &universe) } else { Vec::new() };
    let rendered = match args.format {
        Format::Text => {
            snn_analyze::report::render_text(&args.model, &analysis, &self_check_errors)
        }
        Format::Json => {
            snn_analyze::report::render_json(&args.model, &analysis, &self_check_errors)
        }
        Format::Sarif => {
            snn_analyze::report::render_sarif(&args.model, &analysis, &self_check_errors)
        }
    };
    print!("{rendered}");
    if args.format == Format::Text && !rendered.ends_with('\n') {
        println!();
    }
    let mut ok = self_check_errors.is_empty();
    if let Some(min) = args.min_collapse {
        if analysis.summary.collapse_fraction < min {
            eprintln!(
                "error: collapse fraction {:.4} is below the required {:.4}",
                analysis.summary.collapse_fraction, min
            );
            ok = false;
        }
    }
    Ok(ok)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    match run(&args) {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::FAILURE,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(2)
        }
    }
}
