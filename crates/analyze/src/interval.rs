//! Interval analysis over LIF dynamics.
//!
//! Treats every feature entering a layer as an arbitrary per-tick value
//! in `[0, 1]` — a sound superset of everything the simulator can
//! produce (network stimuli are binary spikes, spiking layers emit
//! `{0, 1}`, average-pool layers emit `[0, 1]`). Under that model the
//! drive `z` of a neuron is bounded by
//!
//! ```text
//! z_min = Σ min(wᵢ, 0)   ≤   z = Σ wᵢ·sᵢ   ≤   Σ max(wᵢ, 0) = z_max
//! ```
//!
//! and the membrane recursion `v ← λ·v + z` (carried potential resets
//! on spike, so the no-spike trajectory is the supremum) is bounded by
//! `v ≤ z_max / (1 − λ)` for `λ < 1`. A neuron whose bound provably
//! stays below its threshold can never fire — its `NeuronDead` fault is
//! untestable and every collapse rule in [`crate::collapse`] that
//! relies on silence becomes applicable.
//!
//! Two guards keep the f64 bounds sound against the simulator's f32
//! arithmetic (see DESIGN.md §10 for the full argument):
//!
//! * **Dead** requires `z_max ≤ 0` (exact: an f32 sum of non-positive
//!   terms is non-positive, and thresholds are validated > 0), or a
//!   relative margin `v_sup < θ·(1 − 1e-3)` with `1 − λ ≥ 1e-4`.
//! * **Excitable** (report-only) is decided by iterating the f32
//!   recursion itself with a slightly *deflated* drive, so rounding can
//!   only lose excitable verdicts, never invent them.

use snn_model::{Layer, LifParams, Network};

/// Relative margin between a provable bound and the threshold: protects
/// the f64 bound arithmetic against the simulator's f32 rounding. Costs
/// only analysis yield (borderline neurons stay `Undecided`), never
/// soundness.
pub const MARGIN: f64 = 1e-3;

/// Ticks the excitability iteration is given to reach threshold.
const EXCITE_HORIZON: usize = 4096;

/// Static classification of one spiking neuron.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NeuronClass {
    /// Provably reaches threshold under some binary input.
    Excitable,
    /// Provably never reaches threshold under any `[0,1]` input.
    Dead,
    /// Neither bound is conclusive.
    Undecided,
}

/// Per-layer analysis facts.
#[derive(Debug, Clone)]
pub struct LayerAnalysis {
    /// Silence of each *input* feature of this layer (`true` = the
    /// feature is provably 0 on every tick).
    pub silent_in: Vec<bool>,
    /// Class per output neuron. Empty for pool layers (no neurons).
    pub class: Vec<NeuronClass>,
    /// Upper drive bound per output neuron (conv: the per-out-channel
    /// bound, replicated across the channel's positions). Empty for
    /// pool layers.
    pub z_max: Vec<f64>,
    /// Lower drive bound per output neuron. Empty for pool layers.
    pub z_min: Vec<f64>,
    /// Silence of each *output* feature of this layer.
    pub silent_out: Vec<bool>,
}

/// Result of analyzing a whole network.
#[derive(Debug, Clone)]
pub struct IntervalAnalysis {
    layers: Vec<LayerAnalysis>,
}

impl IntervalAnalysis {
    /// Runs the analysis over `net`.
    pub fn new(net: &Network) -> Self {
        let mut silent = vec![false; net.input_features()];
        // Inputs to the current layer are freely choosable binary values
        // as long as only pool layers have been crossed: pool windows
        // are disjoint, so each pooled feature is still independently
        // drivable to exactly 0 or 1.
        let mut free = true;
        let mut layers = Vec::with_capacity(net.layers().len());
        for layer in net.layers() {
            let la = match layer {
                Layer::Pool(p) => pool_analysis(p, &silent),
                Layer::Dense(d) => {
                    let rows = d.weight.shape().dims()[0];
                    dense_like(&weights_rows(&d.weight, rows), &d.lif, &silent, free)
                }
                Layer::Recurrent(r) => recurrent_analysis(r, &silent, free),
                Layer::Conv(c) => conv_analysis(c, &silent),
            };
            if !matches!(layer, Layer::Pool(_)) {
                free = false;
            }
            silent.clone_from(&la.silent_out);
            layers.push(la);
        }
        Self { layers }
    }

    /// Per-layer facts, indexed like `Network::layers()`.
    pub fn layers(&self) -> &[LayerAnalysis] {
        &self.layers
    }

    /// Class of a spiking neuron; `Undecided` for out-of-range queries
    /// (pool layers have no entries).
    pub fn class(&self, layer: usize, index: usize) -> NeuronClass {
        self.layers
            .get(layer)
            .and_then(|l| l.class.get(index))
            .copied()
            .unwrap_or(NeuronClass::Undecided)
    }

    /// `true` when the neuron is provably dead.
    pub fn is_dead(&self, layer: usize, index: usize) -> bool {
        self.class(layer, index) == NeuronClass::Dead
    }

    /// Upper drive bound of a spiking neuron (`+∞` when unknown, which
    /// keeps every consumer conservative).
    pub fn z_max(&self, layer: usize, index: usize) -> f64 {
        self.layers.get(layer).and_then(|l| l.z_max.get(index)).copied().unwrap_or(f64::INFINITY)
    }

    /// Per-layer dead-neuron masks shaped like the generator's
    /// activation bookkeeping: one `Vec<bool>` per layer, empty for
    /// non-spiking layers.
    pub fn dead_mask(&self, net: &Network) -> Vec<Vec<bool>> {
        net.layers()
            .iter()
            .zip(&self.layers)
            .map(|(layer, la)| {
                if layer.is_spiking() {
                    la.class.iter().map(|&c| c == NeuronClass::Dead).collect()
                } else {
                    Vec::new()
                }
            })
            .collect()
    }

    /// Totals: `(dead, excitable, undecided)` over all spiking neurons.
    pub fn counts(&self) -> (usize, usize, usize) {
        let mut dead = 0;
        let mut excitable = 0;
        let mut undecided = 0;
        for la in &self.layers {
            for c in &la.class {
                match c {
                    NeuronClass::Dead => dead += 1,
                    NeuronClass::Excitable => excitable += 1,
                    NeuronClass::Undecided => undecided += 1,
                }
            }
        }
        (dead, excitable, undecided)
    }
}

/// `true` when a neuron with upper drive bound `z_max` provably never
/// reaches `threshold`. Sound against f32 simulation: the `z_max ≤ 0`
/// case is exact, the margin case keeps a `MARGIN` gap and refuses
/// leaks within `1e-4` of 1 (where rounding amplification of the
/// geometric sum could eat a smaller margin).
pub fn provably_dead(z_max: f64, lif: &LifParams) -> bool {
    if z_max <= 0.0 {
        return true;
    }
    let leak = f64::from(lif.leak);
    let one_minus = 1.0 - leak;
    if one_minus < 1e-4 {
        return false;
    }
    let v_sup = z_max / one_minus;
    v_sup < f64::from(lif.threshold) * (1.0 - MARGIN)
}

/// `true` when a neuron is provably excitable: iterates the simulator's
/// own f32 recursion `v ← λ·v + z` under a deflated constant drive.
/// `terms` is the number of summands behind `z_pos` (bounds the f32
/// summation error the deflation must absorb).
fn provably_excitable(z_pos: f64, terms: usize, lif: &LifParams) -> bool {
    if z_pos <= 0.0 {
        return false;
    }
    let deflate = 1.0 - (terms as f64) * 1e-7 - 1e-6;
    if deflate <= 0.0 {
        return false;
    }
    let z = (z_pos * deflate) as f32;
    let mut v = 0.0f32;
    for _ in 0..EXCITE_HORIZON {
        v = lif.leak * v + z;
        if v >= lif.threshold {
            return true;
        }
    }
    false
}

/// Row-major `[out × in]` weight rows as slices.
fn weights_rows(weight: &snn_tensor::Tensor, rows: usize) -> Vec<&[f32]> {
    let data = weight.as_slice();
    let cols = data.len().checked_div(rows).unwrap_or(0);
    (0..rows).map(|r| &data[r * cols..(r + 1) * cols]).collect()
}

fn bounds_over(row: &[f32], silent: &[bool]) -> (f64, f64) {
    let mut z_max = 0.0f64;
    let mut z_min = 0.0f64;
    for (i, &w) in row.iter().enumerate() {
        if silent.get(i).copied().unwrap_or(false) {
            continue;
        }
        let w = f64::from(w);
        if w > 0.0 {
            z_max += w;
        } else {
            z_min += w;
        }
    }
    (z_max, z_min)
}

fn dense_like(rows: &[&[f32]], lif: &LifParams, silent_in: &[bool], free: bool) -> LayerAnalysis {
    let mut class = Vec::with_capacity(rows.len());
    let mut z_max = Vec::with_capacity(rows.len());
    let mut z_min = Vec::with_capacity(rows.len());
    for row in rows {
        let (hi, lo) = bounds_over(row, silent_in);
        let c = if provably_dead(hi, lif) {
            NeuronClass::Dead
        } else if free && provably_excitable(hi, row.len(), lif) {
            NeuronClass::Excitable
        } else {
            NeuronClass::Undecided
        };
        class.push(c);
        z_max.push(hi);
        z_min.push(lo);
    }
    let silent_out = class.iter().map(|&c| c == NeuronClass::Dead).collect();
    LayerAnalysis { silent_in: silent_in.to_vec(), class, z_max, z_min, silent_out }
}

fn pool_analysis(p: &snn_model::PoolLayer, silent_in: &[bool]) -> LayerAnalysis {
    let (h, w) = p.in_hw;
    let (oh, ow) = p.out_hw();
    let k = p.k;
    let mut silent_out = Vec::with_capacity(p.channels * oh * ow);
    for c in 0..p.channels {
        for oy in 0..oh {
            for ox in 0..ow {
                let mut all_silent = true;
                'window: for dy in 0..k {
                    for dx in 0..k {
                        let idx = c * h * w + (oy * k + dy) * w + (ox * k + dx);
                        if !silent_in.get(idx).copied().unwrap_or(false) {
                            all_silent = false;
                            break 'window;
                        }
                    }
                }
                silent_out.push(all_silent);
            }
        }
    }
    LayerAnalysis {
        silent_in: silent_in.to_vec(),
        class: Vec::new(),
        z_max: Vec::new(),
        z_min: Vec::new(),
        silent_out,
    }
}

/// `true` when every position of input channel `ic` is silent.
pub fn conv_channel_silent(c: &snn_model::ConvLayer, silent_in: &[bool], ic: usize) -> bool {
    let (h, w) = c.in_hw;
    (0..h * w).all(|p| silent_in.get(ic * h * w + p).copied().unwrap_or(false))
}

fn conv_analysis(c: &snn_model::ConvLayer, silent_in: &[bool]) -> LayerAnalysis {
    let k = c.spec.kernel;
    let in_c = c.spec.in_channels;
    let out_c = c.spec.out_channels;
    let (oh, ow) = c.out_hw();
    let data = c.weight.as_slice();
    let channel_silent: Vec<bool> =
        (0..in_c).map(|ic| conv_channel_silent(c, silent_in, ic)).collect();
    let mut class = Vec::with_capacity(out_c * oh * ow);
    let mut z_max = Vec::with_capacity(out_c * oh * ow);
    let mut z_min = Vec::with_capacity(out_c * oh * ow);
    let mut silent_out = Vec::with_capacity(out_c * oh * ow);
    for oc in 0..out_c {
        let mut hi = 0.0f64;
        let mut lo = 0.0f64;
        for (ic, &ch_silent) in channel_silent.iter().enumerate() {
            if ch_silent {
                continue;
            }
            let base = (oc * in_c + ic) * k * k;
            for &w in &data[base..base + k * k] {
                let w = f64::from(w);
                if w > 0.0 {
                    hi += w;
                } else {
                    lo += w;
                }
            }
        }
        // Padding and window clipping only remove summands, so the
        // full-kernel bound holds at every spatial position. Conv
        // excitability is not claimed (clipped positions may see less
        // drive than the channel bound), so non-dead channels stay
        // Undecided.
        let cls =
            if provably_dead(hi, &c.lif) { NeuronClass::Dead } else { NeuronClass::Undecided };
        for _ in 0..oh * ow {
            class.push(cls);
            z_max.push(hi);
            z_min.push(lo);
            silent_out.push(cls == NeuronClass::Dead);
        }
    }
    LayerAnalysis { silent_in: silent_in.to_vec(), class, z_max, z_min, silent_out }
}

fn recurrent_analysis(
    r: &snn_model::RecurrentLayer,
    silent_in: &[bool],
    free: bool,
) -> LayerAnalysis {
    let units = r.w_rec.shape().dims()[0];
    let in_rows = weights_rows(&r.w_in, units);
    let rec = r.w_rec.as_slice();
    // Feedforward part of the bound, fixed across the fixpoint.
    let base: Vec<(f64, f64)> = in_rows.iter().map(|row| bounds_over(row, silent_in)).collect();
    // Monotone fixpoint: a neuron proven dead stops contributing its
    // recurrent weight to every other bound, which can only shrink
    // bounds and hence only grow the dead set — each pass either adds a
    // neuron or terminates, so the loop runs at most `units` passes.
    let mut dead = vec![false; units];
    loop {
        let mut changed = false;
        for j in 0..units {
            if dead[j] {
                continue;
            }
            let mut hi = base[j].0;
            for k in 0..units {
                if !dead[k] {
                    hi += f64::from(rec[j * units + k]).max(0.0);
                }
            }
            if provably_dead(hi, &r.lif) {
                dead[j] = true;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    let mut class = Vec::with_capacity(units);
    let mut z_max = Vec::with_capacity(units);
    let mut z_min = Vec::with_capacity(units);
    for j in 0..units {
        let mut hi = base[j].0;
        let mut lo = base[j].1;
        for k in 0..units {
            if !dead[k] {
                hi += f64::from(rec[j * units + k]).max(0.0);
                lo += f64::from(rec[j * units + k]).min(0.0);
            }
        }
        let c = if dead[j] {
            NeuronClass::Dead
        } else if free {
            // Excitability under chosen inputs must survive whatever the
            // recurrent feedback does: assume every recurrent source
            // fires a worst-case (most negative) pattern.
            let mut rec_neg = 0.0f64;
            for k in 0..units {
                rec_neg += f64::from(rec[j * units + k]).min(0.0);
            }
            let drive = base[j].0 + rec_neg;
            if provably_excitable(drive, r.w_in.len() / units.max(1) + units, &r.lif) {
                NeuronClass::Excitable
            } else {
                NeuronClass::Undecided
            }
        } else {
            NeuronClass::Undecided
        };
        class.push(c);
        z_max.push(hi);
        z_min.push(lo);
    }
    let silent_out = dead.clone();
    LayerAnalysis { silent_in: silent_in.to_vec(), class, z_max, z_min, silent_out }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snn_model::{DenseLayer, LifParams, Network};
    use snn_tensor::{Shape, Tensor};

    fn lif() -> LifParams {
        LifParams { threshold: 1.0, leak: 0.5, refrac_steps: 1 }
    }

    fn dense_net(rows: usize, cols: usize, weights: Vec<f32>) -> Network {
        let t = Tensor::from_vec(Shape::d2(rows, cols), weights).unwrap();
        Network::new(Shape::d1(cols), vec![Layer::Dense(DenseLayer::new(t, lif()))])
    }

    #[test]
    #[allow(clippy::float_cmp)] // asserting the exact 0.0 bound for all-negative fan-in
    fn all_negative_fanin_is_dead() {
        let net = dense_net(1, 3, vec![-0.5, -0.1, -2.0]);
        let a = IntervalAnalysis::new(&net);
        assert_eq!(a.class(0, 0), NeuronClass::Dead);
        assert_eq!(a.z_max(0, 0), 0.0);
    }

    #[test]
    fn subthreshold_geometric_sum_is_dead() {
        // z_max = 0.4, leak 0.5 → v_sup = 0.8 < 1.0·(1 − margin).
        let net = dense_net(1, 2, vec![0.4, -1.0]);
        let a = IntervalAnalysis::new(&net);
        assert_eq!(a.class(0, 0), NeuronClass::Dead);
    }

    #[test]
    fn strong_drive_is_excitable() {
        let net = dense_net(1, 2, vec![1.5, -1.0]);
        let a = IntervalAnalysis::new(&net);
        assert_eq!(a.class(0, 0), NeuronClass::Excitable);
    }

    #[test]
    fn borderline_drive_is_undecided() {
        // v_sup = 1.0 exactly: inside the margin band on both sides.
        let net = dense_net(1, 1, vec![0.5]);
        let a = IntervalAnalysis::new(&net);
        assert_eq!(a.class(0, 0), NeuronClass::Undecided);
    }

    #[test]
    fn silence_propagates_through_layers() {
        // Layer 0 neuron is dead; layer 1 sees only the dead feature, so
        // its huge weight is inert and it is dead too.
        let l0 = Tensor::from_vec(Shape::d2(1, 1), vec![-1.0]).unwrap();
        let l1 = Tensor::from_vec(Shape::d2(1, 1), vec![50.0]).unwrap();
        let net = Network::new(
            Shape::d1(1),
            vec![
                Layer::Dense(DenseLayer::new(l0, lif())),
                Layer::Dense(DenseLayer::new(l1, lif())),
            ],
        );
        let a = IntervalAnalysis::new(&net);
        assert_eq!(a.class(0, 0), NeuronClass::Dead);
        assert!(a.layers()[1].silent_in[0]);
        assert_eq!(a.class(1, 0), NeuronClass::Dead);
        let (dead, _, _) = a.counts();
        assert_eq!(dead, 2);
    }

    #[test]
    fn dead_mask_matches_layout() {
        let net = dense_net(2, 2, vec![-1.0, -1.0, 2.0, 2.0]);
        let a = IntervalAnalysis::new(&net);
        let mask = a.dead_mask(&net);
        assert_eq!(mask, vec![vec![true, false]]);
    }

    #[test]
    fn recurrent_fixpoint_excludes_dead_sources() {
        use snn_model::RecurrentLayer;
        // Unit 0: w_in = -1 → dead regardless of recurrence (positive
        // rec weight comes only from itself, excluded after pass 1...
        // actually from unit 1). Unit 1 is driven only by unit 0's spike
        // through w_rec, so once unit 0 is proven dead, unit 1's bound
        // drops to its w_in part (0.2) and it is proven dead too.
        let w_in = Tensor::from_vec(Shape::d2(2, 1), vec![-1.0, 0.2]).unwrap();
        let w_rec = Tensor::from_vec(Shape::d2(2, 2), vec![0.0, 0.0, 5.0, 0.0]).unwrap();
        let net = Network::new(
            Shape::d1(1),
            vec![Layer::Recurrent(RecurrentLayer::new(w_in, w_rec, lif()))],
        );
        let a = IntervalAnalysis::new(&net);
        assert_eq!(a.class(0, 0), NeuronClass::Dead);
        assert_eq!(a.class(0, 1), NeuronClass::Dead);
    }
}
