//! `snn-analyze`: static testability analysis of an SNN model.
//!
//! The paper's test-generation and fault-simulation loops spend their
//! entire budget on dynamic simulation, yet a slice of the
//! [`FaultUniverse`] is decidable before any simulation runs:
//!
//! * [`interval`] bounds every LIF neuron's membrane potential under
//!   worst-/best-case `[0,1]` input and classifies neurons as
//!   provably-excitable, provably-dead, or undecided.
//! * [`collapse`] partitions the fault universe into representatives
//!   and statically decided faults, each collapse carrying a
//!   machine-checkable justification that
//!   [`collapse::CollapsedUniverse::self_check`] re-derives.
//! * [`report`] renders the results as human text, JSON, or SARIF
//!   (sharing `snn-lint`'s diagnostic record and serialization).
//!
//! The collapse rules are *sound*, not heuristic: every collapsed fault
//! is either program-equivalent to the fault-free network, an alias of
//! a simulated representative, or provably detected. A full-universe
//! campaign and a collapsed-then-expanded campaign therefore report
//! identical per-fault detection, which the crate's property tests
//! assert by simulating both members of sampled equivalence classes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod collapse;
pub mod interval;
pub mod report;

pub use collapse::{
    Collapse, CollapseReason, CollapsedCampaignError, CollapsedUniverse, ExpandError, SourceRef,
    TargetRef,
};
pub use interval::{IntervalAnalysis, LayerAnalysis, NeuronClass};

use serde::{Deserialize, Serialize};
use snn_faults::FaultUniverse;
use snn_model::Network;

/// Compact, serializable result of an analysis run — small enough to
/// embed in service job results and CLI records.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AnalysisSummary {
    /// Spiking neurons in the network.
    pub neurons: usize,
    /// Provably-dead neurons (their `NeuronDead` faults are untestable).
    pub dead_neurons: usize,
    /// Provably-excitable neurons.
    pub excitable_neurons: usize,
    /// Neurons with no conclusive bound.
    pub undecided_neurons: usize,
    /// Faults in the analyzed universe.
    pub faults: usize,
    /// Faults whose outcome is statically decided.
    pub collapsed: usize,
    /// Faults that still require simulation.
    pub representatives: usize,
    /// `collapsed / faults` (0.0 for an empty universe).
    pub collapse_fraction: f64,
}

/// Full analysis result: interval facts, the collapsed universe, and
/// the serializable summary.
#[derive(Debug, Clone)]
pub struct Analysis {
    /// Per-neuron membrane-potential bounds and classes.
    pub intervals: IntervalAnalysis,
    /// The partitioned fault universe.
    pub collapsed: CollapsedUniverse,
    /// Serializable totals.
    pub summary: AnalysisSummary,
}

/// Runs the full static analysis of `net` against `universe`.
pub fn analyze(net: &Network, universe: &FaultUniverse) -> Analysis {
    let mut root_span = snn_obs::span!("analyze");
    root_span.attr("faults", universe.len());
    let intervals = {
        let _span = snn_obs::span!("analyze.intervals");
        IntervalAnalysis::new(net)
    };
    let collapsed = {
        let _span = snn_obs::span!("analyze.collapse");
        CollapsedUniverse::build(net, universe, &intervals)
    };
    snn_obs::gauge!(
        "snn_analyze_collapse_fraction",
        "Fraction of the fault universe removed by static collapsing."
    )
    .set(collapsed.collapse_fraction());
    let (dead, excitable, undecided) = intervals.counts();
    let summary = AnalysisSummary {
        neurons: net.neuron_count(),
        dead_neurons: dead,
        excitable_neurons: excitable,
        undecided_neurons: undecided,
        faults: universe.len(),
        collapsed: collapsed.collapses().len(),
        representatives: collapsed.representatives().len(),
        collapse_fraction: collapsed.collapse_fraction(),
    };
    Analysis { intervals, collapsed, summary }
}

/// Zeroes the `fraction` smallest-magnitude weights of `net` (global
/// magnitude pruning, ties broken by enumeration order). Returns the
/// number of weights newly set to zero. Used by `snn-mtfc new
/// --sparsity` to produce realistic sparse example networks, whose
/// zero-weight synapses make `SynapseDead` faults collapsible.
pub fn magnitude_prune(net: &mut Network, fraction: f64) -> usize {
    let total = net.synapse_count();
    let clamped = fraction.clamp(0.0, 1.0);
    // snn-lint note: usize→f64→usize round-trip is exact for any real
    // synapse count; the clamp keeps the index in range regardless.
    let keep_cutoff = ((total as f64) * clamped).floor() as usize;
    let mut refs: Vec<(f32, usize)> =
        (0..total).map(|g| (net.weight(net.locate_weight(g)).abs(), g)).collect();
    refs.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
    let mut zeroed = 0;
    for &(_, g) in refs.iter().take(keep_cutoff) {
        let r = net.locate_weight(g);
        // snn-lint: allow(L-FLOATEQ): counting weights that change; already-zero weights compare bit-exactly to 0.0
        if net.set_weight(r, 0.0) != 0.0 {
            zeroed += 1;
        }
    }
    zeroed
}

#[cfg(test)]
#[allow(clippy::float_cmp)] // tests assert exact zeroed-weight values
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use snn_model::{LifParams, NetworkBuilder};

    fn net() -> Network {
        let mut rng = StdRng::seed_from_u64(7);
        NetworkBuilder::new(6, LifParams::default()).dense(8).dense(3).build(&mut rng)
    }

    #[test]
    fn summary_totals_are_consistent() {
        let net = net();
        let universe = FaultUniverse::standard(&net);
        let a = analyze(&net, &universe);
        assert_eq!(a.summary.neurons, net.neuron_count());
        assert_eq!(a.summary.faults, universe.len());
        assert_eq!(a.summary.collapsed + a.summary.representatives, a.summary.faults);
        assert_eq!(
            a.summary.dead_neurons + a.summary.excitable_neurons + a.summary.undecided_neurons,
            a.summary.neurons
        );
        assert!(a.collapsed.self_check(&net, &universe).is_empty());
    }

    #[test]
    fn summary_round_trips_through_json() {
        let net = net();
        let universe = FaultUniverse::standard(&net);
        let summary = analyze(&net, &universe).summary;
        let json = serde::json::to_string(&summary);
        let back: AnalysisSummary = serde::json::from_str(&json).unwrap();
        assert_eq!(back, summary);
    }

    #[test]
    fn magnitude_prune_zeroes_the_requested_fraction() {
        let mut net = net();
        let total = net.synapse_count();
        let zeroed = magnitude_prune(&mut net, 0.5);
        assert_eq!(zeroed, total / 2); // Kaiming init: no pre-existing zeros
        let zeros = (0..total).filter(|&g| net.weight(net.locate_weight(g)) == 0.0).count();
        assert_eq!(zeros, total / 2);
        // Pruned-net SynapseDead faults on zeroed weights now collapse.
        let universe = FaultUniverse::standard(&net);
        let a = analyze(&net, &universe);
        assert!(a.summary.collapse_fraction >= 0.10, "{}", a.summary.collapse_fraction);
        assert!(a.collapsed.self_check(&net, &universe).is_empty());
    }

    #[test]
    fn prune_is_idempotent_on_zeroes() {
        let mut net = net();
        magnitude_prune(&mut net, 0.5);
        let second = magnitude_prune(&mut net, 0.5);
        assert_eq!(second, 0);
    }
}
