//! Soundness validation of fault collapsing: a full-universe campaign
//! and a collapsed-then-expanded campaign must report identical
//! per-fault detection. The property test samples random pruned
//! networks (both members of every equivalence class are actually
//! simulated by the full campaign); the exact test pins down a crafted
//! network where every collapse rule fires.

#![allow(clippy::float_cmp)] // campaigns are compared for exact equality

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use snn_analyze::{analyze, CollapseReason};
use snn_faults::{
    CancelToken, FaultModelConfig, FaultSimConfig, FaultSimulator, FaultUniverse, NullSink,
};
use snn_model::{DenseLayer, Layer, LifParams, Network, NetworkBuilder};
use snn_tensor::{Shape, Tensor};

fn binary_tests(rng: &mut StdRng, count: usize, steps: usize, features: usize) -> Vec<Tensor> {
    (0..count)
        .map(|_| {
            let data: Vec<f32> =
                (0..steps * features).map(|_| if rng.gen_bool(0.5) { 1.0 } else { 0.0 }).collect();
            Tensor::from_vec(Shape::d2(steps, features), data).unwrap()
        })
        .collect()
}

/// Runs both campaigns and asserts outcome equivalence. Returns the
/// collapse count so callers can assert yield.
fn assert_campaigns_agree(net: &Network, universe: &FaultUniverse, tests: &[Tensor]) -> usize {
    let analysis = analyze(net, universe);
    let errors = analysis.collapsed.self_check(net, universe);
    assert!(errors.is_empty(), "self-check: {errors:?}");

    let cfg = FaultSimConfig::default();
    let sim = FaultSimulator::new(net, cfg);
    let full = sim.detect(universe, universe.faults(), tests);
    let expanded = analysis
        .collapsed
        .detect_collapsed(net, universe, tests, cfg, &NullSink, &CancelToken::new())
        .expect("collapsed campaign");

    assert_eq!(full.per_fault.len(), expanded.per_fault.len());
    let saturated: std::collections::HashSet<usize> = analysis
        .collapsed
        .collapses()
        .iter()
        .filter(|c| matches!(c.reason, CollapseReason::SaturatedOutput { .. }))
        .map(|c| c.fault_id)
        .collect();
    for (f, e) in full.per_fault.iter().zip(&expanded.per_fault) {
        assert_eq!(f.fault_id, e.fault_id);
        assert_eq!(
            f.detected, e.detected,
            "fault {} detection differs (full {} vs expanded {})",
            f.fault_id, f.detected, e.detected
        );
        // Expanded distance is exact except for the saturated-output
        // rule, whose 1.0 is a provable lower bound, not the simulated
        // distance.
        if !saturated.contains(&f.fault_id) {
            assert_eq!(f.distance, e.distance, "fault {} distance differs", f.fault_id);
        } else {
            assert!(f.distance >= 1.0, "saturated-output fault {} distance", f.fault_id);
        }
    }
    assert_eq!(full.fault_coverage(), expanded.fault_coverage());
    analysis.collapsed.collapses().len()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Random pruned dense networks, optionally with the extended fault
    /// universe: full and collapsed campaigns agree fault-for-fault.
    #[test]
    fn collapsed_campaign_equals_full_campaign(
        seed in 0u64..200,
        inputs in 3usize..6,
        hidden in 4usize..8,
        outputs in 2usize..4,
        sparsity in 0.3f64..0.9,
        timing in proptest::bool::ANY,
        bitflips in proptest::bool::ANY,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut net = NetworkBuilder::new(inputs, LifParams::default())
            .dense(hidden)
            .dense(outputs)
            .build(&mut rng);
        snn_analyze::magnitude_prune(&mut net, sparsity);
        // Force neuron 0 of layer 0 dead (negative fan-in) on half the
        // cases so the dead-neuron rules get exercised, not just
        // identical-weight.
        if seed % 2 == 0 {
            for g in 0..inputs {
                let r = net.locate_weight(g);
                let w = net.weight(r);
                net.set_weight(r, -w.abs() - 0.1);
            }
        }
        let bits: &[u8] = if bitflips { &[0, 7] } else { &[] };
        let universe =
            FaultUniverse::with_config(&net, FaultModelConfig::default(), timing, bits);
        let tests = binary_tests(&mut rng, 2, 6, inputs);
        assert_campaigns_agree(&net, &universe, &tests);
    }
}

#[test]
fn exact_equality_on_crafted_network_with_every_rule() {
    let lif = LifParams::default(); // threshold 1.0, leak 0.9, refrac 2
    let l0 = Tensor::from_vec(
        Shape::d2(3, 3),
        vec![
            0.8, -0.4, 0.0, // neuron 0: one pruned weight
            -0.5, -0.2, -0.1, // neuron 1: provably dead (all-negative fan-in)
            2.0, 1.5, 0.3, // neuron 2: excitable
        ],
    )
    .unwrap();
    let l1 = Tensor::from_vec(
        Shape::d2(2, 3),
        vec![
            0.9, 5.0, 0.7, // weight 5.0 reads the dead neuron: silent source
            0.4, -3.0, 1.2,
        ],
    )
    .unwrap();
    let net = Network::new(
        Shape::d1(3),
        vec![Layer::Dense(DenseLayer::new(l0, lif)), Layer::Dense(DenseLayer::new(l1, lif))],
    );
    let universe = FaultUniverse::standard(&net);
    let analysis = analyze(&net, &universe);

    let rules: std::collections::HashSet<&'static str> =
        analysis.collapsed.collapses().iter().map(|c| c.reason.rule()).collect();
    assert!(rules.contains("identical-weight"), "{rules:?}");
    assert!(rules.contains("silent-source"), "{rules:?}");
    assert!(rules.contains("dead-target"), "{rules:?}");
    assert!(rules.contains("dead-neuron"), "{rules:?}");
    assert!(rules.contains("saturated-output"), "{rules:?}");

    let mut rng = StdRng::seed_from_u64(11);
    let mut tests = binary_tests(&mut rng, 1, 8, 3);
    tests.push(Tensor::from_vec(Shape::d2(8, 3), vec![1.0; 24]).unwrap());
    let collapsed = assert_campaigns_agree(&net, &universe, &tests);
    assert!(collapsed >= 10, "expected a rich collapse set, got {collapsed}");
}

#[test]
fn alias_rule_copies_outcomes_in_extended_universe() {
    // With bit-flip faults, a flip can reproduce another fault's exact
    // injected value at the same site (e.g. quantized 2^bit → 0 == the
    // SynapseDead value on some weights after pruning).
    let mut rng = StdRng::seed_from_u64(5);
    let mut net = NetworkBuilder::new(4, LifParams::default()).dense(5).dense(2).build(&mut rng);
    snn_analyze::magnitude_prune(&mut net, 0.6);
    let universe = FaultUniverse::with_config(
        &net,
        FaultModelConfig::default(),
        false,
        &[0, 1, 2, 3, 4, 5, 6, 7],
    );
    let tests = binary_tests(&mut rng, 2, 6, 4);
    assert_campaigns_agree(&net, &universe, &tests);
}

#[test]
fn expand_rejects_short_tests_when_saturated_output_collapses_exist() {
    let mut rng = StdRng::seed_from_u64(9);
    let net = NetworkBuilder::new(3, LifParams::default()).dense(2).build(&mut rng);
    let universe = FaultUniverse::standard(&net);
    let analysis = analyze(&net, &universe);
    assert!(analysis
        .collapsed
        .collapses()
        .iter()
        .any(|c| matches!(c.reason, CollapseReason::SaturatedOutput { .. })));
    let cfg = FaultSimConfig::default();
    let sim = FaultSimulator::new(&net, cfg);
    let tests = binary_tests(&mut rng, 1, 4, 3);
    let reps = sim.detect(&universe, analysis.collapsed.representatives(), &tests);
    let err = analysis.collapsed.expand(&reps.per_fault, 1).unwrap_err();
    assert_eq!(err, snn_analyze::ExpandError::TestTooShort { steps: 1 });
    assert!(analysis.collapsed.expand(&reps.per_fault, 4).is_ok());
}

#[test]
fn expand_requires_every_representative_outcome() {
    let mut rng = StdRng::seed_from_u64(2);
    let net = NetworkBuilder::new(3, LifParams::default()).dense(2).build(&mut rng);
    let universe = FaultUniverse::standard(&net);
    let analysis = analyze(&net, &universe);
    let err = analysis.collapsed.expand(&[], 8).unwrap_err();
    assert!(matches!(err, snn_analyze::ExpandError::MissingRepresentative { .. }));
}
