//! Acceptance gate: on the three example network topologies (built
//! exactly as `snn-mtfc new --sparsity 0.5` builds them), static
//! analysis must collapse at least 10% of the standard fault universe,
//! with every justification passing the soundness self-check.

use rand::rngs::StdRng;
use rand::SeedableRng;
use snn_analyze::{analyze, magnitude_prune};
use snn_faults::FaultUniverse;
use snn_model::{LifParams, Network, NetworkBuilder};

fn assert_min_collapse(name: &str, mut net: Network) {
    magnitude_prune(&mut net, 0.5);
    let universe = FaultUniverse::standard(&net);
    let a = analyze(&net, &universe);
    assert!(
        a.summary.collapse_fraction >= 0.10,
        "{name}: collapse fraction {:.4} below 0.10 ({} of {} faults)",
        a.summary.collapse_fraction,
        a.summary.collapsed,
        a.summary.faults
    );
    let errors = a.collapsed.self_check(&net, &universe);
    assert!(errors.is_empty(), "{name}: self-check failed: {errors:?}");
}

#[test]
fn nmnist_like_topology_collapses_ten_percent() {
    let mut rng = StdRng::seed_from_u64(42);
    let net = NetworkBuilder::new_spatial(2, 16, 16, LifParams::default())
        .avg_pool(2)
        .dense(48)
        .dense(10)
        .build(&mut rng);
    assert_min_collapse("nmnist-like", net);
}

#[test]
fn dvsgesture_like_topology_collapses_ten_percent() {
    let mut rng = StdRng::seed_from_u64(42);
    let net = NetworkBuilder::new_spatial(2, 24, 24, LifParams::default())
        .avg_pool(2)
        .conv(6, 5, 1, 2)
        .avg_pool(2)
        .dense(32)
        .dense(11)
        .build(&mut rng);
    assert_min_collapse("dvsgesture-like", net);
}

#[test]
fn shd_like_topology_collapses_ten_percent() {
    let mut rng = StdRng::seed_from_u64(42);
    let net =
        NetworkBuilder::new(140, LifParams::default()).recurrent(32).dense(20).build(&mut rng);
    assert_min_collapse("shd-like", net);
}
