use serde::{Deserialize, Serialize};
use snn_model::{Network, Trace};
use snn_tensor::Shape;
use std::time::Duration;

/// Per-layer neuron-activity map of one stimulus — the data behind the
/// paper's Fig. 8 grids (yellow = activated, purple = silent).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ActivityMap {
    /// Structured shape of each spiking layer (e.g. `[16×32×32]`).
    pub shapes: Vec<Shape>,
    /// Activation mask per spiking layer.
    pub active: Vec<Vec<bool>>,
}

impl ActivityMap {
    /// Total neurons across spiking layers.
    pub fn neuron_count(&self) -> usize {
        self.active.iter().map(|m| m.len()).sum()
    }

    /// Activated neurons.
    pub fn activated_count(&self) -> usize {
        self.active.iter().flat_map(|m| m.iter()).filter(|&&a| a).count()
    }

    /// Activated fraction in `[0, 1]`.
    pub fn fraction(&self) -> f64 {
        let n = self.neuron_count();
        if n == 0 {
            0.0
        } else {
            self.activated_count() as f64 / n as f64
        }
    }

    /// ASCII rendering of layer `idx` (spatial layers render channel 0;
    /// `#` = active, `.` = silent). Useful for terminal Fig. 8 snapshots.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn render_layer(&self, idx: usize) -> String {
        let shape = &self.shapes[idx];
        let mask = &self.active[idx];
        let dims = shape.dims();
        let (h, w) = match dims.len() {
            3 => (dims[1], dims[2]),
            _ => (1, mask.len()),
        };
        let mut out = String::with_capacity(h * (w + 1));
        for y in 0..h {
            for x in 0..w {
                out.push(if mask[y * w + x] { '#' } else { '.' });
            }
            out.push('\n');
        }
        out
    }
}

/// Splits a recorded span trace into the paper's runtime phases: summed
/// wall-clock of the `generate` spans, of the `faultsim.campaign` spans,
/// and of everything (the root spans) — the source for
/// [`TestMetrics::generation_runtime`], [`TestMetrics::fault_sim_runtime`]
/// and [`TestMetrics::total_runtime`].
pub fn runtimes_from_spans(records: &[snn_obs::SpanRecord]) -> (Duration, Duration, Duration) {
    let sum_named = |name: &str| -> Duration {
        records.iter().filter(|r| r.name == name).map(snn_obs::SpanRecord::duration).sum()
    };
    let total =
        records.iter().filter(|r| r.parent.is_none()).map(snn_obs::SpanRecord::duration).sum();
    (sum_named("generate"), sum_named("faultsim.campaign"), total)
}

/// Builds the activity map of a forward trace: a neuron counts as active
/// when it fired at least `min_spikes` times.
pub fn activity_map(net: &Network, trace: &Trace, min_spikes: f32) -> ActivityMap {
    let mut shapes = Vec::new();
    let mut active = Vec::new();
    for (idx, layer) in net.layers().iter().enumerate() {
        if !layer.is_spiking() {
            continue;
        }
        shapes.push(layer.out_shape());
        active
            .push(trace.layers[idx].spike_counts().into_iter().map(|c| c >= min_spikes).collect());
    }
    ActivityMap { shapes, active }
}

/// The efficiency metrics of the paper's Table III for one benchmark run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TestMetrics {
    /// Test generation wall-clock time.
    pub generation_runtime: Duration,
    /// Fault-simulation (coverage campaign) wall-clock time.
    pub fault_sim_runtime: Duration,
    /// Total wall-clock time of the run (generation + fault sim +
    /// everything between; at least the sum of the two phases).
    pub total_runtime: Duration,
    /// Test duration in ticks (Eq. 8).
    pub test_steps: usize,
    /// Test duration in dataset-sample lengths.
    pub duration_samples: f64,
    /// Activated-neuron percentage.
    pub activated_pct: f64,
    /// Fault coverage of critical neuron faults (%).
    pub fc_critical_neuron: f64,
    /// Fault coverage of critical synapse faults (%).
    pub fc_critical_synapse: f64,
    /// Fault coverage of benign neuron faults (%).
    pub fc_benign_neuron: f64,
    /// Fault coverage of benign synapse faults (%).
    pub fc_benign_synapse: f64,
    /// Maximum accuracy drop of an undetected critical neuron fault (%).
    pub max_drop_neuron_pct: f64,
    /// Maximum accuracy drop of an undetected critical synapse fault (%).
    pub max_drop_synapse_pct: f64,
}

impl std::fmt::Display for TestMetrics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "Test generation runtime     {:>10.2?}", self.generation_runtime)?;
        writeln!(f, "Fault simulation runtime    {:>10.2?}", self.fault_sim_runtime)?;
        writeln!(f, "Total runtime               {:>10.2?}", self.total_runtime)?;
        writeln!(f, "Test duration (ticks)       {:>10}", self.test_steps)?;
        writeln!(f, "Test duration (samples)     {:>10.2}", self.duration_samples)?;
        writeln!(f, "Activated neurons           {:>9.2}%", self.activated_pct)?;
        writeln!(f, "FC critical neuron faults   {:>9.2}%", self.fc_critical_neuron)?;
        writeln!(f, "FC critical synapse faults  {:>9.2}%", self.fc_critical_synapse)?;
        writeln!(f, "FC benign neuron faults     {:>9.2}%", self.fc_benign_neuron)?;
        writeln!(f, "FC benign synapse faults    {:>9.2}%", self.fc_benign_synapse)?;
        write!(
            f,
            "Max accuracy drop escapes   {:>6.2}% ({:.2}%)",
            self.max_drop_neuron_pct, self.max_drop_synapse_pct
        )
    }
}

#[cfg(test)]
#[allow(clippy::float_cmp)] // tests assert exact spike/gradient values
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use snn_model::{LifParams, NetworkBuilder, RecordOptions};
    use snn_tensor::Tensor;

    #[test]
    fn activity_map_counts_and_fraction() {
        let mut rng = StdRng::seed_from_u64(0);
        let net = NetworkBuilder::new(4, LifParams::default()).dense(6).dense(2).build(&mut rng);
        let input = snn_tensor::init::bernoulli(&mut rng, Shape::d2(30, 4), 0.8);
        let trace = net.forward(&input, RecordOptions::spikes_only());
        let map = activity_map(&net, &trace, 1.0);
        assert_eq!(map.neuron_count(), 8);
        assert!(map.fraction() <= 1.0);
        assert_eq!(
            map.activated_count(),
            trace.layers[0].activated_count() + trace.layers[1].activated_count()
        );
    }

    #[test]
    fn zero_input_gives_empty_map() {
        let mut rng = StdRng::seed_from_u64(1);
        let net = NetworkBuilder::new(3, LifParams::default()).dense(5).build(&mut rng);
        let trace = net.forward(&Tensor::zeros(Shape::d2(10, 3)), RecordOptions::spikes_only());
        let map = activity_map(&net, &trace, 1.0);
        assert_eq!(map.activated_count(), 0);
        assert_eq!(map.fraction(), 0.0);
    }

    #[test]
    fn render_produces_grid() {
        let mut rng = StdRng::seed_from_u64(2);
        let net = NetworkBuilder::new_spatial(1, 4, 4, LifParams::default())
            .conv(2, 3, 1, 1)
            .build(&mut rng);
        let input = snn_tensor::init::bernoulli(&mut rng, Shape::d2(20, 16), 0.9);
        let trace = net.forward(&input, RecordOptions::spikes_only());
        let map = activity_map(&net, &trace, 1.0);
        let grid = map.render_layer(0);
        let lines: Vec<&str> = grid.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines.iter().all(|l| l.len() == 4));
        assert!(grid.chars().all(|c| c == '#' || c == '.' || c == '\n'));
    }

    #[test]
    fn metrics_display_is_complete() {
        let m = TestMetrics {
            generation_runtime: Duration::from_secs(5),
            fault_sim_runtime: Duration::from_secs(2),
            total_runtime: Duration::from_secs(8),
            test_steps: 123,
            duration_samples: 2.05,
            activated_pct: 98.7,
            fc_critical_neuron: 99.97,
            fc_critical_synapse: 96.96,
            fc_benign_neuron: 47.26,
            fc_benign_synapse: 78.02,
            max_drop_neuron_pct: 0.1,
            max_drop_synapse_pct: 1.1,
        };
        let s = m.to_string();
        assert!(s.contains("99.97"));
        assert!(s.contains("Activated neurons"));
        assert!(s.contains("123"));
        assert!(s.contains("Test generation runtime"));
        assert!(s.contains("Fault simulation runtime"));
        assert!(s.contains("Total runtime"));
    }

    #[test]
    fn runtimes_from_spans_sums_phases() {
        let rec = |id, parent, name: &str, start_us, end_us| snn_obs::SpanRecord {
            id,
            parent,
            name: name.to_string(),
            start_us,
            end_us,
            attrs: Vec::new(),
        };
        let spans = vec![
            rec(1, None, "generate", 0, 4_000_000),
            rec(2, Some(1), "stage1", 0, 3_000_000),
            rec(3, None, "faultsim.campaign", 4_000_000, 6_500_000),
        ];
        let (generation, fault_sim, total) = runtimes_from_spans(&spans);
        assert_eq!(generation, Duration::from_secs(4));
        assert_eq!(fault_sim, Duration::from_millis(2500));
        assert_eq!(total, Duration::from_millis(6500));
    }
}
