//! Post-generation test compaction.
//!
//! The generator's outer loop is greedy over iterations: an early chunk's
//! activation contribution may later be subsumed by chunks produced for
//! harder target sets. Since total test time is the paper's headline
//! metric (Eq. 8 counts every chunk *twice* — stimulus plus reset gap),
//! pruning redundant chunks directly shortens the test. Two compactors:
//!
//! * [`compact_by_activation`] — drops chunks whose activated-neuron set
//!   is covered by the union of the retained chunks. Cheap (one forward
//!   pass per chunk, no fault simulation) and conservative: neuron
//!   activation is the proxy the generation loop itself optimizes.
//! * [`compact_by_coverage`] — drops chunks whose *detected-fault* set is
//!   covered by the retained chunks, at the cost of one fault-simulation
//!   campaign per chunk. Exact with respect to the final metric.
//!
//! Both preserve chunk order (the test still runs oldest-first) and never
//! produce an empty test.

use crate::GeneratedTest;
use snn_faults::{Fault, FaultSimulator, FaultUniverse};
use snn_model::{Network, RecordOptions};

/// Per-chunk set-cover pruning: `sets[j]` is the element set contributed
/// by chunk `j`; returns the kept chunk indices (in order). A chunk is
/// dropped when every element it contributes is also contributed by some
/// retained chunk. Chunks are considered for removal in ascending
/// contribution-size order, so small chunks go first.
fn prune_covered(sets: &[Vec<bool>]) -> Vec<usize> {
    let d = sets.len();
    if d <= 1 {
        return (0..d).collect();
    }
    let n = sets.first().map_or(0, |s| s.len());
    let mut kept: Vec<bool> = vec![true; d];
    let mut order: Vec<usize> = (0..d).collect();
    order.sort_by_key(|&j| sets[j].iter().filter(|&&b| b).count());
    for &candidate in &order {
        // Union of all other kept chunks.
        let mut covered = vec![false; n];
        for (j, set) in sets.iter().enumerate() {
            if j == candidate || !kept[j] {
                continue;
            }
            for (c, &s) in covered.iter_mut().zip(set.iter()) {
                *c |= s;
            }
        }
        let redundant =
            sets[candidate].iter().zip(covered.iter()).all(|(&own, &other)| !own || other);
        // Keep at least one chunk even if everything is redundant.
        if redundant && kept.iter().filter(|&&k| k).count() > 1 {
            kept[candidate] = false;
        }
    }
    (0..d).filter(|&j| kept[j]).collect()
}

fn rebuild(test: &GeneratedTest, keep: &[usize]) -> GeneratedTest {
    let chunks = keep.iter().map(|&j| test.chunks[j].clone()).collect();
    let mut out = GeneratedTest::from_chunks(chunks, test.input_features, test.activated.clone());
    out.runtime = test.runtime;
    out.iterations = keep.iter().filter_map(|&j| test.iterations.get(j).cloned()).collect();
    out
}

/// Removes chunks whose activated-neuron set (spike count ≥ `min_spikes`)
/// is covered by the remaining chunks. Returns the compacted test and the
/// indices of the retained chunks.
///
/// # Panics
///
/// Panics if the test has no chunks or chunk shapes mismatch `net`.
///
/// # Example
///
/// ```
/// use rand::SeedableRng;
/// use snn_model::{LifParams, NetworkBuilder};
/// use snn_testgen::{compact_by_activation, GeneratedTest};
/// use snn_tensor::{Shape, Tensor};
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let net = NetworkBuilder::new(4, LifParams::default()).dense(3).build(&mut rng);
/// // Duplicate chunks: compaction must drop one.
/// let chunk = Tensor::full(Shape::d2(10, 4), 1.0);
/// let test = GeneratedTest::from_chunks(vec![chunk.clone(), chunk], 4, vec![]);
/// let (compact, kept) = compact_by_activation(&net, &test, 1.0);
/// assert_eq!(kept.len(), 1);
/// assert!(compact.test_steps() < test.test_steps());
/// ```
pub fn compact_by_activation(
    net: &Network,
    test: &GeneratedTest,
    min_spikes: f32,
) -> (GeneratedTest, Vec<usize>) {
    assert!(!test.chunks.is_empty(), "cannot compact an empty test");
    let sets: Vec<Vec<bool>> = test
        .chunks
        .iter()
        .map(|chunk| {
            let trace = net.forward(chunk, RecordOptions::spikes_only());
            let mut mask = Vec::with_capacity(net.neuron_count());
            for (idx, layer) in net.layers().iter().enumerate() {
                if !layer.is_spiking() {
                    continue;
                }
                mask.extend(trace.layers[idx].spike_counts().into_iter().map(|c| c >= min_spikes));
            }
            mask
        })
        .collect();
    let keep = prune_covered(&sets);
    (rebuild(test, &keep), keep)
}

/// Removes chunks whose detected-fault set is covered by the remaining
/// chunks, using one fault-simulation campaign per chunk over `faults`.
/// Returns the compacted test and the retained chunk indices.
///
/// # Panics
///
/// Panics if the test has no chunks.
pub fn compact_by_coverage(
    universe: &FaultUniverse,
    faults: &[Fault],
    test: &GeneratedTest,
    sim: &FaultSimulator<'_>,
) -> (GeneratedTest, Vec<usize>) {
    assert!(!test.chunks.is_empty(), "cannot compact an empty test");
    let sets: Vec<Vec<bool>> = test
        .chunks
        .iter()
        .map(|chunk| {
            sim.detect(universe, faults, std::slice::from_ref(chunk))
                .per_fault
                .into_iter()
                .map(|o| o.detected)
                .collect()
        })
        .collect();
    let keep = prune_covered(&sets);
    (rebuild(test, &keep), keep)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use snn_faults::FaultSimConfig;
    use snn_model::{LifParams, NetworkBuilder};
    use snn_tensor::{Shape, Tensor};

    fn net(seed: u64) -> Network {
        let mut rng = StdRng::seed_from_u64(seed);
        NetworkBuilder::new(6, LifParams { refrac_steps: 0, ..LifParams::default() })
            .dense(8)
            .dense(3)
            .build(&mut rng)
    }

    #[test]
    fn prune_keeps_complementary_sets() {
        let sets =
            vec![vec![true, false, false], vec![false, true, false], vec![false, false, true]];
        assert_eq!(prune_covered(&sets), vec![0, 1, 2]);
    }

    #[test]
    fn prune_drops_subsets_and_duplicates() {
        let sets = vec![
            vec![true, true, false],
            vec![true, false, false], // subset of 0
            vec![true, true, false],  // duplicate of 0
            vec![false, false, true],
        ];
        let kept = prune_covered(&sets);
        assert!(kept.contains(&3));
        // exactly one of {0, 2} survives, 1 never does
        assert!(!kept.contains(&1));
        assert_eq!(kept.iter().filter(|&&j| j == 0 || j == 2).count(), 1);
    }

    #[test]
    fn prune_never_empties_the_test() {
        let sets = vec![vec![false, false], vec![false, false]];
        let kept = prune_covered(&sets);
        assert_eq!(kept.len(), 1);
    }

    #[test]
    fn activation_compaction_preserves_total_activation() {
        let n = net(1);
        let mut rng = StdRng::seed_from_u64(2);
        let chunks: Vec<Tensor> = (0..4)
            .map(|i| snn_tensor::init::bernoulli(&mut rng, Shape::d2(15, 6), 0.2 + 0.15 * i as f32))
            .collect();
        let test = GeneratedTest::from_chunks(chunks, 6, vec![]);
        let (compact, kept) = compact_by_activation(&n, &test, 1.0);
        assert!(!kept.is_empty());
        assert!(compact.test_steps() <= test.test_steps());

        // Union of activation over kept chunks equals union over all.
        let union = |t: &GeneratedTest| -> Vec<bool> {
            let mut u = vec![false; n.neuron_count()];
            for chunk in &t.chunks {
                let trace = n.forward(chunk, RecordOptions::spikes_only());
                let mut off = 0;
                for (idx, layer) in n.layers().iter().enumerate() {
                    if !layer.is_spiking() {
                        continue;
                    }
                    for (k, c) in trace.layers[idx].spike_counts().into_iter().enumerate() {
                        if c >= 1.0 {
                            u[off + k] = true;
                        }
                    }
                    off += layer.out_features();
                }
            }
            u
        };
        assert_eq!(union(&compact), union(&test));
    }

    #[test]
    fn coverage_compaction_preserves_detected_set() {
        let n = net(3);
        let universe = FaultUniverse::standard(&n);
        let mut rng = StdRng::seed_from_u64(4);
        let chunks: Vec<Tensor> =
            (0..3).map(|_| snn_tensor::init::bernoulli(&mut rng, Shape::d2(12, 6), 0.4)).collect();
        let test = GeneratedTest::from_chunks(chunks, 6, vec![]);
        let sim =
            FaultSimulator::new(&n, FaultSimConfig { threads: 1, ..FaultSimConfig::default() });
        let (compact, kept) = compact_by_coverage(&universe, universe.faults(), &test, &sim);
        assert!(!kept.is_empty());

        let detect = |t: &GeneratedTest| {
            sim.detect(&universe, universe.faults(), &t.chunks)
                .per_fault
                .into_iter()
                .map(|o| o.detected)
                .collect::<Vec<_>>()
        };
        let full = detect(&test);
        let pruned = detect(&compact);
        for (i, (&f, &p)) in full.iter().zip(pruned.iter()).enumerate() {
            if f {
                assert!(p, "fault {i} detection lost by compaction");
            }
        }
    }

    #[test]
    #[should_panic(expected = "empty test")]
    fn compaction_rejects_empty_tests() {
        let n = net(5);
        let test = GeneratedTest::from_chunks(vec![], 6, vec![]);
        let _ = compact_by_activation(&n, &test, 1.0);
    }
}
