use serde::{Deserialize, Serialize};
use snn_tensor::{Shape, Tensor};
use std::time::Duration;

/// Statistics of one outer-loop iteration of the generator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IterationStats {
    /// Duration (ticks) of the produced chunk.
    pub steps: usize,
    /// Best stage-1 scalarized loss.
    pub stage1_loss: f32,
    /// Hidden spike count after stage 2.
    pub stage2_hidden_spikes: f32,
    /// Neurons newly activated by this chunk.
    pub newly_activated: usize,
    /// Number of duration growths (`β` escalations) this iteration needed.
    pub growths: usize,
}

/// The final optimized test stimulus: chunks `I_in^j` interleaved with
/// equal-length zero (reset) inputs — the paper's Eq. (7).
///
/// # Example
///
/// ```
/// use snn_testgen::GeneratedTest;
/// use snn_tensor::{Shape, Tensor};
///
/// let chunk = Tensor::full(Shape::d2(4, 3), 1.0);
/// let test = GeneratedTest::from_chunks(vec![chunk.clone(), chunk], 3, vec![true; 5]);
/// // Eq. (8): 2·4 (first chunk + reset) + 4 (last chunk) = 12 ticks
/// assert_eq!(test.test_steps(), 12);
/// let full = test.assembled();
/// assert_eq!(full.shape().dims(), &[12, 3]);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GeneratedTest {
    /// The optimized input chunks, in generation order.
    pub chunks: Vec<Tensor>,
    /// Input features per tick.
    pub input_features: usize,
    /// Per-global-neuron activation achieved by the full test.
    pub activated: Vec<bool>,
    /// Wall-clock test generation time.
    pub runtime: Duration,
    /// Per-iteration statistics.
    pub iterations: Vec<IterationStats>,
}

impl GeneratedTest {
    /// Builds a test from raw chunks (used by the generator and tests).
    ///
    /// # Panics
    ///
    /// Panics if a chunk is not `[T × input_features]`.
    pub fn from_chunks(chunks: Vec<Tensor>, input_features: usize, activated: Vec<bool>) -> Self {
        for (j, c) in chunks.iter().enumerate() {
            assert_eq!(c.shape().rank(), 2, "chunk {j} must be rank-2");
            assert_eq!(c.shape().dim(1), input_features, "chunk {j} feature count mismatch");
        }
        Self { chunks, input_features, activated, runtime: Duration::ZERO, iterations: Vec::new() }
    }

    /// Total test duration in ticks, Eq. (8):
    /// `Σ_{j<d} 2·T_j + T_d` (each chunk except the last is followed by an
    /// equal-length zero input that resets all membranes).
    pub fn test_steps(&self) -> usize {
        let d = self.chunks.len();
        self.chunks
            .iter()
            .enumerate()
            .map(|(j, c)| {
                let t = c.shape().dim(0);
                if j + 1 < d {
                    2 * t
                } else {
                    t
                }
            })
            .sum()
    }

    /// Assembles the full stimulus tensor of Eq. (7):
    /// `{I¹, 0¹, I², 0², …, I^d}`.
    pub fn assembled(&self) -> Tensor {
        let steps = self.test_steps();
        let mut out = Tensor::zeros(Shape::d2(steps, self.input_features));
        let data = out.as_mut_slice();
        let mut row = 0usize;
        let d = self.chunks.len();
        for (j, c) in self.chunks.iter().enumerate() {
            let t = c.shape().dim(0);
            let src = c.as_slice();
            data[row * self.input_features..(row + t) * self.input_features].copy_from_slice(src);
            row += t;
            if j + 1 < d {
                row += t; // zero gap — buffer is already zeroed
            }
        }
        out
    }

    /// Test duration expressed in dataset-sample lengths (the paper's
    /// "test duration (samples)" metric).
    ///
    /// # Panics
    ///
    /// Panics if `sample_steps` is zero.
    pub fn duration_samples(&self, sample_steps: usize) -> f64 {
        assert!(sample_steps > 0, "sample length must be positive");
        self.test_steps() as f64 / sample_steps as f64
    }

    /// Number of activated neurons.
    pub fn activated_count(&self) -> usize {
        self.activated.iter().filter(|&&a| a).count()
    }

    /// Fraction of activated neurons in `[0, 1]`.
    pub fn activated_fraction(&self) -> f64 {
        if self.activated.is_empty() {
            return 0.0;
        }
        self.activated_count() as f64 / self.activated.len() as f64
    }

    /// Serializes the stimulus as a compact event list
    /// (`tick feature` per line, `#`-prefixed header), suitable for
    /// storing on-chip test ROMs or diffing runs.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from `w`.
    pub fn write_events(&self, w: &mut impl std::io::Write) -> std::io::Result<()> {
        let full = self.assembled();
        writeln!(
            w,
            "# snn-mtfc test: {} ticks x {} features, {} chunks",
            self.test_steps(),
            self.input_features,
            self.chunks.len()
        )?;
        let n = self.input_features;
        for t in 0..full.shape().dim(0) {
            for f in 0..n {
                // snn-lint: allow(L-FLOATEQ): spike tensors hold exact 0.0/1.0 values by construction
                if full[[t, f]] != 0.0 {
                    writeln!(w, "{t} {f}")?;
                }
            }
        }
        Ok(())
    }
}

/// Parses the event-list format written by [`GeneratedTest::write_events`]
/// back into the assembled stimulus tensor (`[T × features]`) — the
/// decoder an in-field self-test controller would run against the test
/// ROM.
///
/// # Errors
///
/// Returns a descriptive error when the header is missing/malformed or an
/// event lies outside the declared volume.
pub fn parse_events(text: &str) -> Result<Tensor, String> {
    let mut lines = text.lines();
    let header = lines.next().ok_or_else(|| "empty input".to_string())?;
    // header: "# snn-mtfc test: <T> ticks x <N> features, <d> chunks"
    let nums: Vec<usize> = header
        .split(|c: char| !c.is_ascii_digit())
        .filter(|s| !s.is_empty())
        .filter_map(|s| s.parse().ok())
        .collect();
    if !header.starts_with("# snn-mtfc test:") || nums.len() < 2 {
        return Err(format!("malformed header: {header:?}"));
    }
    let (steps, features) = (nums[0], nums[1]);
    let mut out = Tensor::zeros(Shape::d2(steps, features));
    for (lineno, line) in lines.enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut it = line.split_whitespace();
        let parse = |tok: Option<&str>| -> Result<usize, String> {
            tok.ok_or_else(|| format!("line {}: missing field", lineno + 2))?
                .parse()
                .map_err(|e| format!("line {}: {e}", lineno + 2))
        };
        let t = parse(it.next())?;
        let f = parse(it.next())?;
        if t >= steps || f >= features {
            return Err(format!(
                "line {}: event ({t}, {f}) outside {steps}×{features}",
                lineno + 2
            ));
        }
        out[[t, f]] = 1.0;
    }
    Ok(out)
}

#[cfg(test)]
#[allow(clippy::float_cmp)] // tests assert exact spike/gradient values
mod tests {
    use super::*;

    fn chunk(t: usize, n: usize, fill: f32) -> Tensor {
        Tensor::full(Shape::d2(t, n), fill)
    }

    #[test]
    fn eq8_duration_single_chunk() {
        let test = GeneratedTest::from_chunks(vec![chunk(7, 2, 1.0)], 2, vec![]);
        assert_eq!(test.test_steps(), 7); // no reset gap after the only chunk
    }

    #[test]
    fn eq8_duration_multi_chunk_with_variable_lengths() {
        let test = GeneratedTest::from_chunks(
            vec![chunk(4, 2, 1.0), chunk(6, 2, 1.0), chunk(3, 2, 1.0)],
            2,
            vec![],
        );
        // 2·4 + 2·6 + 3 = 23
        assert_eq!(test.test_steps(), 23);
    }

    #[test]
    fn assembled_places_zero_gaps() {
        let test = GeneratedTest::from_chunks(vec![chunk(2, 3, 1.0), chunk(2, 3, 1.0)], 3, vec![]);
        let full = test.assembled();
        assert_eq!(full.shape().dims(), &[6, 3]);
        // rows 0-1: ones; rows 2-3: zero gap; rows 4-5: ones
        for f in 0..3 {
            assert_eq!(full[[0, f]], 1.0);
            assert_eq!(full[[2, f]], 0.0);
            assert_eq!(full[[3, f]], 0.0);
            assert_eq!(full[[5, f]], 1.0);
        }
    }

    #[test]
    fn duration_in_samples() {
        let test = GeneratedTest::from_chunks(vec![chunk(30, 1, 0.0)], 1, vec![]);
        assert!((test.duration_samples(12) - 2.5).abs() < 1e-12);
    }

    #[test]
    fn activation_accounting() {
        let test =
            GeneratedTest::from_chunks(vec![chunk(1, 1, 0.0)], 1, vec![true, false, true, true]);
        assert_eq!(test.activated_count(), 3);
        assert!((test.activated_fraction() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn write_events_round_trip_content() {
        let mut c = Tensor::zeros(Shape::d2(2, 2));
        c[[1, 0]] = 1.0;
        let test = GeneratedTest::from_chunks(vec![c], 2, vec![]);
        let mut buf = Vec::new();
        test.write_events(&mut buf).unwrap();
        let s = String::from_utf8(buf).unwrap();
        assert!(s.starts_with("# snn-mtfc test: 2 ticks x 2 features"));
        assert!(s.lines().any(|l| l == "1 0"));
        assert_eq!(s.lines().filter(|l| !l.starts_with('#')).count(), 1);
    }

    #[test]
    #[should_panic(expected = "feature count mismatch")]
    fn from_chunks_validates_features() {
        let _ = GeneratedTest::from_chunks(vec![chunk(2, 3, 0.0)], 4, vec![]);
    }

    #[test]
    fn write_then_parse_round_trips_the_stimulus() {
        let mut c1 = Tensor::zeros(Shape::d2(3, 4));
        c1[[0, 1]] = 1.0;
        c1[[2, 3]] = 1.0;
        let mut c2 = Tensor::zeros(Shape::d2(2, 4));
        c2[[1, 0]] = 1.0;
        let test = GeneratedTest::from_chunks(vec![c1, c2], 4, vec![]);
        let mut buf = Vec::new();
        test.write_events(&mut buf).unwrap();
        let parsed = parse_events(std::str::from_utf8(&buf).unwrap()).unwrap();
        assert_eq!(parsed, test.assembled());
    }

    #[test]
    fn parse_rejects_bad_input() {
        assert!(parse_events("").is_err());
        assert!(parse_events("not a header\n0 0\n").is_err());
        assert!(parse_events("# snn-mtfc test: 2 ticks x 2 features, 1 chunks\n5 0\n").is_err());
        assert!(parse_events("# snn-mtfc test: 2 ticks x 2 features, 1 chunks\n0\n").is_err());
        assert!(parse_events("# snn-mtfc test: 2 ticks x 2 features, 1 chunks\nx y\n").is_err());
    }

    #[test]
    fn parse_tolerates_comments_and_blank_lines() {
        let text = "# snn-mtfc test: 2 ticks x 2 features, 1 chunks\n\n# comment\n1 1\n";
        let t = parse_events(text).unwrap();
        assert_eq!(t.sum(), 1.0);
        assert_eq!(t[[1, 1]], 1.0);
    }

    proptest::proptest! {
        /// Eq. 8 invariant for arbitrary chunk configurations: assembled
        /// length equals Σ 2·Tⱼ + T_d, and the assembled tensor restricted
        /// to chunk windows equals the chunks, zero elsewhere.
        #[test]
        fn assembly_invariants(
            lens in proptest::collection::vec(1usize..6, 1..5),
            features in 1usize..4,
        ) {
            let chunks: Vec<Tensor> = lens
                .iter()
                .map(|&t| Tensor::full(Shape::d2(t, features), 1.0))
                .collect();
            let test = GeneratedTest::from_chunks(chunks, features, vec![]);
            let expect: usize =
                lens.iter().take(lens.len() - 1).map(|t| 2 * t).sum::<usize>()
                + lens.last().unwrap();
            proptest::prop_assert_eq!(test.test_steps(), expect);

            let full = test.assembled();
            let total_ones: f32 = lens.iter().map(|&t| (t * features) as f32).sum();
            proptest::prop_assert_eq!(full.sum(), total_ones);
            proptest::prop_assert!(full.is_binary());
        }
    }
}
