use crate::losses::{self, TargetMask};
use crate::stage::{init_logits, Stage, StageConfig, StageOutcome};
use crate::testset::{GeneratedTest, IterationStats};
use rand::Rng;
use snn_faults::progress::{CancelToken, Cancelled, NullSink, Progress, ProgressSink};
use snn_model::{optim::Schedule, InjectedGrads, Network, RecordOptions, Surrogate};
use std::time::Duration;

/// Configuration of the full test-generation algorithm (paper Fig. 2 and
/// Section V-C).
#[derive(Debug, Clone, PartialEq)]
pub struct TestGenConfig {
    /// Stage-1 optimization steps per iteration (`N¹_steps`; paper: 2000).
    pub stage1_steps: usize,
    /// Stage-2 optimization steps (`N²_steps`; paper: `N¹_steps / 2`).
    pub stage2_steps: usize,
    /// Learning-rate schedule (paper: Adam from 0.1, annealed).
    pub lr: Schedule,
    /// Gumbel temperature schedule (paper: annealed, maximum 0.9).
    pub tau: Schedule,
    /// Surrogate spike derivative.
    pub surrogate: Surrogate,
    /// Stochastic (`true`, paper) or deterministic relaxation sampling.
    pub stochastic: bool,
    /// Initial input duration in ticks. `None` calibrates `T_in,min` by
    /// minimizing `L1` alone, as in Section V-C.
    pub t_in_min: Option<usize>,
    /// `TD_min = T_in / td_min_divisor` (paper: divisor 10).
    pub td_min_divisor: f32,
    /// Input-duration increment `β` in ticks (paper: 10 ms; doubles on
    /// every growth).
    pub beta: usize,
    /// Maximum duration growths per iteration before the chunk is accepted
    /// as-is.
    pub max_growths: usize,
    /// Wall-clock budget (`t_limit`; paper: 3 h).
    pub t_limit: Duration,
    /// Hard cap on outer iterations (safety net for tiny budgets).
    pub max_iterations: usize,
    /// Spike-count threshold for considering a neuron "activated" when
    /// updating `𝒩_A` (the paper uses `|O^{ℓi}| > 1`).
    pub activation_min_spikes: f32,
    /// Output-preservation weight `μ` in stage 2.
    pub mu: f32,
    /// Run stage 2 (hidden-activity pruning) — ablation toggle.
    pub use_stage2: bool,
    /// Include `L3` (temporal diversity) in stage 1 — ablation toggle.
    pub use_l3: bool,
    /// Include `L4` (contribution variance) in stage 1 — ablation toggle.
    pub use_l4: bool,
    /// Include the `L6` saturation-margin extension loss (off =
    /// paper-faithful; see `losses::l6_saturation_margin`).
    pub use_l6: bool,
}

impl TestGenConfig {
    /// Paper-faithful parameters (Section V-C). Intended for paper-scale
    /// runs; expect hours of wall clock.
    pub fn paper() -> Self {
        Self {
            stage1_steps: 2000,
            stage2_steps: 1000,
            lr: Schedule::Cosine { initial: 0.1, min: 0.005, period: 2000 },
            tau: Schedule::Cosine { initial: 0.9, min: 0.2, period: 2000 },
            surrogate: Surrogate::default(),
            stochastic: true,
            t_in_min: None,
            td_min_divisor: 10.0,
            beta: 10,
            max_growths: 4,
            t_limit: Duration::from_secs(3 * 3600),
            max_iterations: 64,
            activation_min_spikes: 2.0,
            mu: 4.0,
            use_stage2: true,
            use_l3: true,
            use_l4: true,
            use_l6: false,
        }
    }

    /// Scaled-down parameters for repro-scale benchmarks: same structure,
    /// two orders of magnitude fewer optimizer steps, and an iteration cap
    /// keeping the assembled test within the ~10-sample-lengths regime the
    /// paper reports.
    pub fn repro() -> Self {
        Self {
            stage1_steps: 250,
            stage2_steps: 125,
            lr: Schedule::Cosine { initial: 0.1, min: 0.01, period: 250 },
            tau: Schedule::Cosine { initial: 0.9, min: 0.3, period: 250 },
            t_limit: Duration::from_secs(900),
            max_iterations: 10,
            max_growths: 2,
            ..Self::paper()
        }
    }

    /// Minimal parameters for unit tests and doc examples (seconds).
    pub fn fast() -> Self {
        Self {
            stage1_steps: 60,
            stage2_steps: 30,
            lr: Schedule::Constant(0.08),
            tau: Schedule::Constant(0.7),
            t_in_min: Some(20),
            t_limit: Duration::from_secs(30),
            max_iterations: 4,
            max_growths: 1,
            activation_min_spikes: 1.0,
            ..Self::paper()
        }
    }
}

/// Calibrates the minimum input duration `T_in,min`: the shortest duration
/// (growing from `start` by doubling) at which optimizing `L1` alone makes
/// every output neuron fire (Section V-C).
///
/// Returns the calibrated duration, capped at `max`.
pub fn calibrate_t_in_min(
    net: &Network,
    rng: &mut impl Rng,
    cfg: &TestGenConfig,
    start: usize,
    max: usize,
) -> usize {
    let mut t = start.max(1);
    let num_layers = net.layers().len();
    loop {
        // Short L1-only optimization at duration t.
        let mut logits = init_logits(rng, t, net.input_features());
        let mut adam = snn_model::optim::Adam::new(logits.shape().clone());
        let steps = (cfg.stage1_steps / 4).max(10);
        let mut satisfied = false;
        for k in 0..steps {
            let sample = if cfg.stochastic {
                snn_model::gumbel::GumbelSample::stochastic(rng, &logits, cfg.tau.at(k))
            } else {
                snn_model::gumbel::GumbelSample::deterministic(&logits, cfg.tau.at(k))
            };
            let trace = net.forward(&sample.binary, RecordOptions::full());
            let mut inj = InjectedGrads::none(num_layers);
            let l1 = losses::l1_output_activation(net, &trace, &mut inj);
            // snn-lint: allow(L-FLOATEQ): L1 sums exact 0.0/1.0 spike values, so an exactly-zero loss is meaningful
            if l1 == 0.0 {
                satisfied = true;
                break;
            }
            let grads = net.backward(&sample.binary, &trace, &inj, cfg.surrogate, false);
            let g = sample.grad_logits(&grads.input);
            adam.step(&mut logits, &g, cfg.lr.at(k));
        }
        if satisfied || t >= max {
            return t.min(max);
        }
        t *= 2;
    }
}

/// The outer test-generation loop of the paper's Fig. 2.
///
/// Each iteration optimizes one input chunk against the still-unactivated
/// target set `𝒩_T = 𝒩 \ 𝒩_A` (stage 1), prunes its excess hidden
/// activity (stage 2), and grows the chunk duration by a doubling `β` if
/// no new neurons were activated. Generation ends at full activation, the
/// iteration cap, or the wall-clock limit.
#[derive(Debug)]
pub struct TestGenerator<'a> {
    net: &'a Network,
    cfg: TestGenConfig,
    excluded: Option<Vec<Vec<bool>>>,
}

impl<'a> TestGenerator<'a> {
    /// Creates a generator over a trained network.
    pub fn new(net: &'a Network, cfg: TestGenConfig) -> Self {
        Self { net, cfg, excluded: None }
    }

    /// The configuration in use.
    pub fn config(&self) -> &TestGenConfig {
        &self.cfg
    }

    /// Excludes neurons from the target set `𝒩_T` — typically neurons
    /// `snn-analyze` proves can never fire, which stage 1 would otherwise
    /// chase for the whole budget. The mask is indexed like the network's
    /// layers: one entry per layer, empty for non-spiking layers (the
    /// shape `IntervalAnalysis::dead_mask` produces). Excluded neurons
    /// are never optimization targets and do not gate termination, but
    /// still count as activated if a chunk happens to fire them, so the
    /// reported stats stay honest.
    ///
    /// # Panics
    ///
    /// Panics if the mask shape does not match the network's layers.
    pub fn with_excluded(mut self, excluded: Vec<Vec<bool>>) -> Self {
        assert_eq!(
            excluded.len(),
            self.net.layers().len(),
            "excluded mask needs one entry per layer"
        );
        for (idx, (layer, m)) in self.net.layers().iter().zip(&excluded).enumerate() {
            let want = if layer.is_spiking() { layer.out_features() } else { 0 };
            assert_eq!(m.len(), want, "excluded mask for layer {idx} has the wrong length");
        }
        self.excluded = Some(excluded);
        self
    }

    /// Runs the full algorithm, producing the compact test stimulus.
    pub fn generate(&self, rng: &mut impl Rng) -> GeneratedTest {
        self.generate_with(rng, &NullSink, &CancelToken::new())
            // snn-lint: allow(L-PANIC): a fresh private token is never cancelled, so Err is unreachable
            .expect("fresh token is never cancelled")
    }

    /// [`generate`](Self::generate) with progress streaming and cooperative
    /// cancellation: emits a [`Progress::Iteration`] event after every
    /// committed chunk and polls `cancel` at iteration and duration-growth
    /// boundaries, returning `Err(Cancelled)` once it trips (partial chunks
    /// are discarded).
    pub fn generate_with(
        &self,
        rng: &mut impl Rng,
        sink: &dyn ProgressSink,
        cancel: &CancelToken,
    ) -> Result<GeneratedTest, Cancelled> {
        // Wall-clock budget: elapsed time gates the iteration count, never
        // the stimulus values. Reads go through the snn-obs clock so the
        // only raw `Instant::now()` site in the workspace is its RealClock.
        let mut root_span = snn_obs::span!("generate");
        let started = snn_obs::clock::monotonic();
        let elapsed = || snn_obs::clock::monotonic().saturating_sub(started);
        let cfg = &self.cfg;
        let t_in_min = cfg.t_in_min.unwrap_or_else(|| {
            let _span = snn_obs::span!("generate.calibrate");
            calibrate_t_in_min(self.net, rng, cfg, 8, 512)
        });

        let layout = self.net.neuron_layout();
        let num_layers = self.net.layers().len();
        // Per-layer activation bookkeeping (𝒩_A).
        let mut activated: Vec<Vec<bool>> = self
            .net
            .layers()
            .iter()
            .map(|l| if l.is_spiking() { vec![false; l.out_features()] } else { Vec::new() })
            .collect();
        let total_neurons: usize = layout.iter().map(|&(_, n)| n).sum();
        // Neurons excluded from 𝒩_T (all-false when no mask was given).
        let excluded: Vec<Vec<bool>> = self.excluded.clone().unwrap_or_else(|| activated.clone());

        let mut chunks = Vec::new();
        let mut iterations = Vec::new();

        for iter in 0..cfg.max_iterations {
            cancel.check()?;
            let _iteration_span = snn_obs::span!("generate.iteration");
            // Termination counts only targetable neurons: excluded ones
            // can never be forced to fire, so waiting on them would burn
            // the whole budget.
            let remaining: usize = activated
                .iter()
                .zip(&excluded)
                .flat_map(|(m, e)| m.iter().zip(e.iter()))
                .filter(|&(&a, &e)| !a && !e)
                .count();
            if remaining == 0 || elapsed() >= cfg.t_limit {
                break;
            }

            // Target set: everything not yet activated and not excluded.
            let mask: TargetMask = activated
                .iter()
                .zip(&excluded)
                .enumerate()
                .map(|(idx, (m, e))| {
                    if self.net.layers()[idx].is_spiking() {
                        Some(m.iter().zip(e.iter()).map(|(&a, &ex)| !a && !ex).collect())
                    } else {
                        None
                    }
                })
                .collect();

            let mut t_cur = t_in_min;
            let mut beta = cfg.beta;
            let mut growths = 0usize;
            let (outcome, newly) = loop {
                cancel.check()?;
                let stage_cfg = StageConfig {
                    steps: cfg.stage1_steps,
                    lr: cfg.lr,
                    tau: cfg.tau,
                    surrogate: cfg.surrogate,
                    stochastic: cfg.stochastic,
                    // snn-lint: allow(L-CAST): simulation durations stay far below f32's 2^24 exact-integer limit
                    td_min: (t_cur as f32 / cfg.td_min_divisor).max(1.0),
                    mu: cfg.mu,
                    use_l3: cfg.use_l3,
                    use_l4: cfg.use_l4,
                    use_l6: cfg.use_l6,
                    ..StageConfig::default()
                };
                let stage = Stage::new(self.net, stage_cfg.clone());
                let logits = init_logits(rng, t_cur, self.net.input_features());
                let s1 = stage.run_stage1(rng, logits, &mask);
                let s2 = if cfg.use_stage2 {
                    let stage2 =
                        Stage::new(self.net, StageConfig { steps: cfg.stage2_steps, ..stage_cfg });
                    stage2.run_stage2(rng, &s1)
                } else {
                    s1.clone()
                };

                let newly = self.count_new_activations(&s2, &activated);
                if newly > 0 || growths >= cfg.max_growths || elapsed() >= cfg.t_limit {
                    break ((s1, s2), newly);
                }
                // No progress: grow the duration (β doubles, Section V-C).
                t_cur += beta;
                beta *= 2;
                growths += 1;
            };
            let (s1, s2) = outcome;

            // Commit the chunk and update 𝒩_A from its activity.
            for (idx, masks) in
                s2.activation_masks(self.net, cfg.activation_min_spikes).into_iter().enumerate()
            {
                for (i, hit) in masks.into_iter().enumerate() {
                    if hit {
                        activated[idx][i] = true;
                    }
                }
            }
            iterations.push(IterationStats {
                steps: s2.best_input.shape().dim(0),
                stage1_loss: s1.best_loss,
                stage2_hidden_spikes: s2.best_loss,
                newly_activated: newly,
                growths,
            });
            let active_now = activated.iter().flat_map(|m| m.iter()).filter(|&&a| a).count();
            snn_obs::counter!("snn_testgen_iterations_total", "Committed outer-loop iterations.")
                .inc();
            snn_obs::counter!(
                "snn_testgen_growths_total",
                "Chunk duration growths (beta doublings)."
            )
            .add(growths as u64);
            snn_obs::gauge!("snn_testgen_activated_neurons", "Neurons activated so far (N_A).")
                .set(active_now as f64);
            sink.emit(Progress::Iteration {
                iteration: iter,
                chunk_steps: s2.best_input.shape().dim(0),
                newly_activated: newly,
                activated: active_now,
                total_neurons,
                growths,
            });
            chunks.push(s2.best_input);

            // An iteration that made no progress even after max growths
            // will not make progress next time either — stop.
            if newly == 0 {
                break;
            }
        }

        // Flatten per-layer activation into global neuron order.
        let mut global = Vec::with_capacity(total_neurons);
        for &(layer, count) in &layout {
            global.extend_from_slice(&activated[layer][..count]);
        }
        debug_assert_eq!(global.len(), total_neurons);
        let _ = num_layers;

        let mut test = GeneratedTest::from_chunks(chunks, self.net.input_features(), global);
        test.runtime = elapsed();
        test.iterations = iterations;
        root_span.attr("iterations", test.iterations.len());
        root_span.attr("test_steps", test.test_steps());
        Ok(test)
    }

    /// Neurons activated by `outcome` that are not yet in `activated`.
    fn count_new_activations(&self, outcome: &StageOutcome, activated: &[Vec<bool>]) -> usize {
        outcome
            .activation_masks(self.net, self.cfg.activation_min_spikes)
            .into_iter()
            .zip(activated.iter())
            .map(|(mask, old)| {
                mask.into_iter().zip(old.iter()).filter(|(new, &old)| *new && !old).count()
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use snn_model::{LifParams, NetworkBuilder};

    fn net(seed: u64) -> Network {
        let mut rng = StdRng::seed_from_u64(seed);
        NetworkBuilder::new(6, LifParams { refrac_steps: 1, ..LifParams::default() })
            .dense(12)
            .dense(4)
            .build(&mut rng)
    }

    #[test]
    fn generate_produces_nonempty_test_within_budget() {
        let net = net(1);
        let mut rng = StdRng::seed_from_u64(2);
        let test = TestGenerator::new(&net, TestGenConfig::fast()).generate(&mut rng);
        assert!(!test.chunks.is_empty());
        assert!(test.runtime <= Duration::from_secs(60));
        assert_eq!(test.activated.len(), net.neuron_count());
        assert!(test.activated_count() > 0, "test should activate neurons");
        assert_eq!(test.iterations.len(), test.chunks.len());
    }

    #[test]
    fn activation_grows_monotonically_over_iterations() {
        let net = net(3);
        let mut rng = StdRng::seed_from_u64(4);
        let test = TestGenerator::new(&net, TestGenConfig::fast()).generate(&mut rng);
        // every committed iteration after the first must have added
        // neurons, except possibly the final stalled one
        for (i, it) in test.iterations.iter().enumerate() {
            if i + 1 < test.iterations.len() {
                assert!(it.newly_activated > 0, "iteration {i} made no progress");
            }
        }
    }

    #[test]
    fn optimized_test_beats_random_input_on_activation() {
        let net = net(5);
        let mut rng = StdRng::seed_from_u64(6);
        let test = TestGenerator::new(&net, TestGenConfig::fast()).generate(&mut rng);

        // A random stimulus of the same total duration.
        let steps = test.test_steps();
        let random = snn_tensor::init::bernoulli(&mut rng, snn_tensor::Shape::d2(steps, 6), 0.5);
        let trace = net.forward(&random, RecordOptions::spikes_only());
        let random_active: usize = (0..2)
            .map(|i| trace.layers[i].spike_counts().iter().filter(|&&c| c >= 1.0).count())
            .sum();
        assert!(
            test.activated_count() >= random_active,
            "optimized {} < random {random_active}",
            test.activated_count()
        );
    }

    #[test]
    fn iteration_cap_is_respected() {
        let net = net(7);
        let mut rng = StdRng::seed_from_u64(8);
        let mut cfg = TestGenConfig::fast();
        cfg.max_iterations = 2;
        let test = TestGenerator::new(&net, cfg).generate(&mut rng);
        assert!(test.iterations.len() <= 2);
    }

    #[test]
    fn calibration_returns_duration_within_bounds() {
        let net = net(9);
        let mut rng = StdRng::seed_from_u64(10);
        let cfg = TestGenConfig::fast();
        let t = calibrate_t_in_min(&net, &mut rng, &cfg, 4, 64);
        assert!((4..=64).contains(&t));
    }

    #[test]
    fn generate_with_streams_one_event_per_iteration() {
        let net = net(1);
        let mut rng = StdRng::seed_from_u64(2);
        let events = std::sync::Mutex::new(Vec::new());
        let sink = |e: Progress| events.lock().unwrap().push(e);
        let test = TestGenerator::new(&net, TestGenConfig::fast())
            .generate_with(&mut rng, &sink, &CancelToken::new())
            .unwrap();
        let events = events.into_inner().unwrap();
        assert_eq!(events.len(), test.iterations.len());
        let mut prev_active = 0usize;
        for (i, e) in events.iter().enumerate() {
            let Progress::Iteration { iteration, activated, total_neurons, .. } = e else {
                panic!("unexpected event {e:?}");
            };
            assert_eq!(*iteration, i);
            assert_eq!(*total_neurons, net.neuron_count());
            assert!(*activated >= prev_active, "activation shrank");
            prev_active = *activated;
        }
        assert_eq!(prev_active, test.activated_count());
    }

    #[test]
    fn pre_cancelled_generation_returns_cancelled() {
        let net = net(1);
        let mut rng = StdRng::seed_from_u64(2);
        let cancel = CancelToken::new();
        cancel.cancel();
        let out = TestGenerator::new(&net, TestGenConfig::fast())
            .generate_with(&mut rng, &NullSink, &cancel);
        assert_eq!(out.unwrap_err(), Cancelled);
    }

    #[test]
    fn cancellation_mid_generation_stops_at_iteration_boundary() {
        let net = net(3);
        let mut rng = StdRng::seed_from_u64(4);
        let cancel = CancelToken::new();
        // Cancel from inside the sink after the first committed iteration.
        let sink = |_e: Progress| cancel.cancel();
        let out =
            TestGenerator::new(&net, TestGenConfig::fast()).generate_with(&mut rng, &sink, &cancel);
        assert_eq!(out.unwrap_err(), Cancelled);
    }

    fn all_false_mask(net: &Network) -> Vec<Vec<bool>> {
        net.layers()
            .iter()
            .map(|l| if l.is_spiking() { vec![false; l.out_features()] } else { Vec::new() })
            .collect()
    }

    #[test]
    fn excluding_every_neuron_terminates_immediately() {
        let net = net(1);
        let mut rng = StdRng::seed_from_u64(2);
        let all = all_false_mask(&net).iter().map(|m| vec![true; m.len()]).collect();
        let test =
            TestGenerator::new(&net, TestGenConfig::fast()).with_excluded(all).generate(&mut rng);
        assert!(test.chunks.is_empty(), "nothing left to target");
        assert!(test.iterations.is_empty());
    }

    #[test]
    fn empty_exclusion_matches_baseline_generation() {
        let net = net(1);
        let cfg = TestGenConfig::fast();
        let baseline =
            TestGenerator::new(&net, cfg.clone()).generate(&mut StdRng::seed_from_u64(2));
        let masked = TestGenerator::new(&net, cfg)
            .with_excluded(all_false_mask(&net))
            .generate(&mut StdRng::seed_from_u64(2));
        assert_eq!(baseline.chunks, masked.chunks);
        assert_eq!(baseline.activated, masked.activated);
    }

    #[test]
    fn excluded_neurons_leave_the_target_set_but_stay_in_stats() {
        let net = net(3);
        let mut rng = StdRng::seed_from_u64(4);
        let mut excluded = all_false_mask(&net);
        // Exclude half of the hidden layer.
        for e in excluded[0].iter_mut().take(6) {
            *e = true;
        }
        let test = TestGenerator::new(&net, TestGenConfig::fast())
            .with_excluded(excluded)
            .generate(&mut rng);
        // Stats stay over the full neuron set.
        assert_eq!(test.activated.len(), net.neuron_count());
    }

    #[test]
    #[should_panic(expected = "wrong length")]
    fn exclusion_mask_shape_is_validated() {
        let net = net(1);
        let _ = TestGenerator::new(&net, TestGenConfig::fast())
            .with_excluded(vec![vec![true], Vec::new()]);
    }

    #[test]
    fn time_limit_short_circuits() {
        let net = net(11);
        let mut rng = StdRng::seed_from_u64(12);
        let mut cfg = TestGenConfig::fast();
        cfg.t_limit = Duration::ZERO;
        let test = TestGenerator::new(&net, cfg).generate(&mut rng);
        assert!(test.chunks.is_empty());
    }
}
