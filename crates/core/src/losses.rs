//! The paper's five loss functions over spike trains, with analytic
//! (sub)gradients delivered as per-layer [`InjectedGrads`] for BPTT.
//!
//! All losses take the full forward [`Trace`] and *add* their gradient
//! contribution into an `InjectedGrads` accumulator, so a stage can
//! scalarize any subset with weights `α_i` (Eq. 6) in one backward pass.
//!
//! Conventions:
//!
//! * Spike counts `‖O^{ℓi}‖₁` are differentiated as sums over time, so a
//!   count gradient `g` becomes `∂L/∂s[t, i] = g` at every tick.
//! * Hinges (`max(0, ·)`) use the standard subgradient (0 at the kink).
//! * `L4` follows Eq. 13's dense formulation and is applied to dense and
//!   recurrent (input-weight) layers; convolutional layers share kernel
//!   weights across space, which already equalizes per-synapse
//!   contributions, and their small fan-in makes masking rare (covered by
//!   `L2`/`L3`).

use snn_model::{InjectedGrads, Layer, Network, Trace};
use snn_tensor::{Shape, Tensor};

/// Per-layer boolean masks selecting which neurons a loss targets
/// (`None` = all neurons of that layer). Aligned with `Network::layers()`.
pub type TargetMask = Vec<Option<Vec<bool>>>;

/// A mask targeting every neuron of every layer.
pub fn full_mask(net: &Network) -> TargetMask {
    vec![None; net.layers().len()]
}

/// Spike counts per neuron for layer `idx` of the trace.
fn counts(trace: &Trace, idx: usize) -> Vec<f32> {
    trace.layers[idx].spike_counts()
}

fn targeted(mask: &TargetMask, layer: usize, neuron: usize) -> bool {
    match &mask[layer] {
        None => true,
        Some(m) => m[neuron],
    }
}

/// `L1` (Eq. 9): every **output** neuron must fire at least once during
/// the inference window. Returns the loss value and adds `∂L1/∂O^L`.
pub fn l1_output_activation(net: &Network, trace: &Trace, inj: &mut InjectedGrads) -> f32 {
    let last = net.layers().len() - 1;
    let c = counts(trace, last);
    let steps = trace.steps;
    let n = c.len();
    let mut value = 0.0;
    let mut grad = Tensor::zeros(Shape::d2(steps, n));
    let gd = grad.as_mut_slice();
    for (i, &cnt) in c.iter().enumerate() {
        let deficit = 1.0 - cnt;
        if deficit > 0.0 {
            value += deficit;
            for t in 0..steps {
                gd[t * n + i] = -1.0;
            }
        }
    }
    if value > 0.0 {
        inj.set(last, grad);
    }
    value
}

/// `L2` (Eq. 10): every targeted neuron (all layers) must fire at least
/// once. The iteration loop passes the not-yet-activated set as `mask`.
pub fn l2_neuron_activation(
    net: &Network,
    trace: &Trace,
    mask: &TargetMask,
    inj: &mut InjectedGrads,
) -> f32 {
    let steps = trace.steps;
    let mut value = 0.0;
    for (idx, layer) in net.layers().iter().enumerate() {
        if !layer.is_spiking() {
            continue;
        }
        let c = counts(trace, idx);
        let n = c.len();
        let mut grad = Tensor::zeros(Shape::d2(steps, n));
        let mut any = false;
        {
            let gd = grad.as_mut_slice();
            for (i, &cnt) in c.iter().enumerate() {
                if !targeted(mask, idx, i) {
                    continue;
                }
                let deficit = 1.0 - cnt;
                if deficit > 0.0 {
                    value += deficit;
                    any = true;
                    for t in 0..steps {
                        gd[t * n + i] = -1.0;
                    }
                }
            }
        }
        if any {
            inj.set(idx, grad);
        }
    }
    value
}

/// Temporal diversity of one spike train (Eq. 11): number of state changes.
pub fn temporal_diversity(train: &[f32]) -> f32 {
    train.windows(2).map(|w| (w[1] - w[0]).abs()).sum()
}

/// `L3` (Eq. 12): each targeted neuron's temporal diversity must reach
/// `td_min`.
///
/// For binary trains `|O(j) − O(j−1)| = O(j) + O(j−1) − 2·O(j)·O(j−1)`,
/// giving the exact subgradient `∂TD/∂O(j) = (1 − 2·O(j−1)) + (1 − 2·O(j+1))`
/// (boundary terms drop the missing neighbour).
pub fn l3_temporal_diversity(
    net: &Network,
    trace: &Trace,
    mask: &TargetMask,
    td_min: f32,
    inj: &mut InjectedGrads,
) -> f32 {
    let steps = trace.steps;
    let mut value = 0.0;
    for (idx, layer) in net.layers().iter().enumerate() {
        if !layer.is_spiking() {
            continue;
        }
        let n = layer.out_features();
        let out = trace.layers[idx].output.as_slice();
        let mut grad = Tensor::zeros(Shape::d2(steps, n));
        let mut any = false;
        {
            let gd = grad.as_mut_slice();
            for i in 0..n {
                if !targeted(mask, idx, i) {
                    continue;
                }
                let mut td = 0.0f32;
                for t in 1..steps {
                    td += (out[t * n + i] - out[(t - 1) * n + i]).abs();
                }
                let deficit = td_min - td;
                if deficit > 0.0 {
                    value += deficit;
                    any = true;
                    // d(−TD)/dO(t): pushing TD up means flipping states.
                    for t in 0..steps {
                        let mut d = 0.0f32;
                        if t > 0 {
                            d += 1.0 - 2.0 * out[(t - 1) * n + i];
                        }
                        if t + 1 < steps {
                            d += 1.0 - 2.0 * out[(t + 1) * n + i];
                        }
                        gd[t * n + i] += -d;
                    }
                }
            }
        }
        if any {
            inj.set(idx, grad);
        }
    }
    value
}

/// `L4` (Eq. 13): variance of per-synapse contributions
/// `c_j = w_{j,i} · ‖O^{ℓ−1,j}‖₁` to each post-synaptic neuron, summed
/// over dense/recurrent layers. Uniform contributions stop strong synapses
/// from masking weak ones.
pub fn l4_contribution_variance(net: &Network, trace: &Trace, inj: &mut InjectedGrads) -> f32 {
    let steps = trace.steps;
    let mut value = 0.0;
    for (idx, layer) in net.layers().iter().enumerate() {
        let weight = match layer {
            Layer::Dense(l) => &l.weight,
            Layer::Recurrent(l) => &l.w_in,
            _ => continue,
        };
        if idx == 0 {
            // Contributions of the *stimulus* itself are what the input
            // optimization already controls; Eq. 13 starts at ℓ = 2.
            continue;
        }
        let dims = weight.shape().dims();
        let (rows, cols) = (dims[0], dims[1]);
        let wd = weight.as_slice();
        let pre_counts = counts(trace, idx - 1);
        debug_assert_eq!(pre_counts.len(), cols);

        // dL/d(count_j) accumulated over all post-neurons of this layer.
        let mut dcount = vec![0.0f32; cols];
        for r in 0..rows {
            let row = &wd[r * cols..(r + 1) * cols];
            // snn-lint: allow(L-FLOATEQ): exact-zero test selects structurally connected weights, not a tolerance
            let active: Vec<usize> = (0..cols).filter(|&j| row[j] != 0.0).collect();
            let m = active.len();
            if m < 2 {
                continue;
            }
            let contrib: Vec<f32> = active.iter().map(|&j| row[j] * pre_counts[j]).collect();
            // snn-lint: allow(L-CAST): fan-in counts stay far below f32's 2^24 exact-integer limit
            let mean = contrib.iter().sum::<f32>() / m as f32;
            // snn-lint: allow(L-CAST): fan-in counts stay far below f32's 2^24 exact-integer limit
            let var = contrib.iter().map(|c| (c - mean) * (c - mean)).sum::<f32>() / m as f32;
            value += var;
            for (k, &j) in active.iter().enumerate() {
                // ∂Var/∂c_k = 2(c_k − mean)/m ; ∂c_k/∂count_j = w_{j,r}
                // snn-lint: allow(L-CAST): fan-in counts stay far below f32's 2^24 exact-integer limit
                dcount[j] += 2.0 * (contrib[k] - mean) / m as f32 * row[j];
            }
        }
        // snn-lint: allow(L-FLOATEQ): exact-zero test — skips layers whose gradient is identically zero
        if dcount.iter().any(|&d| d != 0.0) {
            let n_pre = cols;
            let mut grad = Tensor::zeros(Shape::d2(steps, n_pre));
            let gd = grad.as_mut_slice();
            for t in 0..steps {
                gd[t * n_pre..(t + 1) * n_pre].copy_from_slice(&dcount);
            }
            inj.set(idx - 1, grad);
        }
    }
    value
}

/// `L5` (Eq. 16): total hidden spike count — stage 2 minimizes it to keep
/// fault effects from drowning in refractory periods.
pub fn l5_hidden_activity(net: &Network, trace: &Trace, inj: &mut InjectedGrads) -> f32 {
    let steps = trace.steps;
    let last = net.layers().len() - 1;
    let mut value = 0.0;
    for (idx, layer) in net.layers().iter().enumerate() {
        if idx == last || !layer.is_spiking() {
            continue;
        }
        let n = layer.out_features();
        value += trace.layers[idx].output.sum();
        inj.set(idx, Tensor::full(Shape::d2(steps, n), 1.0));
    }
    value
}

/// Output-preservation penalty realizing Eq. 15's constraint
/// `O^L = const`: `μ·‖O^L − O^L_ref‖₁` with the L1 subgradient.
///
/// # Panics
///
/// Panics if `reference` does not match the output shape.
pub fn output_preservation(
    net: &Network,
    trace: &Trace,
    reference: &Tensor,
    mu: f32,
    inj: &mut InjectedGrads,
) -> f32 {
    let last = net.layers().len() - 1;
    let out = trace.output();
    assert_eq!(out.shape(), reference.shape(), "reference output shape mismatch");
    let diff = out - reference;
    let value = mu * diff.l1_norm();
    if value > 0.0 {
        let grad = diff.map(|d| mu * d.signum());
        inj.set(last, grad);
    }
    value
}

/// `L6` (extension, this repo): saturation-margin loss.
///
/// The paper's future work asks for new loss functions that further
/// improve coverage. A neuron that already fires at its maximum nominal
/// rate (every `refrac + 1` ticks) responds to the stimulus exactly like
/// its *saturated-fault* counterpart near the output — the fault becomes
/// undetectable by that stimulus. `L6` therefore penalizes neurons whose
/// spike count exceeds `margin` of their physical maximum, pushing the
/// stimulus to keep nominal responses distinguishable from stuck-firing
/// behaviour:
///
/// `L6 = Σ max(0, ‖O^{ℓi}‖₁ − margin·max_count(ℓ))`.
pub fn l6_saturation_margin(
    net: &Network,
    trace: &Trace,
    margin: f32,
    inj: &mut InjectedGrads,
) -> f32 {
    assert!((0.0..=1.0).contains(&margin), "margin must be in [0, 1]");
    let steps = trace.steps;
    let mut value = 0.0;
    for (idx, layer) in net.layers().iter().enumerate() {
        let Some(lif) = layer.lif() else { continue };
        // snn-lint: allow(L-CAST): step counts and refractory periods stay far below f32's 2^24 exact-integer limit
        let max_count = steps as f32 / (lif.refrac_steps as f32 + 1.0);
        let cap = margin * max_count;
        let c = counts(trace, idx);
        let n = c.len();
        let mut grad = Tensor::zeros(Shape::d2(steps, n));
        let mut any = false;
        {
            let gd = grad.as_mut_slice();
            for (i, &cnt) in c.iter().enumerate() {
                let excess = cnt - cap;
                if excess > 0.0 {
                    value += excess;
                    any = true;
                    for t in 0..steps {
                        gd[t * n + i] = 1.0; // push the count down
                    }
                }
            }
        }
        if any {
            inj.set(idx, grad);
        }
    }
    value
}

/// Scalarization weights `α_i = 1 / max(L_i, ε)` (Section V-C: inverse of
/// the expected magnitude, so each term contributes comparably).
pub fn balance_weights(initial_losses: &[f32]) -> Vec<f32> {
    initial_losses.iter().map(|&l| 1.0 / l.max(1e-3)).collect()
}

#[cfg(test)]
#[allow(clippy::float_cmp)] // tests assert exact spike/gradient values
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use snn_model::{LifParams, NetworkBuilder, RecordOptions};

    fn small_net(seed: u64) -> Network {
        let mut rng = StdRng::seed_from_u64(seed);
        NetworkBuilder::new(5, LifParams { refrac_steps: 1, ..LifParams::default() })
            .dense(8)
            .dense(3)
            .build(&mut rng)
    }

    #[test]
    fn l1_is_zero_when_all_outputs_fire() {
        let net = small_net(0);
        let mut rng = StdRng::seed_from_u64(1);
        // dense all-ones drive fires everything eventually
        let input = snn_tensor::init::bernoulli(&mut rng, Shape::d2(40, 5), 0.9);
        let trace = net.forward(&input, RecordOptions::full());
        let mut inj = InjectedGrads::none(2);
        let v = l1_output_activation(&net, &trace, &mut inj);
        let out_counts = trace.class_counts();
        if out_counts.iter().all(|&c| c >= 1.0) {
            assert_eq!(v, 0.0);
            assert!(inj.is_empty());
        } else {
            assert!(v > 0.0);
        }
    }

    #[test]
    fn l1_counts_silent_output_neurons_on_zero_input() {
        let net = small_net(0);
        let input = Tensor::zeros(Shape::d2(10, 5));
        let trace = net.forward(&input, RecordOptions::full());
        let mut inj = InjectedGrads::none(2);
        let v = l1_output_activation(&net, &trace, &mut inj);
        assert_eq!(v, 3.0); // three silent outputs, deficit 1 each
                            // gradient pushes spikes up (negative, since loss falls as count rises)
        let g = inj.layer(1).unwrap();
        assert!(g.as_slice().iter().all(|&x| x <= 0.0));
        assert!(g.l1_norm() > 0.0);
    }

    #[test]
    fn l2_respects_target_mask() {
        let net = small_net(0);
        let input = Tensor::zeros(Shape::d2(10, 5));
        let trace = net.forward(&input, RecordOptions::full());
        let mut mask = full_mask(&net);
        // target only neuron 2 of layer 0
        let mut layer0 = vec![false; 8];
        layer0[2] = true;
        mask[0] = Some(layer0);
        mask[1] = Some(vec![false; 3]);
        let mut inj = InjectedGrads::none(2);
        let v = l2_neuron_activation(&net, &trace, &mask, &mut inj);
        assert_eq!(v, 1.0);
        let g = inj.layer(0).unwrap();
        // only column 2 non-zero
        for t in 0..10 {
            for i in 0..8 {
                let expect = if i == 2 { -1.0 } else { 0.0 };
                assert_eq!(g[[t, i]], expect);
            }
        }
        assert!(inj.layer(1).is_none());
    }

    #[test]
    fn temporal_diversity_counts_transitions() {
        assert_eq!(temporal_diversity(&[0.0, 1.0, 0.0, 0.0, 1.0]), 3.0);
        assert_eq!(temporal_diversity(&[1.0, 1.0, 1.0]), 0.0);
        assert_eq!(temporal_diversity(&[0.0]), 0.0);
    }

    #[test]
    fn l3_penalizes_low_diversity_only() {
        let net = small_net(0);
        let mut rng = StdRng::seed_from_u64(2);
        let input = snn_tensor::init::bernoulli(&mut rng, Shape::d2(30, 5), 0.8);
        let trace = net.forward(&input, RecordOptions::full());
        let mask = full_mask(&net);
        let mut inj = InjectedGrads::none(2);
        let v_low = l3_temporal_diversity(&net, &trace, &mask, 0.5, &mut inj);
        let mut inj2 = InjectedGrads::none(2);
        let v_high = l3_temporal_diversity(&net, &trace, &mask, 100.0, &mut inj2);
        assert!(v_high > v_low);
        assert!(v_high > 0.0);
    }

    #[test]
    fn l3_gradient_flips_isolated_quiet_train() {
        // Hand case: one neuron, constant-zero train, td_min = 2.
        // ∂TD/∂O(t) = 2 for interior ticks (both neighbours are 0), so the
        // injected gradient must be −2 (increase diversity by spiking).
        let mut rng = StdRng::seed_from_u64(0);
        let net = NetworkBuilder::new(1, LifParams::default()).dense(1).build(&mut rng);
        let input = Tensor::zeros(Shape::d2(5, 1));
        let trace = net.forward(&input, RecordOptions::full());
        let mut inj = InjectedGrads::none(1);
        let v = l3_temporal_diversity(&net, &trace, &full_mask(&net), 2.0, &mut inj);
        assert_eq!(v, 2.0);
        let g = inj.layer(0).unwrap();
        assert_eq!(g[[2, 0]], -2.0);
        assert_eq!(g[[0, 0]], -1.0); // boundary has one neighbour
    }

    #[test]
    fn l4_zero_for_identical_contributions() {
        // Two inputs with equal weights and equal counts ⇒ zero variance.
        let lif = LifParams::default();
        let l0 = snn_model::DenseLayer::new(
            Tensor::from_vec(Shape::d2(2, 2), vec![0.6, 0.6, 0.6, 0.6]).unwrap(),
            lif,
        );
        let l1 = snn_model::DenseLayer::new(
            Tensor::from_vec(Shape::d2(1, 2), vec![0.5, 0.5]).unwrap(),
            lif,
        );
        let net = Network::new(Shape::d1(2), vec![Layer::Dense(l0), Layer::Dense(l1)]);
        let input = Tensor::full(Shape::d2(12, 2), 1.0);
        let trace = net.forward(&input, RecordOptions::full());
        let mut inj = InjectedGrads::none(2);
        let v = l4_contribution_variance(&net, &trace, &mut inj);
        assert!(v.abs() < 1e-6, "v={v}");
    }

    #[test]
    fn l4_penalizes_imbalanced_contributions() {
        let lif = LifParams::default();
        let l0 = snn_model::DenseLayer::new(
            Tensor::from_vec(Shape::d2(2, 2), vec![0.9, 0.0, 0.0, 0.2]).unwrap(),
            lif,
        );
        // second layer with very unequal weights
        let l1 = snn_model::DenseLayer::new(
            Tensor::from_vec(Shape::d2(1, 2), vec![1.0, 0.05]).unwrap(),
            lif,
        );
        let net = Network::new(Shape::d1(2), vec![Layer::Dense(l0), Layer::Dense(l1)]);
        let input = Tensor::full(Shape::d2(20, 2), 1.0);
        let trace = net.forward(&input, RecordOptions::full());
        let mut inj = InjectedGrads::none(2);
        let v = l4_contribution_variance(&net, &trace, &mut inj);
        assert!(v > 0.0);
        assert!(inj.layer(0).is_some(), "gradient lands on pre-synaptic spikes");
    }

    #[test]
    fn l5_counts_hidden_spikes_and_pushes_down() {
        let net = small_net(3);
        let mut rng = StdRng::seed_from_u64(4);
        let input = snn_tensor::init::bernoulli(&mut rng, Shape::d2(25, 5), 0.9);
        let trace = net.forward(&input, RecordOptions::full());
        let mut inj = InjectedGrads::none(2);
        let v = l5_hidden_activity(&net, &trace, &mut inj);
        assert_eq!(v, trace.layers[0].output.sum());
        let g = inj.layer(0).unwrap();
        assert!(g.as_slice().iter().all(|&x| x == 1.0));
        assert!(inj.layer(1).is_none(), "output layer is exempt from L5");
    }

    #[test]
    fn output_preservation_is_zero_on_match() {
        let net = small_net(5);
        let mut rng = StdRng::seed_from_u64(6);
        let input = snn_tensor::init::bernoulli(&mut rng, Shape::d2(15, 5), 0.7);
        let trace = net.forward(&input, RecordOptions::full());
        let reference = trace.output().clone();
        let mut inj = InjectedGrads::none(2);
        let v = output_preservation(&net, &trace, &reference, 5.0, &mut inj);
        assert_eq!(v, 0.0);
        assert!(inj.is_empty());

        // Perturb the reference: penalty appears with signed gradient.
        let mut wrong = reference.clone();
        wrong[0] = 1.0 - wrong[0];
        let mut inj2 = InjectedGrads::none(2);
        let v2 = output_preservation(&net, &trace, &wrong, 5.0, &mut inj2);
        assert_eq!(v2, 5.0);
        assert!(inj2.layer(1).is_some());
    }

    #[test]
    fn l6_flags_only_max_rate_neurons() {
        // One neuron with a huge drive fires at its physical maximum
        // (every refrac+1 ticks); with margin 0.8 it must be penalized.
        let lif = LifParams { threshold: 0.5, leak: 1.0, refrac_steps: 1 };
        let net = Network::new(
            Shape::d1(1),
            vec![Layer::Dense(snn_model::DenseLayer::new(
                Tensor::from_vec(Shape::d2(2, 1), vec![5.0, 0.01]).unwrap(),
                lif,
            ))],
        );
        let input = Tensor::full(Shape::d2(20, 1), 1.0);
        let trace = net.forward(&input, RecordOptions::full());
        // neuron 0 fires 10× (max for refrac 1 over 20 ticks), neuron 1 never
        assert_eq!(trace.layers[0].spike_counts(), vec![10.0, 0.0]);

        let mut inj = InjectedGrads::none(1);
        let v = l6_saturation_margin(&net, &trace, 0.8, &mut inj);
        assert!(v > 0.0);
        let g = inj.layer(0).unwrap();
        assert_eq!(g[[0, 0]], 1.0, "saturated neuron pushed down");
        assert_eq!(g[[0, 1]], 0.0, "quiet neuron untouched");

        // With a permissive margin nothing is penalized.
        let mut inj2 = InjectedGrads::none(1);
        assert_eq!(l6_saturation_margin(&net, &trace, 1.0, &mut inj2), 0.0);
        assert!(inj2.is_empty());
    }

    #[test]
    #[should_panic(expected = "margin must be in")]
    fn l6_rejects_bad_margin() {
        let mut rng = StdRng::seed_from_u64(0);
        let net = NetworkBuilder::new(1, LifParams::default()).dense(1).build(&mut rng);
        let trace = net.forward(&Tensor::zeros(Shape::d2(2, 1)), RecordOptions::full());
        let mut inj = InjectedGrads::none(1);
        let _ = l6_saturation_margin(&net, &trace, 1.5, &mut inj);
    }

    #[test]
    fn balance_weights_inverts_magnitudes() {
        let w = balance_weights(&[2.0, 0.5, 0.0]);
        assert_eq!(w[0], 0.5);
        assert_eq!(w[1], 2.0);
        assert!((w[2] - 1000.0).abs() < 0.01); // ε-floored
    }
}
