use crate::losses::{self, TargetMask};
use rand::Rng;
use snn_model::{
    gumbel::GumbelSample,
    optim::{Adam, Schedule},
    InjectedGrads, Network, RecordOptions, Surrogate, Trace,
};
use snn_tensor::{Shape, Tensor};

/// Evaluates one loss expression, recording its wall-clock cost in a
/// `snn_testgen_<name>_eval_seconds` histogram and its last value in a
/// `snn_testgen_<name>_value` gauge, then yields the value.
macro_rules! timed_loss {
    ($name:literal, $eval:expr) => {{
        let t0 = snn_obs::clock::monotonic();
        let value = $eval;
        snn_obs::histogram!(
            concat!("snn_testgen_", $name, "_eval_seconds"),
            concat!("Per-step ", $name, " evaluation time."),
            snn_obs::metrics::FINE_DURATION_BUCKETS
        )
        .observe_duration(snn_obs::clock::monotonic().saturating_sub(t0));
        snn_obs::gauge!(
            concat!("snn_testgen_", $name, "_value"),
            concat!("Last ", $name, " loss value.")
        )
        .set(f64::from(value));
        value
    }};
}

/// Hyper-parameters of one input-optimization stage (paper Fig. 3 and
/// Section V-C).
#[derive(Debug, Clone, PartialEq)]
pub struct StageConfig {
    /// Optimization steps (`N_steps^{stage#}`; paper: 2000 for stage 1,
    /// half that for stage 2).
    pub steps: usize,
    /// Learning-rate annealing (paper: Adam starting at 0.1).
    pub lr: Schedule,
    /// Gumbel-Softmax temperature annealing (paper: maximum 0.9).
    pub tau: Schedule,
    /// Surrogate spike derivative for BPTT.
    pub surrogate: Surrogate,
    /// Sample the binary-concrete relaxation with logistic noise
    /// (`true`, the paper's setting) or deterministically.
    pub stochastic: bool,
    /// Minimum temporal diversity `TD_min` for `L3`.
    pub td_min: f32,
    /// Weight `μ` of the output-preservation penalty in stage 2.
    pub mu: f32,
    /// Include `L3` (temporal diversity) in stage 1 — ablation toggle.
    pub use_l3: bool,
    /// Include `L4` (contribution variance) in stage 1 — ablation toggle.
    pub use_l4: bool,
    /// Include the `L6` saturation-margin extension loss (this repo's
    /// future-work experiment; off by default = paper-faithful).
    pub use_l6: bool,
    /// Margin for `L6` (fraction of the physical maximum firing rate).
    pub l6_margin: f32,
}

impl Default for StageConfig {
    fn default() -> Self {
        Self {
            steps: 200,
            lr: Schedule::Cosine { initial: 0.1, min: 0.01, period: 200 },
            tau: Schedule::Cosine { initial: 0.9, min: 0.3, period: 200 },
            surrogate: Surrogate::default(),
            stochastic: true,
            td_min: 2.0,
            mu: 4.0,
            use_l3: true,
            use_l4: true,
            use_l6: false,
            l6_margin: 0.85,
        }
    }
}

/// Result of one optimization stage.
#[derive(Debug, Clone, PartialEq)]
pub struct StageOutcome {
    /// Best binary stimulus found (`[T × input_features]`).
    pub best_input: Tensor,
    /// Logits (`I_real`) at the best point — the warm start for stage 2.
    pub best_logits: Tensor,
    /// Best scalarized loss value.
    pub best_loss: f32,
    /// Forward trace of `best_input` (spike trains of every layer).
    pub best_trace: Trace,
    /// Scalarized loss per optimization step (for convergence reporting).
    pub loss_history: Vec<f32>,
}

impl StageOutcome {
    /// Per-layer activation masks of the best stimulus: `true` where the
    /// neuron fired at least `min_spikes` times. Non-spiking layers yield
    /// empty masks.
    pub fn activation_masks(&self, net: &Network, min_spikes: f32) -> Vec<Vec<bool>> {
        net.layers()
            .iter()
            .enumerate()
            .map(|(idx, layer)| {
                if !layer.is_spiking() {
                    return Vec::new();
                }
                self.best_trace.layers[idx]
                    .spike_counts()
                    .into_iter()
                    .map(|c| c >= min_spikes)
                    .collect()
            })
            .collect()
    }
}

/// One gradient-based input-optimization stage over a fixed network.
///
/// See the crate-level example; stages are normally driven by
/// [`TestGenerator`](crate::TestGenerator).
#[derive(Debug)]
pub struct Stage<'a> {
    net: &'a Network,
    cfg: StageConfig,
}

impl<'a> Stage<'a> {
    /// Creates a stage runner for `net`.
    pub fn new(net: &'a Network, cfg: StageConfig) -> Self {
        Self { net, cfg }
    }

    /// The stage configuration.
    pub fn config(&self) -> &StageConfig {
        &self.cfg
    }

    /// Stage 1 (Eq. 14): minimize `Σ αᵢ·Lᵢ` for `i = 1..4` over the input,
    /// targeting the neurons selected by `mask`.
    ///
    /// `logits` is the initial `I_real` (`[T × input_features]`); pass
    /// fresh uniform noise for a cold start.
    ///
    /// # Panics
    ///
    /// Panics if `logits` feature count mismatches the network.
    pub fn run_stage1(
        &self,
        rng: &mut impl Rng,
        mut logits: Tensor,
        mask: &TargetMask,
    ) -> StageOutcome {
        assert_eq!(
            logits.shape().dim(1),
            self.net.input_features(),
            "logit feature count mismatch"
        );
        assert!(self.cfg.steps > 0, "stage needs at least one optimization step");
        let mut stage_span = snn_obs::span!("stage1");
        stage_span.attr("steps", self.cfg.steps);
        let num_layers = self.net.layers().len();
        let mut adam = Adam::new(logits.shape().clone());
        let mut alphas: Option<Vec<f32>> = None;
        let mut best: Option<StageOutcome> = None;
        let mut history = Vec::with_capacity(self.cfg.steps);

        for k in 0..self.cfg.steps {
            let tau = self.cfg.tau.at(k);
            snn_obs::gauge!("snn_testgen_gumbel_tau", "Current Gumbel-Softmax temperature.")
                .set(f64::from(tau));
            let sample = if self.cfg.stochastic {
                GumbelSample::stochastic(rng, &logits, tau)
            } else {
                GumbelSample::deterministic(&logits, tau)
            };
            let trace = self.net.forward(&sample.binary, RecordOptions::full());

            // Evaluate the stage-1 losses (plus the optional L6
            // extension), each into its own gradient accumulator so they
            // can be scalarized with α.
            let losses_span = snn_obs::span!("stage1.losses");
            let mut parts: [(f32, InjectedGrads); 5] = [
                (0.0, InjectedGrads::none(num_layers)),
                (0.0, InjectedGrads::none(num_layers)),
                (0.0, InjectedGrads::none(num_layers)),
                (0.0, InjectedGrads::none(num_layers)),
                (0.0, InjectedGrads::none(num_layers)),
            ];
            parts[0].0 =
                timed_loss!("l1", losses::l1_output_activation(self.net, &trace, &mut parts[0].1));
            parts[1].0 = timed_loss!(
                "l2",
                losses::l2_neuron_activation(self.net, &trace, mask, &mut parts[1].1)
            );
            if self.cfg.use_l3 {
                parts[2].0 = timed_loss!(
                    "l3",
                    losses::l3_temporal_diversity(
                        self.net,
                        &trace,
                        mask,
                        self.cfg.td_min,
                        &mut parts[2].1,
                    )
                );
            }
            if self.cfg.use_l4 {
                parts[3].0 = timed_loss!(
                    "l4",
                    losses::l4_contribution_variance(self.net, &trace, &mut parts[3].1)
                );
            }
            if self.cfg.use_l6 {
                parts[4].0 = timed_loss!(
                    "l6",
                    losses::l6_saturation_margin(
                        self.net,
                        &trace,
                        self.cfg.l6_margin,
                        &mut parts[4].1,
                    )
                );
            }
            drop(losses_span);

            let a = alphas.get_or_insert_with(|| {
                losses::balance_weights(&[
                    parts[0].0, parts[1].0, parts[2].0, parts[3].0, parts[4].0,
                ])
            });
            let total: f32 = parts.iter().zip(a.iter()).map(|((v, _), al)| v * al).sum();
            history.push(total);

            if best.as_ref().is_none_or(|b| total < b.best_loss) {
                best = Some(StageOutcome {
                    best_input: sample.binary.clone(),
                    best_logits: logits.clone(),
                    best_loss: total,
                    best_trace: trace.clone(),
                    loss_history: Vec::new(),
                });
            }

            // Scalarize gradients and take one Adam step.
            let mut inj = InjectedGrads::none(num_layers);
            for ((_, grads), &alpha) in parts.iter().zip(a.iter()) {
                merge_scaled(&mut inj, grads, alpha);
            }
            if inj.is_empty() {
                break; // perfect loss — nothing left to optimize
            }
            let backward_span = snn_obs::span!("stage1.backward");
            let grads = self.net.backward(&sample.binary, &trace, &inj, self.cfg.surrogate, false);
            let g_logits = sample.grad_logits(&grads.input);
            adam.step(&mut logits, &g_logits, self.cfg.lr.at(k));
            drop(backward_span);
        }

        // snn-lint: allow(L-PANIC): the entry assert guarantees steps ≥ 1, so `best` is always Some
        let mut out = best.expect("stage ran at least one step");
        out.loss_history = history;
        out
    }

    /// Stage 2 (Eq. 15): starting from the stage-1 optimum, minimize the
    /// hidden activity `L5` while keeping the output spike trains exactly
    /// equal to the stage-1 output (enforced as a hard acceptance guard on
    /// top of the `μ`-weighted penalty).
    pub fn run_stage2(&self, rng: &mut impl Rng, stage1: &StageOutcome) -> StageOutcome {
        let mut stage_span = snn_obs::span!("stage2");
        stage_span.attr("steps", self.cfg.steps);
        let num_layers = self.net.layers().len();
        let reference = stage1.best_trace.output().clone();
        let mut logits = stage1.best_logits.clone();
        let mut adam = Adam::new(logits.shape().clone());
        let mut history = Vec::with_capacity(self.cfg.steps);

        // Baseline: the stage-1 stimulus itself.
        let mut best = StageOutcome {
            best_input: stage1.best_input.clone(),
            best_logits: stage1.best_logits.clone(),
            best_loss: hidden_spikes(self.net, &stage1.best_trace),
            best_trace: stage1.best_trace.clone(),
            loss_history: Vec::new(),
        };
        let alpha5 = 1.0 / best.best_loss.max(1e-3);

        for k in 0..self.cfg.steps {
            let tau = self.cfg.tau.at(k);
            let sample = if self.cfg.stochastic {
                GumbelSample::stochastic(rng, &logits, tau)
            } else {
                GumbelSample::deterministic(&logits, tau)
            };
            let trace = self.net.forward(&sample.binary, RecordOptions::full());

            let mut inj = InjectedGrads::none(num_layers);
            let l5 = timed_loss!("l5", losses::l5_hidden_activity(self.net, &trace, &mut inj));
            // Scale the L5 gradient; the preservation penalty adds its own.
            let mut scaled = InjectedGrads::none(num_layers);
            merge_scaled(&mut scaled, &inj, alpha5);
            let mut inj = scaled;
            let penalty =
                losses::output_preservation(self.net, &trace, &reference, self.cfg.mu, &mut inj);
            history.push(alpha5 * l5 + penalty);

            // Hard guard: accept only exact output preservation.
            // snn-lint: allow(L-FLOATEQ): the penalty counts mismatching exact 0.0/1.0 spikes, so zero is exact
            if penalty == 0.0 && l5 < best.best_loss {
                best = StageOutcome {
                    best_input: sample.binary.clone(),
                    best_logits: logits.clone(),
                    best_loss: l5,
                    best_trace: trace.clone(),
                    loss_history: Vec::new(),
                };
            }

            if inj.is_empty() {
                break;
            }
            let backward_span = snn_obs::span!("stage2.backward");
            let grads = self.net.backward(&sample.binary, &trace, &inj, self.cfg.surrogate, false);
            let g_logits = sample.grad_logits(&grads.input);
            adam.step(&mut logits, &g_logits, self.cfg.lr.at(k));
            drop(backward_span);
        }

        best.loss_history = history;
        best
    }
}

/// Total hidden spike count of a trace (the raw `L5` value).
fn hidden_spikes(net: &Network, trace: &Trace) -> f32 {
    let last = net.layers().len() - 1;
    net.layers()
        .iter()
        .enumerate()
        .filter(|(idx, l)| *idx != last && l.is_spiking())
        .map(|(idx, _)| trace.layers[idx].output.sum())
        .sum()
}

/// Adds `alpha · src` into `dst`, layer by layer.
fn merge_scaled(dst: &mut InjectedGrads, src: &InjectedGrads, alpha: f32) {
    for layer in 0..src.len() {
        if let Some(g) = src.layer(layer) {
            dst.set(layer, g * alpha);
        }
    }
}

/// Fresh uniform logits in `[-1, 1)` for a cold-started stage.
pub(crate) fn init_logits(rng: &mut impl Rng, steps: usize, features: usize) -> Tensor {
    snn_tensor::init::uniform(rng, Shape::d2(steps, features), -1.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::losses::full_mask;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use snn_model::{LifParams, NetworkBuilder};

    fn net(seed: u64) -> Network {
        let mut rng = StdRng::seed_from_u64(seed);
        NetworkBuilder::new(6, LifParams { refrac_steps: 1, ..LifParams::default() })
            .dense(12)
            .dense(4)
            .build(&mut rng)
    }

    fn cfg(steps: usize) -> StageConfig {
        StageConfig {
            steps,
            lr: Schedule::Constant(0.08),
            tau: Schedule::Constant(0.7),
            ..StageConfig::default()
        }
    }

    #[test]
    fn stage1_reduces_the_scalarized_loss() {
        let net = net(1);
        let mut rng = StdRng::seed_from_u64(2);
        let stage = Stage::new(&net, cfg(80));
        let logits = init_logits(&mut rng, 25, 6);
        let out = stage.run_stage1(&mut rng, logits, &full_mask(&net));
        let first = out.loss_history.first().copied().unwrap();
        assert!(out.best_loss <= first, "best {} should not exceed initial {first}", out.best_loss);
        assert!(out.best_input.is_binary());
        assert_eq!(out.best_input.shape().dims(), &[25, 6]);
    }

    #[test]
    fn stage1_activates_more_neurons_than_a_random_input() {
        let net = net(3);
        let mut rng = StdRng::seed_from_u64(4);
        let stage = Stage::new(&net, cfg(120));
        let logits = init_logits(&mut rng, 30, 6);
        let random_input = GumbelSample::deterministic(&logits, 0.9).binary;
        let random_trace = net.forward(&random_input, RecordOptions::spikes_only());
        let random_active: usize = (0..2).map(|i| random_trace.layers[i].activated_count()).sum();

        let out = stage.run_stage1(&mut rng, logits, &full_mask(&net));
        let opt_active: usize = (0..2).map(|i| out.best_trace.layers[i].activated_count()).sum();
        assert!(opt_active >= random_active, "optimized {opt_active} < random {random_active}");
        assert!(opt_active > 0);
    }

    #[test]
    fn stage2_never_breaks_the_output_and_never_increases_hidden_spikes() {
        let net = net(5);
        let mut rng = StdRng::seed_from_u64(6);
        let stage = Stage::new(&net, cfg(60));
        let logits = init_logits(&mut rng, 25, 6);
        let s1 = stage.run_stage1(&mut rng, logits, &full_mask(&net));
        let s1_hidden = hidden_spikes(&net, &s1.best_trace);

        let s2 = stage.run_stage2(&mut rng, &s1);
        let s2_hidden = hidden_spikes(&net, &s2.best_trace);
        assert!(s2_hidden <= s1_hidden, "stage 2 increased hidden spikes");
        assert_eq!(
            s2.best_trace.output(),
            s1.best_trace.output(),
            "stage 2 must preserve O^L exactly"
        );
    }

    #[test]
    fn activation_masks_match_trace_counts() {
        let net = net(7);
        let mut rng = StdRng::seed_from_u64(8);
        let stage = Stage::new(&net, cfg(20));
        let logits = init_logits(&mut rng, 20, 6);
        let out = stage.run_stage1(&mut rng, logits, &full_mask(&net));
        let masks = out.activation_masks(&net, 1.0);
        for (idx, mask) in masks.iter().enumerate() {
            let counts = out.best_trace.layers[idx].spike_counts();
            for (m, c) in mask.iter().zip(counts.iter()) {
                assert_eq!(*m, *c >= 1.0);
            }
        }
    }

    #[test]
    fn deterministic_mode_is_reproducible() {
        let net = net(9);
        let mut cfg = cfg(15);
        cfg.stochastic = false;
        let stage = Stage::new(&net, cfg);
        let run = |seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            let logits = init_logits(&mut rng, 15, 6);
            stage.run_stage1(&mut rng, logits, &full_mask(&net))
        };
        let a = run(11);
        let b = run(11);
        assert_eq!(a.best_input, b.best_input);
        assert_eq!(a.loss_history, b.loss_history);
    }
}
