//! The paper's contribution: minimum-time maximum-fault-coverage test
//! generation for spiking neural networks.
//!
//! This crate implements Section IV of *"Minimum Time Maximum Fault
//! Coverage Testing of Spiking Neural Networks"* (Raptis & Stratigopoulos,
//! DATE 2025): a two-stage, gradient-based optimization that crafts a
//! short binary spike stimulus achieving near-perfect hardware fault
//! coverage — without running a single fault simulation inside the
//! optimization loop.
//!
//! The pieces map one-to-one onto the paper:
//!
//! * [`losses`] — the five loss functions:
//!   `L1` (Eq. 9, every output neuron spikes), `L2` (Eq. 10, every
//!   targeted neuron spikes), `L3` (Eq. 12, temporal diversity ≥
//!   `TD_min`), `L4` (Eq. 13, uniform synapse contributions) and `L5`
//!   (Eq. 16, minimal hidden activity) with the output-preservation
//!   penalty realizing the Eq. 15 constraint;
//! * [`Stage`] — one input-optimization stage (Fig. 3): Gumbel-Softmax
//!   relaxation + straight-through estimator + Adam with annealed
//!   temperature and learning rate, driven through the simulator's BPTT;
//! * [`TestGenerator`] — the outer loop (Fig. 2): iterate stages over the
//!   not-yet-activated target set, grow the input duration by a doubling
//!   `β` when an iteration stalls, and stop at full activation or the
//!   time limit;
//! * [`GeneratedTest`] — the final stimulus: optimized chunks interleaved
//!   with equal-length zero (reset) inputs, Eq. (7)/(8), plus the metrics
//!   the paper's Table III reports.
//!
//! # Example: generate a test for a small SNN
//!
//! ```
//! use rand::SeedableRng;
//! use snn_model::{LifParams, NetworkBuilder};
//! use snn_testgen::{TestGenConfig, TestGenerator};
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! let net = NetworkBuilder::new(6, LifParams::default())
//!     .dense(10)
//!     .dense(3)
//!     .build(&mut rng);
//!
//! let cfg = TestGenConfig::fast(); // scaled-down iteration counts
//! let test = TestGenerator::new(&net, cfg).generate(&mut rng);
//! assert!(!test.chunks.is_empty());
//! let stimulus = test.assembled();
//! assert_eq!(stimulus.shape().dim(1), net.input_features());
//! assert_eq!(stimulus.shape().dim(0), test.test_steps());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod compact;
mod generator;
mod metrics;
mod stage;
mod testset;

pub mod losses;

pub use compact::{compact_by_activation, compact_by_coverage};
pub use generator::{calibrate_t_in_min, TestGenConfig, TestGenerator};
pub use metrics::{activity_map, runtimes_from_spans, ActivityMap, TestMetrics};
pub use snn_faults::progress;
pub use stage::{Stage, StageConfig, StageOutcome};
pub use testset::{parse_events, GeneratedTest, IterationStats};
