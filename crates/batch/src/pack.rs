//! The packed kernel: one pack of up to 64 fault variants swept
//! lane-parallel over the dense suffix of the network.
//!
//! # Shape of a sweep
//!
//! Every fault in a pack sits at the same layer `ℓ` and perturbs exactly
//! one neuron's output column there (a weight fault patches one row of
//! the layer matrix; a neuron fault overrides one neuron's behaviour).
//! The sweep therefore runs in two stages:
//!
//! * **Stage A** — per lane, simulate only the faulty neuron's column at
//!   layer `ℓ` (scalar `f32`, one neuron × `T` ticks). Lanes whose column
//!   equals the golden column are resolved immediately: the fault is
//!   undetected by this test.
//! * **Downstream** — diverged lanes are carried as bit lanes in packed
//!   `u64` spike words through layers `ℓ+1..`. Per layer, a per-tick
//!   [`row_diff_mask`] against the golden input rows finds which lanes
//!   still differ; each such lane is *materialized lazily*: from its
//!   first divergent tick `t0` onward the layer is re-simulated in `f32`
//!   starting from the recorded golden pre-tick state (membrane +
//!   refractory), with the synaptic drive taken from the stored golden
//!   `z` on ticks where the lane's input row is golden and recomputed
//!   via [`lane_row_dot`] otherwise. Lanes whose output reconverges to
//!   the golden rows drop out; at the last layer the divergence scan
//!   *is* the verdict.
//!
//! # Bit-exactness
//!
//! Verdicts must be bit-identical to the scalar engine's (the chunk
//! `verdict_digest` is gated on it):
//!
//! * synaptic drives reuse golden `z` values or recompute them with
//!   [`lane_row_dot`] / [`row_dot`], both bitwise equal to the `matvec`
//!   rows the scalar engine computes (see `snn_tensor::packed`);
//! * the LIF update replicates `run_lif` operation for operation;
//! * the L1 distance over binary spike trains is a diff-bit count — a
//!   sum of exact `1.0`s, so counting bits and converting the integer to
//!   `f32` reproduces the scalar accumulation bitwise (output layers are
//!   far below the 2^24 exactness bound);
//! * per-class spike-count diffs are differences of exact integer-valued
//!   `f32` sums, so signed integer deltas converted to `f32` match —
//!   including `+0.0` for untouched classes, which is what the scalar
//!   `f - b` of bitwise-equal counts produces.

use snn_faults::{
    provably_undetectable, ActivitySummary, Fault, FaultKind, FaultOutcome, FaultSimConfig,
    FaultSite, Injection,
};
use snn_model::{LifParams, Network, Trace};
use snn_obs::clock::monotonic;
use snn_obs::phase::{LocalPhases, Phase};
use snn_tensor::packed::{broadcast_row, lane_row_dot, row_diff_mask, row_dot, set_lane_bit};
use snn_tensor::Tensor;

use crate::golden::GoldenLayer;
use crate::plan::Pack;

/// Read-only campaign state shared by every pack run.
pub(crate) struct Ctx<'a> {
    pub net: &'a Network,
    pub cfg: FaultSimConfig,
    pub faults: &'a [Fault],
    pub injections: &'a [Injection],
    pub tests: &'a [Tensor],
    pub baselines: &'a [Trace],
    /// Per-test activity summaries; empty unless `cfg.activity_filter`.
    pub activity: &'a [ActivitySummary],
    /// `golden[k][layer - suffix_start]`: golden trajectories per test.
    pub golden: &'a [Vec<GoldenLayer>],
    pub suffix_start: usize,
}

impl Ctx<'_> {
    /// Golden trajectory of `layer` under test `k`.
    fn gold(&self, k: usize, layer: usize) -> &GoldenLayer {
        &self.golden[k][layer - self.suffix_start]
    }

    /// Fault-free input rows of `layer` under test `k` (`[T × in]`).
    fn layer_input(&self, k: usize, layer: usize) -> &[f32] {
        if layer == 0 {
            self.tests[k].as_slice()
        } else {
            self.baselines[k].layers[layer - 1].output.as_slice()
        }
    }
}

/// One lane's running verdict across the campaign's test inputs,
/// mirroring the scalar engine's accumulator exactly (same `> 0.0`
/// detection test, same strict `>` best-distance update, same
/// conditional class-diff recording).
#[derive(Default)]
struct LaneVerdict {
    detected: bool,
    best_distance: f32,
    best_diff: Option<Vec<f32>>,
}

impl LaneVerdict {
    fn update(
        &mut self,
        cfg: &FaultSimConfig,
        distance: f32,
        class_diff: impl FnOnce() -> Vec<f32>,
    ) {
        if distance > 0.0 {
            self.detected = true;
            if distance > self.best_distance {
                self.best_distance = distance;
                if cfg.record_class_diffs {
                    self.best_diff = Some(class_diff());
                }
            }
        }
    }
}

/// Per-neuron LIF integrator replicating `run_lif`'s update exactly.
struct NeuronSim {
    threshold: f32,
    leak: f32,
    refrac_steps: u32,
    carried: f32,
    refrac: u32,
}

impl NeuronSim {
    fn nominal(lif: &LifParams) -> Self {
        Self {
            threshold: lif.threshold,
            leak: lif.leak,
            refrac_steps: lif.refrac_steps,
            carried: 0.0,
            refrac: 0,
        }
    }

    /// Mirrors the model's `EffectiveParams` arithmetic for `ParamScale`
    /// overrides bit for bit.
    fn timing(lif: &LifParams, threshold_scale: f32, leak_scale: f32, refrac_delta: i32) -> Self {
        Self {
            threshold: (lif.threshold * threshold_scale).max(f32::EPSILON),
            leak: (lif.leak * leak_scale).clamp(f32::EPSILON, 1.0),
            // snn-lint: allow(L-CAST): clamped non-negative and refractory periods are tiny, truncation unreachable
            refrac_steps: (i64::from(lif.refrac_steps) + i64::from(refrac_delta)).max(0) as u32,
            carried: 0.0,
            refrac: 0,
        }
    }

    fn tick(&mut self, z: f32) -> u8 {
        if self.refrac > 0 {
            self.refrac -= 1;
            self.carried = 0.0;
            return 0;
        }
        let v = self.leak * self.carried + z;
        if v >= self.threshold {
            self.carried = 0.0;
            self.refrac = self.refrac_steps;
            1
        } else {
            self.carried = v;
            0
        }
    }
}

/// Saturating `usize → u64` for metric increments.
fn as_u64(n: usize) -> u64 {
    u64::try_from(n).unwrap_or(u64::MAX)
}

/// Exact small-integer conversions: both counts are bounded by the
/// output tensor volume, far below `f32`'s 2^24 integer-exactness bound.
fn count_to_f32(c: u32) -> f32 {
    // snn-lint: allow(L-CAST): diff-bit counts are small exact integers
    c as f32
}

fn delta_to_f32(d: i32) -> f32 {
    // snn-lint: allow(L-CAST): spike-count deltas are small exact integers
    d as f32
}

/// Runs one pack over every test input, returning per-member outcomes in
/// member order. Phase accounting is recorded into a pack-local scratch
/// and folded into the process-wide accumulator via `merge_pack`, which
/// scales *counts* (not nanoseconds) by the lane width so per-fault
/// normalization stays meaningful.
pub(crate) fn run_pack(ctx: &Ctx<'_>, pack: &Pack) -> Vec<FaultOutcome> {
    let mut pack_span = snn_obs::span!("batch.pack");
    pack_span.attr("layer", pack.layer);
    pack_span.attr("lanes", pack.lanes());
    let pack_started = monotonic();
    let mut local = LocalPhases::new();
    let mut verdicts: Vec<LaneVerdict> = Vec::new();
    verdicts.resize_with(pack.members.len(), LaneVerdict::default);

    for k in 0..ctx.tests.len() {
        run_test(ctx, pack, k, &mut verdicts, &mut local);
    }

    let pack_elapsed = monotonic().saturating_sub(pack_started);
    local.add(Phase::Fault, pack_elapsed);
    let members = pack.members.len();
    let detected = verdicts.iter().filter(|v| v.detected).count();
    snn_obs::counter!("snn_batch_packs_total", "Packs executed by the packed engine.").inc();
    snn_obs::counter!("snn_batch_lanes_total", "Fault variants simulated in packed lanes.")
        .add(as_u64(members));
    snn_faults::record_faults_simulated(as_u64(members));
    if detected > 0 {
        snn_faults::record_faults_detected(as_u64(detected));
    }
    snn_obs::histogram!(
        "snn_batch_pack_seconds",
        "Per-pack packed-sweep time.",
        snn_obs::metrics::FINE_DURATION_BUCKETS
    )
    .observe_duration(pack_elapsed);
    snn_obs::phase::faultsim().merge_pack(&local, as_u64(members));
    pack_span.attr("detected", detected);

    pack.members
        .iter()
        .zip(verdicts)
        .map(|(&fi, v)| FaultOutcome {
            fault_id: ctx.faults[fi].id,
            detected: v.detected,
            distance: v.best_distance,
            class_diff: v.best_diff,
        })
        .collect()
}

/// Sweeps the pack under test input `k`.
fn run_test(
    ctx: &Ctx<'_>,
    pack: &Pack,
    k: usize,
    verdicts: &mut [LaneVerdict],
    local: &mut LocalPhases,
) {
    let ell = pack.layer;
    let gl = ctx.gold(k, ell);
    let (steps, n) = (gl.steps, gl.n);
    let num_layers = ctx.net.layers().len();
    let last = ell == num_layers - 1;

    // Stage A: per member, the faulty neuron's output column at layer ℓ.
    // Columns equal to the golden column resolve the lane right here.
    let mut diverged: Vec<(usize, usize, Vec<u8>)> = Vec::new();
    for (i, &fi) in pack.members.iter().enumerate() {
        if ctx.cfg.activity_filter
            && provably_undetectable(ctx.net, &ctx.activity[k], &ctx.faults[fi])
        {
            continue;
        }
        let (q, out) = stage_a(ctx, k, fi, ell, gl, local);
        let compare_started = monotonic();
        let div = (0..steps).any(|t| (out[t] != 0) != gl.spike(t, q));
        local.add(Phase::Compare, monotonic().saturating_sub(compare_started));
        if div {
            diverged.push((i, q, out));
        }
    }
    if diverged.is_empty() {
        return;
    }

    if last {
        // Layer ℓ is the output layer: the faulty output differs from the
        // baseline in column q only, so the column diff is the verdict.
        let compare_started = monotonic();
        for (i, q, out) in &diverged {
            let mut count = 0u32;
            let mut delta = 0i32;
            for (t, bit) in out.iter().enumerate() {
                let lane_bit = *bit != 0;
                if lane_bit != gl.spike(t, *q) {
                    count += 1;
                    delta += if lane_bit { 1 } else { -1 };
                }
            }
            let q = *q;
            verdicts[*i].update(&ctx.cfg, count_to_f32(count), || {
                let mut diff = vec![0.0f32; n];
                diff[q] = delta_to_f32(delta);
                diff
            });
        }
        local.add(Phase::Compare, monotonic().saturating_sub(compare_started));
        return;
    }

    // Pack layer ℓ's output words: golden rows broadcast to every lane,
    // then each diverged lane's column q overridden with its stage-A bits.
    let run_started = monotonic();
    let mut words = vec![0u64; steps * n];
    for t in 0..steps {
        broadcast_row(&gl.out[t * n..(t + 1) * n], &mut words[t * n..(t + 1) * n]);
    }
    let mut live = 0u64;
    for (i, q, out) in &diverged {
        let lane = pack.lane(*i);
        live |= 1u64 << lane;
        for (t, bit) in out.iter().enumerate() {
            set_lane_bit(&mut words[t * n + q], lane, *bit != 0);
        }
    }
    local.add(Phase::PackRun, monotonic().saturating_sub(run_started));

    downstream(ctx, pack, k, words, n, live, verdicts, local);
}

/// Stage A: simulates the single faulty neuron column of member fault
/// `fi` at layer `ell`, returning `(neuron index, per-tick spikes)`.
fn stage_a(
    ctx: &Ctx<'_>,
    k: usize,
    fi: usize,
    ell: usize,
    gl: &GoldenLayer,
    local: &mut LocalPhases,
) -> (usize, Vec<u8>) {
    let fault = &ctx.faults[fi];
    let steps = gl.steps;
    match fault.kind {
        FaultKind::NeuronDead | FaultKind::NeuronSaturated | FaultKind::NeuronTiming { .. } => {
            let FaultSite::Neuron { index, .. } = fault.site else {
                // Injections were realized via for_fault, which rejects
                // site/kind mismatches before any pack runs.
                unreachable!("neuron fault kind on a non-neuron site")
            };
            let forward_started = monotonic();
            let out: Vec<u8> = match fault.kind {
                // Forced behaviours ignore the membrane entirely, exactly
                // like run_lif's forced paths.
                FaultKind::NeuronDead => vec![0u8; steps],
                FaultKind::NeuronSaturated => vec![1u8; steps],
                FaultKind::NeuronTiming { threshold_scale, leak_scale, refrac_delta } => {
                    // The drive is unchanged — only the LIF constants
                    // differ — so the golden z column is reused verbatim.
                    let lif = &crate::dense_layer(ctx.net, ell).lif;
                    let mut sim = NeuronSim::timing(lif, threshold_scale, leak_scale, refrac_delta);
                    (0..steps).map(|t| sim.tick(gl.z[t * gl.n + index])).collect()
                }
                // The outer match arm admits the three neuron kinds only.
                _ => unreachable!(),
            };
            local.add_forward(ell, monotonic().saturating_sub(forward_started));
            (index, out)
        }
        _ => {
            let Injection::Weight { at, value } = &ctx.injections[fi] else {
                // Injections were realized via for_fault, which rejects
                // site/kind mismatches before any pack runs.
                unreachable!("synapse fault kind without a weight injection")
            };
            let inject_started = monotonic();
            let layer = crate::dense_layer(ctx.net, ell);
            let cols = layer.weight.shape().dim(1);
            let q = at.offset / cols;
            let c = at.offset % cols;
            let wd = layer.weight.as_slice();
            let mut patched = wd[q * cols..(q + 1) * cols].to_vec();
            patched[c] = *value;
            let forward_started = monotonic();
            local.add(Phase::Inject, forward_started.saturating_sub(inject_started));
            let x = ctx.layer_input(k, ell);
            let mut sim = NeuronSim::nominal(&layer.lif);
            let out: Vec<u8> = (0..steps)
                .map(|t| {
                    // z reuse: when input feature c carries no traffic
                    // this tick, the old and new products at c are both
                    // exact zeroes, which never change the accumulator
                    // (see snn_tensor::packed), so the patched row's dot
                    // product is bitwise the stored golden drive. This
                    // also covers fractional (pooled) inputs — an average
                    // of zero spikes is exactly +0.0.
                    // snn-lint: allow(L-FLOATEQ): exact-zero traffic test; spikes and their averages are exact values
                    let z = if x[t * cols + c] != 0.0 {
                        row_dot(&patched, &x[t * cols..(t + 1) * cols])
                    } else {
                        gl.z[t * gl.n + q]
                    };
                    sim.tick(z)
                })
                .collect();
            local.add_forward(ell, monotonic().saturating_sub(forward_started));
            (q, out)
        }
    }
}

/// Carries diverged lanes through layers `ell+1..`, materializing lanes
/// lazily and resolving verdicts at the last layer.
#[allow(clippy::too_many_arguments)] // internal kernel plumbing, never public
fn downstream(
    ctx: &Ctx<'_>,
    pack: &Pack,
    k: usize,
    mut words: Vec<u64>,
    mut n_in: usize,
    mut live: u64,
    verdicts: &mut [LaneVerdict],
    local: &mut LocalPhases,
) {
    let num_layers = ctx.net.layers().len();
    let member_shift = usize::from(pack.golden_lane);

    for d in pack.layer + 1..num_layers {
        let gin = ctx.gold(k, d - 1);
        let gd = ctx.gold(k, d);
        let steps = gd.steps;
        debug_assert_eq!(gin.n, n_in);

        // Which lanes' inputs to layer d differ from the golden rows, and
        // at which ticks. Lanes with no divergent tick reconverged at the
        // previous layer — their remaining suffix is provably golden.
        let compare_started = monotonic();
        let mut diffmask = vec![0u64; steps];
        let mut union = 0u64;
        for (t, mask) in diffmask.iter_mut().enumerate() {
            *mask = row_diff_mask(
                &words[t * n_in..(t + 1) * n_in],
                &gin.out[t * n_in..(t + 1) * n_in],
                live,
            );
            union |= *mask;
        }
        if pack.golden_lane {
            debug_assert_eq!(union & 1, 0, "golden self-check lane diverged");
        }
        local.add(Phase::Compare, monotonic().saturating_sub(compare_started));
        live = union;
        if live == 0 {
            return;
        }

        let layer = crate::dense_layer(ctx.net, d);
        let n_d = gd.n;
        let last = d == num_layers - 1;

        let mut words_out = Vec::new();
        if !last {
            let run_started = monotonic();
            words_out = vec![0u64; steps * n_d];
            for t in 0..steps {
                broadcast_row(
                    &gd.out[t * n_d..(t + 1) * n_d],
                    &mut words_out[t * n_d..(t + 1) * n_d],
                );
            }
            local.add(Phase::PackRun, monotonic().saturating_sub(run_started));
        }

        // out_buf is reused across lanes; rows before a lane's t0 are
        // stale, and every consumer below only reads t0.. rows.
        let mut out_buf = vec![0u8; steps * n_d];
        let mut next_live = 0u64;
        let mut rest = live;
        while rest != 0 {
            let lane = rest.trailing_zeros();
            rest &= rest - 1;
            let member = lane as usize - member_shift;
            let t0 = diffmask
                .iter()
                .position(|m| (m >> lane) & 1 == 1)
                // snn-lint: allow(L-PANIC): lane is live, so some diffmask bit is set
                .expect("live lane has a divergent tick");
            materialize_lane(layer, gd, &words, n_in, lane, t0, &diffmask, &mut out_buf, local, d);

            if last {
                let compare_started = monotonic();
                let mut count = 0u32;
                let mut delta = vec![0i32; n_d];
                for t in t0..steps {
                    for (q, dq) in delta.iter_mut().enumerate() {
                        let lane_bit = out_buf[t * n_d + q] != 0;
                        if lane_bit != gd.spike(t, q) {
                            count += 1;
                            *dq += if lane_bit { 1 } else { -1 };
                        }
                    }
                }
                verdicts[member].update(&ctx.cfg, count_to_f32(count), || {
                    delta.iter().map(|&x| delta_to_f32(x)).collect()
                });
                local.add(Phase::Compare, monotonic().saturating_sub(compare_started));
            } else {
                let run_started = monotonic();
                let mut lane_diverged = false;
                for t in t0..steps {
                    for q in 0..n_d {
                        let on = out_buf[t * n_d + q] != 0;
                        set_lane_bit(&mut words_out[t * n_d + q], lane, on);
                        lane_diverged |= on != gd.spike(t, q);
                    }
                }
                if lane_diverged {
                    next_live |= 1u64 << lane;
                }
                local.add(Phase::PackRun, monotonic().saturating_sub(run_started));
            }
        }

        if last {
            return;
        }
        live = next_live;
        if live == 0 {
            return;
        }
        words = words_out;
        n_in = n_d;
    }
}

/// Materializes one lane through layer `d` from its first divergent
/// input tick `t0`: before `t0` the lane's input rows are golden, so its
/// state *entering* `t0` is exactly the recorded golden pre-tick state
/// (see `golden.rs`). Drives come from the stored golden `z` on
/// non-divergent ticks and [`lane_row_dot`] otherwise; the LIF update
/// mirrors `run_lif`. Output spikes land in `out_buf[t0.. ]` rows.
#[allow(clippy::too_many_arguments)] // internal kernel plumbing, never public
fn materialize_lane(
    layer: &snn_model::DenseLayer,
    gd: &GoldenLayer,
    words_in: &[u64],
    n_in: usize,
    lane: u32,
    t0: usize,
    diffmask: &[u64],
    out_buf: &mut [u8],
    local: &mut LocalPhases,
    d: usize,
) {
    let forward_started = monotonic();
    let n = gd.n;
    let steps = gd.steps;
    let wd = layer.weight.as_slice();
    let lif = &layer.lif;
    let mut carried = gd.carried_pre[t0 * n..(t0 + 1) * n].to_vec();
    let mut refrac = gd.refrac_pre[t0 * n..(t0 + 1) * n].to_vec();
    let mut z = vec![0.0f32; n];
    for t in t0..steps {
        if (diffmask[t] >> lane) & 1 == 1 {
            let row_words = &words_in[t * n_in..(t + 1) * n_in];
            for (q, zq) in z.iter_mut().enumerate() {
                *zq = lane_row_dot(&wd[q * n_in..(q + 1) * n_in], row_words, lane);
            }
        } else {
            // The lane's input row is golden this tick, so its drive is
            // the golden drive — bitwise (same matvec over same spikes).
            z.copy_from_slice(&gd.z[t * n..(t + 1) * n]);
        }
        let out_row = &mut out_buf[t * n..(t + 1) * n];
        for q in 0..n {
            if refrac[q] > 0 {
                refrac[q] -= 1;
                carried[q] = 0.0;
                out_row[q] = 0;
            } else {
                let v = lif.leak * carried[q] + z[q];
                if v >= lif.threshold {
                    out_row[q] = 1;
                    carried[q] = 0.0;
                    refrac[q] = lif.refrac_steps;
                } else {
                    out_row[q] = 0;
                    carried[q] = v;
                }
            }
        }
    }
    local.add_forward(d, monotonic().saturating_sub(forward_started));
}
