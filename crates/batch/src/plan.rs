//! Fault planning and lane assignment: which faults the packed engine
//! can take, grouped into packs of at most 64 compatible variants.
//!
//! A fault is *packable* when its site lies in the network's trailing run
//! of dense layers (the **dense suffix**): from the fault layer onward
//! every layer is dense, so each variant's divergence from the golden run
//! can be carried as one bit lane in `u64` spike words. Faults outside
//! the suffix (conv/pool/recurrent sites, or dense sites with a
//! non-dense layer after them) fall back to the scalar engine.
//!
//! Packs group packable faults by their fault layer — every member of a
//! pack starts diverging at the same layer, so one packed sweep over the
//! suffix serves all of them. Lane assignment is positional: member `i`
//! sits at lane `i`, shifted up by one when the pack reserves lane 0 for
//! the golden self-check (packs with fewer than 64 members do; a full
//! 64-member pack uses every lane for variants).

use snn_faults::Fault;
use snn_model::{Layer, Network};
use snn_obs::phase::{LocalPhases, Phase};
use snn_tensor::packed::LANES;

/// Index of the first layer of the network's trailing all-dense run:
/// the smallest `s` such that every layer in `s..len` is dense. Equals
/// `len` when the last layer is not dense (empty suffix — nothing is
/// packable).
pub fn dense_suffix_start(net: &Network) -> usize {
    let layers = net.layers();
    let mut s = layers.len();
    while s > 0 && matches!(layers[s - 1], Layer::Dense(_)) {
        s -= 1;
    }
    s
}

/// One pack: up to 64 fault variants confined to the same layer, each
/// assigned a bit lane of the packed spike words.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Pack {
    /// Layer every member fault is confined to.
    pub layer: usize,
    /// Member faults as indices into the campaign's fault slice, in lane
    /// order.
    pub members: Vec<usize>,
    /// `true` when lane 0 is reserved for a fault-free golden self-check
    /// (members then occupy lanes `1..=len`). Reserved whenever the pack
    /// is not full — the check costs nothing (golden bits are broadcast
    /// anyway) and lets debug builds assert the golden lane never
    /// diverges.
    pub golden_lane: bool,
}

impl Pack {
    /// Bit lane of member `i`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds when `i` is not a member index.
    pub fn lane(&self, i: usize) -> u32 {
        debug_assert!(i < self.members.len(), "member index out of range");
        // members.len() + golden ≤ 64, so the lane always fits.
        u32::try_from(i + usize::from(self.golden_lane)).unwrap_or(u32::MAX)
    }

    /// Occupied lanes: members plus the golden lane when reserved.
    pub fn lanes(&self) -> usize {
        self.members.len() + usize::from(self.golden_lane)
    }
}

/// The engine's split of a campaign fault list: packs for the packed
/// kernel plus the scalar-fallback remainder. Indices refer to the fault
/// slice the plan was built from; every index appears exactly once.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultPlan {
    /// First layer of the dense suffix (see [`dense_suffix_start`]).
    pub suffix_start: usize,
    /// Packs in ascending fault-layer order, members in supplied order.
    pub packs: Vec<Pack>,
    /// Faults the packed kernel cannot take, in supplied order.
    pub fallback: Vec<usize>,
}

impl FaultPlan {
    /// Total faults assigned to packs.
    pub fn packed_faults(&self) -> usize {
        self.packs.iter().map(|p| p.members.len()).sum()
    }
}

/// Plans `faults` over `net`: partitions into packable/fallback, groups
/// packable faults by fault layer, chunks each group into packs of at
/// most 64 and assigns lanes. Records its two stages into `local` as the
/// `pack.plan` / `pack.assign` kernel phases.
pub fn plan(net: &Network, faults: &[Fault], local: &mut LocalPhases) -> FaultPlan {
    use snn_obs::clock::monotonic;

    // Stage 1 — partition by packability and group by fault layer.
    // Layer-indexed vectors (not a hash map) keep iteration order
    // deterministic.
    let plan_started = monotonic();
    let suffix_start = dense_suffix_start(net);
    let num_layers = net.layers().len();
    let mut by_layer: Vec<Vec<usize>> = vec![Vec::new(); num_layers];
    let mut fallback = Vec::new();
    for (i, fault) in faults.iter().enumerate() {
        let layer = fault.site.layer();
        if layer >= suffix_start && layer < num_layers {
            by_layer[layer].push(i);
        } else {
            fallback.push(i);
        }
    }
    let assign_started = monotonic();
    local.add(Phase::PackPlan, assign_started.saturating_sub(plan_started));

    // Stage 2 — chunk each layer group into packs and assign lanes.
    let mut packs = Vec::new();
    for (layer, group) in by_layer.iter().enumerate() {
        for chunk in group.chunks(LANES) {
            packs.push(Pack { layer, members: chunk.to_vec(), golden_lane: chunk.len() < LANES });
        }
    }
    local.add(Phase::PackAssign, monotonic().saturating_sub(assign_started));

    FaultPlan { suffix_start, packs, fallback }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use snn_faults::FaultUniverse;
    use snn_model::{LifParams, NetworkBuilder};

    fn dense_net() -> Network {
        let mut rng = StdRng::seed_from_u64(0);
        NetworkBuilder::new(4, LifParams::default()).dense(6).dense(3).build(&mut rng)
    }

    #[test]
    fn all_dense_network_has_full_suffix_and_no_fallback() {
        let net = dense_net();
        assert_eq!(dense_suffix_start(&net), 0);
        let u = FaultUniverse::standard(&net);
        let p = plan(&net, u.faults(), &mut LocalPhases::new());
        assert!(p.fallback.is_empty());
        assert_eq!(p.packed_faults(), u.len());
        // Every index appears exactly once, and packs are ≤ 64 wide.
        let mut seen: Vec<usize> = p.packs.iter().flat_map(|pk| pk.members.clone()).collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..u.len()).collect::<Vec<_>>());
        for pk in &p.packs {
            assert!(pk.members.len() <= LANES);
            assert_eq!(pk.golden_lane, pk.members.len() < LANES);
            assert!(pk.lanes() <= LANES);
        }
    }

    #[test]
    fn lane_assignment_shifts_past_the_golden_lane() {
        let partial = Pack { layer: 0, members: vec![5, 9], golden_lane: true };
        assert_eq!(partial.lane(0), 1);
        assert_eq!(partial.lane(1), 2);
        assert_eq!(partial.lanes(), 3);
        let full = Pack { layer: 0, members: (0..LANES).collect(), golden_lane: false };
        assert_eq!(full.lane(0), 0);
        assert_eq!(full.lane(63), 63);
        assert_eq!(full.lanes(), LANES);
    }

    #[test]
    fn conv_prefix_faults_fall_back() {
        let mut rng = StdRng::seed_from_u64(1);
        let net = NetworkBuilder::new_spatial(1, 4, 4, LifParams::default())
            .conv(2, 3, 1, 1)
            .dense(5)
            .build(&mut rng);
        assert_eq!(dense_suffix_start(&net), 1);
        let u = FaultUniverse::standard(&net);
        let p = plan(&net, u.faults(), &mut LocalPhases::new());
        assert!(!p.fallback.is_empty());
        assert!(!p.packs.is_empty());
        for &i in &p.fallback {
            assert_eq!(u.faults()[i].site.layer(), 0);
        }
        for pk in &p.packs {
            assert_eq!(pk.layer, 1);
        }
        assert_eq!(p.packed_faults() + p.fallback.len(), u.len());
    }

    #[test]
    fn non_dense_last_layer_packs_nothing() {
        let mut rng = StdRng::seed_from_u64(2);
        let net = NetworkBuilder::new_spatial(1, 4, 4, LifParams::default())
            .conv(2, 3, 1, 1)
            .avg_pool(2)
            .build(&mut rng);
        let u = FaultUniverse::standard(&net);
        assert_eq!(dense_suffix_start(&net), net.layers().len());
        let p = plan(&net, u.faults(), &mut LocalPhases::new());
        assert!(p.packs.is_empty());
        assert_eq!(p.fallback.len(), u.len());
    }

    #[test]
    fn packs_group_by_fault_layer() {
        let net = dense_net();
        let u = FaultUniverse::standard(&net);
        let p = plan(&net, u.faults(), &mut LocalPhases::new());
        for pk in &p.packs {
            for &i in &pk.members {
                assert_eq!(u.faults()[i].site.layer(), pk.layer);
            }
        }
    }
}
