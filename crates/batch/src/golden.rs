//! Golden (fault-free) trajectories of the dense suffix, precomputed
//! once per test input and shared read-only by every pack.
//!
//! The packed kernel leans on the golden run three ways:
//!
//! * **`z` reuse** — at any tick where a lane's input row equals the
//!   golden row, its synaptic drive equals the golden drive *bitwise*
//!   (see `snn_tensor::packed` for the `±0.0` argument), so the stored
//!   `z` replaces a full row of dot products;
//! * **lazy materialization** — a lane that first diverges at tick `t0`
//!   evolved identically to the golden run before `t0`, so its membrane
//!   and refractory state at `t0` is exactly the stored pre-tick golden
//!   state — per-lane `f32` state is copied only from there on;
//! * **divergence tests** — lane spike rows are compared against the
//!   golden output rows to resolve reconverged lanes early.
//!
//! The replay mirrors `snn-model`'s dense LIF kernel operation for
//! operation (`matvec` drive, leak–integrate–fire update), so every
//! stored value is bit-identical to what the scalar engine computes; a
//! debug assertion cross-checks the replayed spikes against the recorded
//! baseline trace.

use snn_model::{Network, Trace};
use snn_obs::phase::LocalPhases;
use snn_tensor::{ops, Tensor};

/// Golden per-tick records of one dense layer under one test input.
pub(crate) struct GoldenLayer {
    /// Neurons in the layer.
    pub n: usize,
    /// Simulated ticks.
    pub steps: usize,
    /// Synaptic drive `z[t*n + q]` of neuron `q` at tick `t`.
    pub z: Vec<f32>,
    /// Membrane potential carried *into* tick `t` (before any update).
    pub carried_pre: Vec<f32>,
    /// Refractory counter carried *into* tick `t`.
    pub refrac_pre: Vec<u32>,
    /// Golden output spikes, `[T × n]` row-major (binary).
    pub out: Vec<f32>,
}

impl GoldenLayer {
    /// `true` when golden neuron `q` spikes at tick `t`.
    pub fn spike(&self, t: usize, q: usize) -> bool {
        // snn-lint: allow(L-FLOATEQ): spikes are exact 0.0/1.0 values
        self.out[t * self.n + q] != 0.0
    }
}

/// Replays the fault-free run of layers `suffix_start..` of `net` under
/// `test`, recording drives, pre-tick state and spikes per layer. The
/// layer inputs come from `baseline` (the recorded fault-free trace), so
/// the replay is per-layer, not chained. Forward time is recorded into
/// `local` under each layer's `forward` slot.
pub(crate) fn golden_suffix(
    net: &Network,
    test: &Tensor,
    baseline: &Trace,
    suffix_start: usize,
    local: &mut LocalPhases,
) -> Vec<GoldenLayer> {
    let num_layers = net.layers().len();
    let mut layers = Vec::with_capacity(num_layers - suffix_start);
    for idx in suffix_start..num_layers {
        let forward_started = snn_obs::clock::monotonic();
        let input: &Tensor = if idx == 0 { test } else { &baseline.layers[idx - 1].output };
        let gl = replay_dense(net, idx, input);
        debug_assert!(
            gl.out
                .iter()
                .zip(baseline.layers[idx].output.as_slice().iter())
                .all(|(a, b)| a.to_bits() == b.to_bits()),
            "golden replay of layer {idx} disagrees with the baseline trace"
        );
        local.add_forward(idx, snn_obs::clock::monotonic().saturating_sub(forward_started));
        layers.push(gl);
    }
    layers
}

/// Replays one dense layer tick for tick, recording everything the
/// packed kernel reuses. Mirrors `run_lif`'s per-neuron update exactly.
fn replay_dense(net: &Network, idx: usize, input: &Tensor) -> GoldenLayer {
    let layer = crate::dense_layer(net, idx);
    let dims = input.shape().dims();
    let (steps, in_features) = (dims[0], dims[1]);
    let n = layer.weight.shape().dim(0);
    let in_data = input.as_slice();
    let lif = &layer.lif;

    let mut gl = GoldenLayer {
        n,
        steps,
        z: vec![0.0f32; steps * n],
        carried_pre: vec![0.0f32; steps * n],
        refrac_pre: vec![0u32; steps * n],
        out: vec![0.0f32; steps * n],
    };
    let mut carried = vec![0.0f32; n];
    let mut refrac = vec![0u32; n];
    for t in 0..steps {
        gl.carried_pre[t * n..(t + 1) * n].copy_from_slice(&carried);
        gl.refrac_pre[t * n..(t + 1) * n].copy_from_slice(&refrac);
        ops::matvec(
            &layer.weight,
            &in_data[t * in_features..(t + 1) * in_features],
            &mut gl.z[t * n..(t + 1) * n],
        );
        for q in 0..n {
            if refrac[q] > 0 {
                refrac[q] -= 1;
                carried[q] = 0.0;
                continue; // out stays 0.0
            }
            let v = lif.leak * carried[q] + gl.z[t * n + q];
            if v >= lif.threshold {
                gl.out[t * n + q] = 1.0;
                carried[q] = 0.0;
                refrac[q] = lif.refrac_steps;
            } else {
                carried[q] = v;
            }
        }
    }
    gl
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use snn_model::{LifParams, NetworkBuilder, RecordOptions};
    use snn_tensor::Shape;

    #[test]
    fn replay_matches_baseline_bitwise_and_records_pre_state() {
        let mut rng = StdRng::seed_from_u64(5);
        let net = NetworkBuilder::new(5, LifParams { refrac_steps: 2, ..LifParams::default() })
            .dense(8)
            .dense(3)
            .build(&mut rng);
        let test = snn_tensor::init::bernoulli(&mut rng, Shape::d2(24, 5), 0.5);
        let baseline = net.forward(&test, RecordOptions::spikes_only());
        let golden = golden_suffix(&net, &test, &baseline, 0, &mut LocalPhases::new());
        assert_eq!(golden.len(), 2);
        for (idx, gl) in golden.iter().enumerate() {
            assert_eq!(gl.steps, 24);
            let b = baseline.layers[idx].output.as_slice();
            assert_eq!(gl.out.len(), b.len());
            assert!(gl.out.iter().zip(b.iter()).all(|(a, b)| a.to_bits() == b.to_bits()));
            // Tick 0 always starts from resting state.
            assert!(gl.carried_pre[..gl.n].iter().all(|&c| c.to_bits() == 0));
            assert!(gl.refrac_pre[..gl.n].iter().all(|&r| r == 0));
        }
        // The refractory pre-state is populated somewhere (refrac_steps=2
        // and the stimulus is dense, so some neuron fires and rests).
        assert!(golden.iter().any(|gl| gl.refrac_pre.iter().any(|&r| r > 0)));
    }

    #[test]
    fn resuming_from_pre_state_reproduces_the_suffix() {
        // Bit-exact resume: replaying a layer from the recorded pre-tick
        // state at any t0 must reproduce the golden tail — this is the
        // property lazy lane materialization rests on.
        let mut rng = StdRng::seed_from_u64(6);
        let net = NetworkBuilder::new(4, LifParams { refrac_steps: 1, ..LifParams::default() })
            .dense(6)
            .build(&mut rng);
        let test = snn_tensor::init::bernoulli(&mut rng, Shape::d2(20, 4), 0.5);
        let baseline = net.forward(&test, RecordOptions::spikes_only());
        let gl = &golden_suffix(&net, &test, &baseline, 0, &mut LocalPhases::new())[0];
        let lif = &crate::dense_layer(&net, 0).lif;
        let n = gl.n;
        for t0 in [0usize, 5, 13, 19] {
            let mut carried = gl.carried_pre[t0 * n..(t0 + 1) * n].to_vec();
            let mut refrac = gl.refrac_pre[t0 * n..(t0 + 1) * n].to_vec();
            for t in t0..gl.steps {
                for q in 0..n {
                    let fired = if refrac[q] > 0 {
                        refrac[q] -= 1;
                        carried[q] = 0.0;
                        false
                    } else {
                        let v = lif.leak * carried[q] + gl.z[t * n + q];
                        if v >= lif.threshold {
                            carried[q] = 0.0;
                            refrac[q] = lif.refrac_steps;
                            true
                        } else {
                            carried[q] = v;
                            false
                        }
                    };
                    assert_eq!(fired, gl.spike(t, q), "t0={t0} t={t} q={q}");
                }
            }
        }
    }
}
