//! Bit-packed fault-parallel simulation: fault plan → lane assignment →
//! packed LIF run.
//!
//! A detection campaign asks one question per (fault, test) pair: does
//! the faulty output spike train differ from the fault-free one? The
//! scalar engine answers it by re-simulating the network once per fault.
//! This crate answers it for up to 64 faults at once: each fault variant
//! becomes a bit *lane* inside `u64` spike words, the fault-free
//! ("golden") run is simulated once per test, and lanes are carried
//! through the network as packed bit patterns — per-lane `f32` state is
//! materialized lazily, only for lanes that actually diverge from the
//! golden run, and only from their first divergent tick.
//!
//! The pipeline:
//!
//! 1. [`plan`] — partition the fault list into *packs* of ≤ 64 variants
//!    confined to the same layer of the network's dense suffix, plus a
//!    scalar-fallback remainder (faults at conv/pool/recurrent sites or
//!    ahead of a non-dense layer);
//! 2. lane assignment — each pack member gets a bit lane, with lane 0
//!    reserved as a fault-free self-check in non-full packs;
//! 3. packed run — per pack, per test: simulate each lane's single
//!    perturbed neuron column scalar-wise, pack divergent columns into
//!    spike words, and sweep the remaining layers lane-parallel.
//!
//! [`engine_detect`] is the drop-in campaign entry point: it resolves
//! the configured [`Engine`], runs packs (and the scalar fallback for
//! unpackable faults) and returns a [`CampaignOutcome`] **bit-identical**
//! to [`FaultSimulator::detect_with`] — same per-fault detection flags,
//! distances, class diffs and therefore the same
//! [`verdict_digest`](snn_faults::verdict_digest). Cluster chunking,
//! collapsed-universe expansion and reliability campaigns ride on top
//! unchanged.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod golden;
mod pack;
pub mod plan;

use std::sync::atomic::{AtomicUsize, Ordering};

use snn_faults::{
    parallel, ActivitySummary, CampaignError, CampaignOutcome, CancelToken, Engine, Fault,
    FaultOutcome, FaultSimConfig, FaultSimulator, FaultUniverse, Injection, InjectionError,
    Progress, ProgressSink,
};
use snn_model::{DenseLayer, Layer, Network, RecordOptions, Trace};
use snn_obs::clock::monotonic;
use snn_obs::phase::LocalPhases;
use snn_tensor::Tensor;

use golden::{golden_suffix, GoldenLayer};

pub use plan::{dense_suffix_start, FaultPlan, Pack};

/// The dense layer at `idx`.
pub(crate) fn dense_layer(net: &Network, idx: usize) -> &DenseLayer {
    match &net.layers()[idx] {
        Layer::Dense(l) => l,
        // The planner only packs faults in the dense suffix, so every
        // layer the packed kernel addresses is dense by construction.
        _ => unreachable!("packed engine addressed non-dense layer {idx}"),
    }
}

/// Resolves a requested engine against the network: [`Engine::Auto`]
/// (and `None`) picks [`Engine::Packed`] when the network ends in a
/// dense layer — the planner can then pack at least the last layer's
/// faults — and [`Engine::Scalar`] otherwise. Never returns `Auto`.
pub fn resolve_engine(net: &Network, requested: Option<Engine>) -> Engine {
    match requested.unwrap_or(Engine::Auto) {
        Engine::Auto => {
            if matches!(net.layers().last(), Some(Layer::Dense(_))) {
                Engine::Packed
            } else {
                Engine::Scalar
            }
        }
        explicit => explicit,
    }
}

/// Runs a detection campaign under the engine configured in
/// `cfg.engine` (resolved via [`resolve_engine`]). The outcome is
/// bit-identical to [`FaultSimulator::detect_with`] whichever engine
/// runs — the packed path is an execution strategy, not a semantics
/// change.
///
/// # Panics
///
/// Panics if `tests` is empty (matching the scalar engine).
///
/// # Errors
///
/// [`CampaignError::Injection`] for an ill-formed fault (before any
/// simulation), [`CampaignError::Cancelled`] once `cancel` trips.
pub fn engine_detect(
    net: &Network,
    cfg: FaultSimConfig,
    universe: &FaultUniverse,
    faults: &[Fault],
    tests: &[Tensor],
    sink: &dyn ProgressSink,
    cancel: &CancelToken,
) -> Result<CampaignOutcome, CampaignError> {
    match resolve_engine(net, cfg.engine) {
        Engine::Scalar => {
            let cfg = FaultSimConfig { engine: Some(Engine::Scalar), ..cfg };
            FaultSimulator::new(net, cfg).detect_with(universe, faults, tests, sink, cancel)
        }
        _ => packed_detect(net, cfg, universe, faults, tests, sink, cancel),
    }
}

/// Remaps the scalar fallback's progress stream onto the full campaign:
/// the subset simulator reports `total = subset.len()`, but downstream
/// consumers see one campaign over `total` faults.
struct ProgressScale<'a> {
    inner: &'a dyn ProgressSink,
    total: usize,
}

impl ProgressSink for ProgressScale<'_> {
    fn emit(&self, event: Progress) {
        let event = match event {
            Progress::FaultsSimulated { done, detected, .. } => {
                Progress::FaultsSimulated { done, total: self.total, detected }
            }
            other => other,
        };
        self.inner.emit(event);
    }
}

fn as_u64(n: usize) -> u64 {
    u64::try_from(n).unwrap_or(u64::MAX)
}

/// The packed campaign: plan → scalar fallback (if any) → golden
/// precompute → lane-parallel pack fan-out. Observable behaviour
/// (spans, counters, progress stream shape, error order) mirrors the
/// scalar `detect_with`.
#[allow(clippy::too_many_arguments)] // mirrors detect_with's signature plus the network
fn packed_detect(
    net: &Network,
    cfg: FaultSimConfig,
    universe: &FaultUniverse,
    faults: &[Fault],
    tests: &[Tensor],
    sink: &dyn ProgressSink,
    cancel: &CancelToken,
) -> Result<CampaignOutcome, CampaignError> {
    assert!(!tests.is_empty(), "detection campaign needs at least one test input");
    let mut campaign_span = snn_obs::span!("faultsim.campaign");
    campaign_span.attr("faults", faults.len());
    let start = monotonic();

    // Campaign-level phase scratch: planning, lane assignment and the
    // golden replays land here and merge into the process accumulator at
    // the end (inside this campaign's snapshot delta, outside the
    // fallback's — the fallback campaign emits its own phase spans).
    let mut campaign_local = LocalPhases::new();
    let plan = {
        let mut plan_span = snn_obs::span!("batch.plan");
        let plan = plan::plan(net, faults, &mut campaign_local);
        plan_span.attr("packs", plan.packs.len());
        plan_span.attr("fallback", plan.fallback.len());
        plan
    };

    // Realize every fault up front so ill-formed ones are rejected
    // before any simulation work starts (typed, like the scalar path).
    let injections: Vec<Injection> = faults
        .iter()
        .map(|f| Injection::for_fault(net, universe, f))
        .collect::<Result<_, InjectionError>>()?;

    let mut per_fault: Vec<Option<FaultOutcome>> = Vec::new();
    per_fault.resize_with(faults.len(), || None);

    // Scalar fallback first: it merges its own phase delta into the
    // process accumulator, so running it before this campaign's
    // phases_before snapshot keeps the packed delta clean.
    let mut fallback_detected = 0usize;
    if !plan.fallback.is_empty() {
        snn_obs::counter!(
            "snn_batch_scalar_fallback_faults_total",
            "Faults the packed engine handed to the scalar fallback."
        )
        .add(as_u64(plan.fallback.len()));
        let subset: Vec<Fault> = plan.fallback.iter().map(|&i| faults[i]).collect();
        let scale = ProgressScale { inner: sink, total: faults.len() };
        let sub_cfg = FaultSimConfig { engine: Some(Engine::Scalar), ..cfg };
        let outcome = FaultSimulator::new(net, sub_cfg)
            .detect_with(universe, &subset, tests, &scale, cancel)?;
        fallback_detected = outcome.detected_count();
        for (&fi, o) in plan.fallback.iter().zip(outcome.per_fault) {
            per_fault[fi] = Some(o);
        }
    }

    let phases = snn_obs::phase::faultsim();
    let phases_before = phases.snapshot();

    // Golden precompute: baselines, activity summaries and the per-test
    // golden suffix trajectories every pack reads from.
    let mut baselines: Vec<Trace> = Vec::new();
    let mut activity: Vec<ActivitySummary> = Vec::new();
    let mut golden: Vec<Vec<GoldenLayer>> = Vec::new();
    if !plan.packs.is_empty() {
        let baseline_span = snn_obs::span!("faultsim.baseline");
        baselines = tests.iter().map(|t| net.forward(t, RecordOptions::spikes_only())).collect();
        if cfg.activity_filter {
            activity = tests
                .iter()
                .zip(baselines.iter())
                .map(|(t, b)| ActivitySummary::new(net, t, b))
                .collect();
        }
        for (test, baseline) in tests.iter().zip(baselines.iter()) {
            golden.push(golden_suffix(net, test, baseline, plan.suffix_start, &mut campaign_local));
        }
        drop(baseline_span);
    }

    let done = AtomicUsize::new(plan.fallback.len());
    let detected_total = AtomicUsize::new(fallback_detected);
    let ctx = pack::Ctx {
        net,
        cfg,
        faults,
        injections: &injections,
        tests,
        baselines: &baselines,
        activity: &activity,
        golden: &golden,
        suffix_start: plan.suffix_start,
    };
    let pack_outcomes = parallel::try_map_indexed(
        plan.packs.len(),
        cfg.threads,
        cancel,
        || (),
        |_, pi| {
            let pk = &plan.packs[pi];
            let outcomes = pack::run_pack(&ctx, pk);
            let det = outcomes.iter().filter(|o| o.detected).count();
            let detected = detected_total.fetch_add(det, Ordering::Relaxed) + det;
            let done_now = done.fetch_add(pk.members.len(), Ordering::Relaxed) + pk.members.len();
            sink.emit(Progress::FaultsSimulated { done: done_now, total: faults.len(), detected });
            outcomes
        },
    )?;
    for (pk, outcomes) in plan.packs.iter().zip(pack_outcomes) {
        for (&fi, o) in pk.members.iter().zip(outcomes) {
            per_fault[fi] = Some(o);
        }
    }
    let per_fault: Vec<FaultOutcome> = per_fault
        .into_iter()
        // snn-lint: allow(L-PANIC): the plan assigns every fault index to a pack or the fallback exactly once
        .map(|o| o.expect("every fault assigned to a pack or the fallback"))
        .collect();

    phases.merge(&campaign_local);
    let elapsed = monotonic().saturating_sub(start);
    if let Some(parent) = campaign_span.id() {
        let delta = phases.snapshot().delta_since(&phases_before);
        snn_obs::phase::emit_spans(&delta, Some(parent));
    }
    campaign_span.attr("detected", detected_total.load(Ordering::Relaxed));
    Ok(CampaignOutcome { per_fault, elapsed })
}

#[cfg(test)]
#[allow(clippy::unwrap_used)] // test-only shorthand
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use snn_faults::{verdict_digest, FaultKind, NullSink};
    use snn_model::{LifParams, NetworkBuilder};
    use snn_tensor::Shape;
    use std::sync::Mutex;

    fn dense_net(seed: u64) -> Network {
        let mut rng = StdRng::seed_from_u64(seed);
        NetworkBuilder::new(6, LifParams { refrac_steps: 1, ..LifParams::default() })
            .dense(10)
            .dense(4)
            .build(&mut rng)
    }

    fn tests_for(net: &Network, seed: u64, count: usize) -> Vec<Tensor> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..count)
            .map(|_| {
                snn_tensor::init::bernoulli(&mut rng, Shape::d2(16, net.input_features()), 0.4)
            })
            .collect()
    }

    fn scalar_cfg() -> FaultSimConfig {
        FaultSimConfig { threads: 1, engine: Some(Engine::Scalar), ..FaultSimConfig::default() }
    }

    fn packed_cfg() -> FaultSimConfig {
        FaultSimConfig { threads: 1, engine: Some(Engine::Packed), ..FaultSimConfig::default() }
    }

    fn assert_engines_agree(net: &Network, cfg_extra: impl Fn(FaultSimConfig) -> FaultSimConfig) {
        let u = FaultUniverse::standard(net);
        let tests = tests_for(net, 7, 3);
        let cancel = CancelToken::new();
        let scalar =
            engine_detect(net, cfg_extra(scalar_cfg()), &u, u.faults(), &tests, &NullSink, &cancel)
                .unwrap();
        let packed =
            engine_detect(net, cfg_extra(packed_cfg()), &u, u.faults(), &tests, &NullSink, &cancel)
                .unwrap();
        assert_eq!(scalar.per_fault.len(), packed.per_fault.len());
        for (s, p) in scalar.per_fault.iter().zip(packed.per_fault.iter()) {
            assert_eq!(s.fault_id, p.fault_id);
            assert_eq!(s.detected, p.detected, "fault {}", s.fault_id);
            assert_eq!(s.distance.to_bits(), p.distance.to_bits(), "fault {}", s.fault_id);
            assert_eq!(s.class_diff, p.class_diff, "fault {}", s.fault_id);
        }
        assert_eq!(verdict_digest(&scalar.per_fault), verdict_digest(&packed.per_fault));
    }

    #[test]
    fn packed_matches_scalar_on_a_dense_network() {
        assert_engines_agree(&dense_net(11), |c| c);
    }

    #[test]
    fn packed_matches_scalar_with_class_diffs_and_activity_filter() {
        assert_engines_agree(&dense_net(12), |c| FaultSimConfig {
            record_class_diffs: true,
            activity_filter: true,
            ..c
        });
    }

    #[test]
    fn packed_matches_scalar_on_a_conv_prefix_with_fallback() {
        // Conv faults take the scalar fallback; dense-suffix faults pack.
        let mut rng = StdRng::seed_from_u64(13);
        let net = NetworkBuilder::new_spatial(1, 6, 6, LifParams::default())
            .conv(2, 3, 1, 1)
            .dense(5)
            .build(&mut rng);
        assert_engines_agree(&net, |c| FaultSimConfig { record_class_diffs: true, ..c });
    }

    #[test]
    fn auto_resolution_follows_the_last_layer() {
        let dense = dense_net(1);
        assert_eq!(resolve_engine(&dense, None), Engine::Packed);
        assert_eq!(resolve_engine(&dense, Some(Engine::Auto)), Engine::Packed);
        assert_eq!(resolve_engine(&dense, Some(Engine::Scalar)), Engine::Scalar);
        let mut rng = StdRng::seed_from_u64(2);
        let conv = NetworkBuilder::new_spatial(1, 4, 4, LifParams::default())
            .conv(2, 3, 1, 1)
            .avg_pool(2)
            .build(&mut rng);
        assert_eq!(resolve_engine(&conv, None), Engine::Scalar);
        assert_eq!(resolve_engine(&conv, Some(Engine::Packed)), Engine::Packed);
    }

    #[test]
    fn ill_formed_fault_is_a_typed_error() {
        let net = dense_net(3);
        let u = FaultUniverse::standard(&net);
        let neuron_site =
            u.faults().iter().find(|f| f.kind == FaultKind::NeuronDead).copied().unwrap();
        let bad = Fault { kind: FaultKind::SynapseDead, ..neuron_site };
        let tests = tests_for(&net, 4, 1);
        let err =
            engine_detect(&net, packed_cfg(), &u, &[bad], &tests, &NullSink, &CancelToken::new())
                .unwrap_err();
        assert!(matches!(err, CampaignError::Injection(_)));
    }

    #[test]
    fn pre_cancelled_campaign_reports_cancelled() {
        let net = dense_net(5);
        let u = FaultUniverse::standard(&net);
        let tests = tests_for(&net, 6, 1);
        let cancel = CancelToken::new();
        cancel.cancel();
        let err = engine_detect(&net, packed_cfg(), &u, u.faults(), &tests, &NullSink, &cancel)
            .unwrap_err();
        assert!(matches!(err, CampaignError::Cancelled));
    }

    #[test]
    fn progress_stream_covers_the_whole_campaign() {
        let net = dense_net(8);
        let u = FaultUniverse::standard(&net);
        let tests = tests_for(&net, 9, 2);
        let events = Mutex::new(Vec::new());
        let sink = |p: Progress| events.lock().unwrap().push(p);
        let outcome =
            engine_detect(&net, packed_cfg(), &u, u.faults(), &tests, &sink, &CancelToken::new())
                .unwrap();
        let events = events.into_inner().unwrap();
        let final_detected = events
            .iter()
            .filter_map(|e| match e {
                Progress::FaultsSimulated { done, total, detected } => {
                    assert_eq!(*total, u.len());
                    (*done == u.len()).then_some(*detected)
                }
                _ => None,
            })
            .next_back();
        assert_eq!(final_detected, Some(outcome.detected_count()));
    }
}
