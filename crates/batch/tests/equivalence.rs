//! Satellite property: the packed engine is bit-identical to the scalar
//! engine — per-fault detection flags, distances, class diffs and the
//! FNV-1a [`verdict_digest`] match across fault kinds (weight / neuron /
//! timing / bit-range), pack sizes {1, 7, 64}, remainder packs (universe
//! size not a multiple of 64), and collapsed universes; plus a dedicated
//! lane-divergence test where exactly one lane's membrane crosses
//! threshold.

#![allow(clippy::unwrap_used)] // test-only shorthand

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use snn_batch::{engine_detect, plan};
use snn_faults::{
    verdict_digest, CampaignOutcome, CancelToken, Engine, Fault, FaultKind, FaultModelConfig,
    FaultSimConfig, FaultSite, FaultUniverse, NullSink,
};
use snn_model::{LifParams, Network, NetworkBuilder, WeightRef};
use snn_obs::phase::LocalPhases;
use snn_tensor::{Shape, Tensor};

fn dense_net(seed: u64, inputs: usize, hidden: usize, outputs: usize) -> Network {
    let mut rng = StdRng::seed_from_u64(seed);
    NetworkBuilder::new(inputs, LifParams { refrac_steps: 1, ..LifParams::default() })
        .dense(hidden)
        .dense(outputs)
        .build(&mut rng)
}

fn tests_for(net: &Network, seed: u64, count: usize) -> Vec<Tensor> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count)
        .map(|_| snn_tensor::init::bernoulli(&mut rng, Shape::d2(16, net.input_features()), 0.4))
        .collect()
}

fn cfg_for(engine: Engine) -> FaultSimConfig {
    FaultSimConfig {
        threads: 1,
        engine: Some(engine),
        record_class_diffs: true,
        ..FaultSimConfig::default()
    }
}

fn run(
    net: &Network,
    engine: Engine,
    u: &FaultUniverse,
    faults: &[Fault],
    tests: &[Tensor],
) -> CampaignOutcome {
    engine_detect(net, cfg_for(engine), u, faults, tests, &NullSink, &CancelToken::new()).unwrap()
}

/// The bitwise contract: same fault ids, same detection flags, same
/// `f32` distances *to the bit*, same class diffs, same digest.
fn assert_bit_identical(scalar: &CampaignOutcome, packed: &CampaignOutcome) {
    assert_eq!(scalar.per_fault.len(), packed.per_fault.len());
    for (s, p) in scalar.per_fault.iter().zip(packed.per_fault.iter()) {
        assert_eq!(s.fault_id, p.fault_id);
        assert_eq!(s.detected, p.detected, "fault {}", s.fault_id);
        assert_eq!(s.distance.to_bits(), p.distance.to_bits(), "fault {}", s.fault_id);
        assert_eq!(s.class_diff, p.class_diff, "fault {}", s.fault_id);
    }
    assert_eq!(verdict_digest(&scalar.per_fault), verdict_digest(&packed.per_fault));
}

fn assert_engines_agree_on(net: &Network, u: &FaultUniverse, faults: &[Fault], tests: &[Tensor]) {
    let scalar = run(net, Engine::Scalar, u, faults, tests);
    let packed = run(net, Engine::Packed, u, faults, tests);
    assert_bit_identical(&scalar, &packed);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Random dense nets, full extended universes (timing + bit-range
    /// faults alongside the standard weight/neuron kinds): identical
    /// verdicts bit-for-bit under both engines.
    #[test]
    fn packed_matches_scalar_over_random_extended_universes(
        seed in 0u64..1000,
        hidden in 6usize..12,
        timing in proptest::bool::ANY,
    ) {
        let net = dense_net(seed, 5, hidden, 4);
        let u = FaultUniverse::with_config(
            &net,
            FaultModelConfig::default(),
            timing,
            &[0, 3, 7],
        );
        let tests = tests_for(&net, seed ^ 0xbeef, 2);
        assert_engines_agree_on(&net, &u, u.faults(), &tests);
    }
}

/// Pack sizes 1, 7 and 64 plus a 65-fault remainder slice (one full
/// pack + a 1-member remainder pack) — all sliced from a single layer so
/// the plan produces exactly the intended pack shapes.
#[test]
fn pack_sizes_and_remainder_packs_are_bit_identical() {
    let net = dense_net(21, 6, 10, 4);
    let u = FaultUniverse::standard(&net);
    let last = net.layers().len() - 1;
    let last_layer: Vec<Fault> =
        u.faults().iter().filter(|f| f.site.layer() == last).copied().collect();
    assert!(last_layer.len() >= 65, "need ≥65 last-layer faults, got {}", last_layer.len());
    let tests = tests_for(&net, 22, 2);
    for k in [1usize, 7, 64, 65] {
        let subset = &last_layer[..k];
        // The plan must shape as intended: ≤64-member packs, remainder
        // split off, golden lane reserved exactly when a pack is partial.
        let p = plan::plan(&net, subset, &mut LocalPhases::new());
        assert!(p.fallback.is_empty(), "k={k}");
        let sizes: Vec<usize> = p.packs.iter().map(|pk| pk.members.len()).collect();
        match k {
            65 => assert_eq!(sizes, vec![64, 1], "k={k}"),
            _ => assert_eq!(sizes, vec![k], "k={k}"),
        }
        for pk in &p.packs {
            assert_eq!(pk.golden_lane, pk.members.len() < 64, "k={k}");
        }
        assert_engines_agree_on(&net, &u, subset, &tests);
    }
}

/// Collapsed universes: representative campaigns run under each engine,
/// expanded back over the full universe — expansion of bit-identical
/// inputs is bit-identical output.
#[test]
fn collapsed_universe_expansion_is_engine_invariant() {
    // Prune to make collapsing yield classes (identical-weight /
    // silent-source rules need sparsity).
    let mut net = dense_net(31, 6, 12, 4);
    snn_analyze::magnitude_prune(&mut net, 0.5);
    let u = FaultUniverse::standard(&net);
    let analysis = snn_analyze::analyze(&net, &u);
    assert!(
        !analysis.collapsed.collapses().is_empty(),
        "test needs a universe that actually collapses"
    );
    let tests = tests_for(&net, 32, 2);
    let via = |engine: Engine| {
        analysis
            .collapsed
            .detect_collapsed_via(&tests, |reps| {
                engine_detect(
                    &net,
                    cfg_for(engine),
                    &u,
                    reps,
                    &tests,
                    &NullSink,
                    &CancelToken::new(),
                )
            })
            .unwrap()
    };
    let scalar = via(Engine::Scalar);
    let packed = via(Engine::Packed);
    assert_eq!(scalar.per_fault.len(), u.len());
    assert_bit_identical(&scalar, &packed);
}

/// Hand-crafted two-lane pack where exactly one lane's membrane crosses
/// threshold: a saturated synapse on a driven input diverges (and the
/// divergence propagates to the output), while the same fault kind on a
/// never-spiking input carries no traffic and stays on the golden
/// trajectory.
#[test]
fn exactly_one_lane_diverges() {
    let mut rng = StdRng::seed_from_u64(41);
    let mut net = NetworkBuilder::new(2, LifParams { refrac_steps: 1, ..LifParams::default() })
        .dense(2)
        .dense(2)
        .build(&mut rng);
    // Layer 0 (weights [out × in], offset = out·2 + in): each hidden
    // neuron listens to one input with a sub-threshold weight — the
    // geometric sum 0.05 / (1 − leak 0.9) = 0.5 stays below θ = 1.0, so
    // the golden run never fires.
    net.set_weight(WeightRef { layer: 0, tensor: 0, offset: 0 }, 0.05); // h0 ← in0 (driven)
    net.set_weight(WeightRef { layer: 0, tensor: 0, offset: 1 }, 0.0);
    net.set_weight(WeightRef { layer: 0, tensor: 0, offset: 2 }, 0.0);
    net.set_weight(WeightRef { layer: 0, tensor: 0, offset: 3 }, 0.05); // h1 ← in1 (silent)
                                                                        // Layer 1: identity wiring at exactly threshold weight, so any
                                                                        // hidden spike propagates to the matching output.
    net.set_weight(WeightRef { layer: 1, tensor: 0, offset: 0 }, 1.0);
    net.set_weight(WeightRef { layer: 1, tensor: 0, offset: 1 }, 0.0);
    net.set_weight(WeightRef { layer: 1, tensor: 0, offset: 2 }, 0.0);
    net.set_weight(WeightRef { layer: 1, tensor: 0, offset: 3 }, 1.0);

    // max|w| = 1.0 ⇒ SynapseSatPos sticks the weight at sat_factor × 1.0
    // = 2.0 ≥ θ, firing the faulty neuron on every driven tick.
    let u = FaultUniverse::standard(&net);
    let pick = |offset: usize| {
        u.faults()
            .iter()
            .find(|f| {
                f.kind == FaultKind::SynapseSatPos
                    && f.site == FaultSite::Synapse(WeightRef { layer: 0, tensor: 0, offset })
            })
            .copied()
            .unwrap()
    };
    let diverging = pick(0); // h0 ← in0: driven every tick
    let quiet = pick(3); // h1 ← in1: never sees a spike

    // Input 0 spikes every tick; input 1 never does.
    let mut stim = vec![0.0f32; 16 * 2];
    for t in 0..16 {
        stim[t * 2] = 1.0;
    }
    let tests = vec![Tensor::from_vec(Shape::d2(16, 2), stim).unwrap()];

    let faults = [diverging, quiet];
    let p = plan::plan(&net, &faults, &mut LocalPhases::new());
    assert_eq!(p.packs.len(), 1, "both faults must share one pack");
    assert!(p.packs[0].golden_lane);

    let scalar = run(&net, Engine::Scalar, &u, &faults, &tests);
    let packed = run(&net, Engine::Packed, &u, &faults, &tests);
    assert_bit_identical(&scalar, &packed);
    assert!(packed.per_fault[0].detected, "saturated driven synapse must diverge");
    assert!(!packed.per_fault[1].detected, "saturated silent synapse must stay golden");
}
