//! Post-manufacturing test-program development, end to end:
//!
//! 1. train an NMNIST-like SNN with surrogate-gradient BPTT,
//! 2. enumerate the hardware fault universe and label faults
//!    critical/benign against the dataset (the paper's Table II step),
//! 3. generate the compact optimized test stimulus,
//! 4. verify it with a single fault-simulation campaign and report
//!    coverage per fault class (the paper's Table III step).
//!
//! Run with: `cargo run --release --example post_manufacturing`

use rand::SeedableRng;
use snn_mtfc::datasets::{materialize, materialize_inputs, NmnistLike, SpikeDataset};
use snn_mtfc::faults::{
    criticality, CoverageReport, FaultSimConfig, FaultSimulator, FaultUniverse,
};
use snn_mtfc::model::train::{evaluate, TrainConfig, Trainer};
use snn_mtfc::model::{LifParams, NetworkBuilder};
use snn_mtfc::testgen::{TestGenConfig, TestGenerator};

fn main() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(1);

    // --- 1. Train the device's SNN --------------------------------------
    let ds = NmnistLike::new(12, 30, 400, 3);
    let mut net = NetworkBuilder::new_spatial(2, 12, 12, LifParams::default())
        .avg_pool(2)
        .dense(24)
        .dense(10)
        .build(&mut rng);
    let train = materialize(&ds, 0..80);
    let test = materialize(&ds, 80..120);
    let mut trainer = Trainer::new(&net, TrainConfig::default());
    for epoch in 0..4 {
        let mut loss = 0.0;
        for batch in train.chunks(8) {
            loss = trainer.train_batch(&mut net, batch);
        }
        println!("epoch {epoch}: loss {loss:.3}");
    }
    println!("test accuracy: {:.1}%", evaluate(&net, &test) * 100.0);

    // --- 2. Fault universe + criticality labelling ----------------------
    let universe = FaultUniverse::standard(&net);
    let label_inputs = materialize_inputs(&ds, 80..100);
    let labels = criticality::classify(
        &net,
        &universe,
        universe.faults(),
        &label_inputs,
        criticality::CriticalityConfig { threads: 0, max_samples: Some(8) },
    );
    println!(
        "faults: {} total, {} critical / {} benign (labelled in {:?})",
        universe.len(),
        labels.critical_count(),
        labels.benign_count(),
        labels.elapsed
    );

    // --- 3. Generate the optimized test ---------------------------------
    let mut cfg = TestGenConfig::fast();
    cfg.stage1_steps = 120;
    cfg.stage2_steps = 60;
    cfg.max_iterations = 6;
    let generated = TestGenerator::new(&net, cfg).generate(&mut rng);
    println!(
        "test: {} chunks, {} ticks (≈{:.2} dataset samples), {:.1}% neurons activated",
        generated.chunks.len(),
        generated.test_steps(),
        generated.duration_samples(ds.steps()),
        generated.activated_fraction() * 100.0
    );

    // --- 4. Verification campaign + coverage report ---------------------
    let stimulus = generated.assembled();
    let sim = FaultSimulator::new(&net, FaultSimConfig::default());
    let campaign = sim.detect(&universe, universe.faults(), std::slice::from_ref(&stimulus));
    let report = CoverageReport::compute(universe.faults(), &labels.critical, &campaign.per_fault);
    println!("coverage (critical neuron):  {}", report.critical_neuron);
    println!("coverage (critical synapse): {}", report.critical_synapse);
    println!("coverage (benign neuron):    {}", report.benign_neuron);
    println!("coverage (benign synapse):   {}", report.benign_synapse);
    println!("overall: {}", report.overall());
}
