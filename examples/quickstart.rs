//! Quickstart: generate a minimum-time maximum-fault-coverage test for a
//! small spiking neural network, then verify its fault coverage with one
//! fault-simulation campaign.
//!
//! Run with: `cargo run --example quickstart`

use rand::SeedableRng;
use snn_mtfc::faults::{FaultSimConfig, FaultSimulator, FaultUniverse};
use snn_mtfc::model::{LifParams, NetworkBuilder};
use snn_mtfc::testgen::{TestGenConfig, TestGenerator};

fn main() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(42);

    // 1. An SNN as it would be mapped on a neuromorphic accelerator:
    //    16 input channels → 24 hidden LIF neurons → 4 output classes.
    let net = NetworkBuilder::new(16, LifParams::default()).dense(24).dense(4).build(&mut rng);
    println!("{}", net.summary());

    // 2. The behavioural fault universe: 2 faults per neuron
    //    (saturated, dead) + 3 per synapse (dead, sat+, sat−).
    let universe = FaultUniverse::standard(&net);
    println!("fault universe: {} faults", universe.len());

    // 3. Generate the optimized test stimulus — no fault simulation
    //    happens inside this loop; the five loss functions steer it.
    let test = TestGenerator::new(&net, TestGenConfig::fast()).generate(&mut rng);
    println!(
        "generated {} chunk(s), {} ticks total, activating {:.1}% of neurons in {:?}",
        test.chunks.len(),
        test.test_steps(),
        test.activated_fraction() * 100.0,
        test.runtime
    );

    // 4. One verification campaign at the end (Eq. 3/4).
    let stimulus = test.assembled();
    let sim = FaultSimulator::new(&net, FaultSimConfig::default());
    let outcome = sim.detect(&universe, universe.faults(), std::slice::from_ref(&stimulus));
    println!(
        "fault coverage: {:.2}% ({} / {} detected) in {:?}",
        outcome.fault_coverage() * 100.0,
        outcome.detected_count(),
        universe.len(),
        outcome.elapsed
    );
}
