//! The algorithm is information-coding agnostic (paper Section I): it
//! makes no assumption about whether the SNN's inputs are rate-coded or
//! time-to-first-spike (TTFS) coded. This example trains the same
//! architecture under both encodings of a small analog-feature task and
//! generates a test for each, showing the flow is identical.
//!
//! Run with: `cargo run --example coding_schemes`

use rand::Rng;
use rand::SeedableRng;
use snn_mtfc::datasets::encoding::{rate_encode, ttfs_encode};
use snn_mtfc::faults::{FaultSimConfig, FaultSimulator, FaultUniverse};
use snn_mtfc::model::train::{evaluate, TrainConfig, Trainer};
use snn_mtfc::model::{LifParams, Network, NetworkBuilder};
use snn_mtfc::testgen::{TestGenConfig, TestGenerator};
use snn_tensor::Tensor;

/// Two-class analog task: class = which half of the feature vector has
/// the larger mean.
fn features(rng: &mut impl Rng) -> (Vec<f32>, usize) {
    let n = 10;
    let label = rng.gen_range(0..2usize);
    let v: Vec<f32> = (0..n)
        .map(|i| {
            let hot = if label == 0 { i < n / 2 } else { i >= n / 2 };
            if hot {
                rng.gen_range(0.5..0.9)
            } else {
                rng.gen_range(0.05..0.3)
            }
        })
        .collect();
    (v, label)
}

fn run(name: &str, encode: impl Fn(&mut rand::rngs::StdRng, &[f32]) -> Tensor) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(5);
    let mut net: Network =
        NetworkBuilder::new(10, LifParams::default()).dense(16).dense(2).build(&mut rng);

    let make_set = |n: usize, rng: &mut rand::rngs::StdRng| -> Vec<(Tensor, usize)> {
        (0..n)
            .map(|_| {
                let (v, label) = features(rng);
                (encode(rng, &v), label)
            })
            .collect()
    };
    let train = make_set(60, &mut rng);
    let test = make_set(30, &mut rng);

    let mut trainer = Trainer::new(&net, TrainConfig::default());
    for _ in 0..8 {
        for batch in train.chunks(8) {
            trainer.train_batch(&mut net, batch);
        }
    }
    let acc = evaluate(&net, &test);

    // Identical test-generation flow regardless of the coding scheme.
    let generated = TestGenerator::new(&net, TestGenConfig::fast()).generate(&mut rng);
    let universe = FaultUniverse::standard(&net);
    let sim = FaultSimulator::new(&net, FaultSimConfig::default());
    let stimulus = generated.assembled();
    let fc =
        sim.detect(&universe, universe.faults(), std::slice::from_ref(&stimulus)).fault_coverage();

    println!(
        "{name:<12} accuracy {:>5.1}%   test {:>3} ticks   activated {:>5.1}%   FC {:>5.1}%",
        acc * 100.0,
        generated.test_steps(),
        generated.activated_fraction() * 100.0,
        fc * 100.0
    );
}

fn main() {
    println!("same architecture, two coding schemes, one test-generation flow:\n");
    run("rate-coded", |rng, v| rate_encode(rng, v, 30));
    run("TTFS-coded", |_rng, v| ttfs_encode(v, 30));
}
