//! The extended flow: everything this reproduction adds beyond the
//! paper, on one small network —
//!
//! 1. generate with the `L6` saturation-margin extension loss enabled,
//! 2. compact the test by activation coverage (drop redundant chunks),
//! 3. statistically estimate the fault coverage with a Wilson confidence
//!    interval instead of an exhaustive campaign,
//! 4. cross-check the stimulus on the event-driven accelerator model and
//!    report its spike-traffic cost.
//!
//! Run with: `cargo run --release --example extended_flow`

use rand::SeedableRng;
use snn_mtfc::faults::{estimate_coverage, FaultSimConfig, FaultSimulator, FaultUniverse};
use snn_mtfc::model::{event_forward, LifParams, NetworkBuilder, NeuronFaultMap, RecordOptions};
use snn_mtfc::testgen::{compact_by_activation, TestGenConfig, TestGenerator};

fn main() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(21);
    let net =
        NetworkBuilder::new(20, LifParams::default()).dense(32).dense(16).dense(5).build(&mut rng);
    println!("{}", net.summary());

    // --- 1. Generation with L6 ------------------------------------------
    let mut cfg = TestGenConfig::fast();
    cfg.use_l6 = true;
    cfg.max_iterations = 6;
    let test = TestGenerator::new(&net, cfg).generate(&mut rng);
    println!(
        "generated {} chunks / {} ticks, {:.1}% neurons activated",
        test.chunks.len(),
        test.test_steps(),
        test.activated_fraction() * 100.0
    );

    // --- 2. Compaction ----------------------------------------------------
    let (compact, kept) = compact_by_activation(&net, &test, 1.0);
    println!(
        "compaction kept chunks {:?}: {} → {} ticks",
        kept,
        test.test_steps(),
        compact.test_steps()
    );

    // --- 3. Statistical coverage estimate --------------------------------
    let universe = FaultUniverse::standard(&net);
    let sim = FaultSimulator::new(&net, FaultSimConfig::default());
    let stimulus = compact.assembled();
    let est = estimate_coverage(&sim, &universe, std::slice::from_ref(&stimulus), 400, &mut rng);
    println!("estimated fault coverage: {est}");

    // --- 4. Event-driven cross-check + traffic cost ----------------------
    let dense_trace = net.forward(&stimulus, RecordOptions::spikes_only());
    let (event_outputs, stats) = event_forward(&net, &stimulus, &NeuronFaultMap::new());
    assert_eq!(
        event_outputs.last().expect("network has layers"),
        dense_trace.output(),
        "engines must agree spike-for-spike"
    );
    println!(
        "event-driven check passed: {} routed spikes, {} synaptic ops for the whole test",
        stats.routed_spikes, stats.synaptic_ops
    );
}
