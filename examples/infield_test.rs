//! In-field periodic testing: because the optimized stimulus is only a
//! few dataset-samples long, it can live in a small on-chip ROM and run
//! during idle windows over the device's lifetime.
//!
//! This example
//! 1. generates and "burns" the compact test (serialized event list +
//!    golden output signature),
//! 2. simulates months of operation in which a synapse ages to zero and a
//!    neuron dies,
//! 3. re-runs the stored test after each degradation and checks the
//!    output signature (Eq. 3) — flagging the device the moment a fault
//!    lands.
//!
//! Run with: `cargo run --example infield_test`

use rand::SeedableRng;
use snn_mtfc::faults::{Fault, FaultKind, FaultSimConfig, FaultSimulator, FaultUniverse};
use snn_mtfc::model::{LifParams, NetworkBuilder, RecordOptions};
use snn_mtfc::testgen::{TestGenConfig, TestGenerator};

fn main() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(7);
    let net = NetworkBuilder::new(12, LifParams::default()).dense(20).dense(4).build(&mut rng);

    // --- 1. Test program development (factory) --------------------------
    let test = TestGenerator::new(&net, TestGenConfig::fast()).generate(&mut rng);
    let stimulus = test.assembled();
    let golden = net.forward(&stimulus, RecordOptions::spikes_only());
    let mut rom = Vec::new();
    test.write_events(&mut rom).expect("serializing to memory cannot fail");
    println!(
        "test ROM: {} bytes for {} ticks of stimulus + {}-spike golden signature",
        rom.len(),
        test.test_steps(),
        golden.output().count_nonzero()
    );

    // --- 2./3. Lifetime: degrade, self-test, repeat ----------------------
    let universe = FaultUniverse::standard(&net);
    let sim = FaultSimulator::new(&net, FaultSimConfig::default());
    let aging_events: Vec<(&str, Fault)> = vec![
        (
            "month 06: synapse ages to zero weight",
            *universe
                .faults()
                .iter()
                .find(|f| f.kind == FaultKind::SynapseDead)
                .expect("universe has synapse faults"),
        ),
        (
            "month 18: hidden neuron dies",
            *universe
                .faults()
                .iter()
                .find(|f| f.kind == FaultKind::NeuronDead)
                .expect("universe has neuron faults"),
        ),
    ];

    println!("\nmonth 00: healthy device");
    let healthy = sim.detect(&universe, &[], std::slice::from_ref(&stimulus));
    assert_eq!(healthy.detected_count(), 0);
    println!("  self-test signature matches ✓");

    for (when, fault) in aging_events {
        println!("\n{when}");
        let outcome =
            sim.detect(&universe, std::slice::from_ref(&fault), std::slice::from_ref(&stimulus));
        let o = &outcome.per_fault[0];
        if o.detected {
            println!(
                "  self-test FAILED (output spike-train distance {}): fault {:?} caught — \
                 schedule remapping/retirement",
                o.distance, fault.kind
            );
        } else {
            println!("  self-test passed — fault escaped this stimulus");
        }
    }
}
