//! End-to-end test of the `snn-service` job server over real loopback TCP:
//! submit → progress stream → result, mid-run cancellation, and job-store
//! persistence across a server restart.

use snn_mtfc::service::{
    Client, JobEventPayload, JobSpec, JobState, ModelSpec, Server, ServiceConfig,
};
use std::net::SocketAddr;
use std::path::PathBuf;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

fn temp_state_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("snn-service-e2e-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn boot(state_dir: &PathBuf) -> (SocketAddr, JoinHandle<std::io::Result<()>>) {
    let server = Server::bind(ServiceConfig::loopback(state_dir)).expect("bind loopback");
    let addr = server.local_addr();
    (addr, std::thread::spawn(move || server.run()))
}

/// A repro-preset job on a small synthetic network, capped to one outer
/// iteration so the lifecycle test finishes promptly.
fn quick_repro_spec(seed: u64) -> JobSpec {
    JobSpec {
        max_iterations: Some(1),
        t_limit_secs: Some(120),
        ..JobSpec::synthetic_repro(6, vec![12], 4, seed)
    }
}

/// Polls `status` until the job leaves `Queued` (i.e. a worker picked it
/// up) or the deadline passes.
fn wait_until_running(client: &mut Client, job: u64, deadline: Duration) -> JobState {
    let start = Instant::now();
    loop {
        let state = client.status(job).expect("status").state;
        if state != JobState::Queued || start.elapsed() > deadline {
            return state;
        }
        std::thread::sleep(Duration::from_millis(50));
    }
}

#[test]
fn submit_watch_cancel_and_restart_over_tcp() {
    let state_dir = temp_state_dir("lifecycle");
    let (addr, server) = boot(&state_dir);

    let done_job;
    let cancelled_job;
    {
        let mut client = Client::connect(addr).expect("connect");
        assert_eq!(client.ping().expect("ping"), snn_mtfc::service::PROTOCOL_VERSION);

        // --- 1. A repro-scale job runs to completion with live progress.
        done_job = client.submit(quick_repro_spec(7)).expect("submit");
        let mut progress_events = 0usize;
        let mut state_events = Vec::new();
        let record = client
            .watch(done_job, |event| match &event.payload {
                JobEventPayload::Progress { .. } => progress_events += 1,
                JobEventPayload::State { state, .. } => state_events.push(*state),
            })
            .expect("watch to completion");
        assert_eq!(record.state, JobState::Done, "error: {:?}", record.error);
        assert!(progress_events >= 1, "no progress events observed");
        assert!(state_events.contains(&JobState::Done));
        let result = record.result.expect("done job carries a result");
        assert!(result.test_steps > 0);
        assert!(result.activated > 0);
        assert!(result.activation_coverage > 0.0);
        let analysis = result.analysis.as_ref().expect("result carries an analysis summary");
        assert_eq!(analysis.collapsed + analysis.representatives, analysis.faults);
        assert!(analysis.faults > 0);
        // The stimulus file persisted server-side and is parseable.
        let events_path = result.events_path.expect("events file recorded");
        let text = std::fs::read_to_string(&events_path).expect("events file exists");
        let stimulus = snn_mtfc::testgen::parse_events(&text).expect("events parse");
        assert_eq!(stimulus.shape().dim(0), result.test_steps);

        // --- 2. A long job (uncapped repro preset) cancels mid-run.
        cancelled_job =
            client.submit(JobSpec::synthetic_repro(6, vec![12], 4, 8)).expect("submit long job");
        let state = wait_until_running(&mut client, cancelled_job, Duration::from_secs(30));
        assert!(
            state == JobState::Running || state == JobState::Queued,
            "unexpected state before cancel: {state}"
        );
        client.cancel(cancelled_job).expect("cancel");
        let record = client.watch(cancelled_job, |_| {}).expect("watch cancelled job");
        assert_eq!(record.state, JobState::Cancelled, "error: {:?}", record.error);
        assert!(record.error.is_some(), "cancellation records a reason");

        // --- 3. Both jobs are visible in the listing.
        let jobs = client.list().expect("list");
        assert!(jobs.iter().any(|r| r.id == done_job && r.state == JobState::Done));
        assert!(jobs.iter().any(|r| r.id == cancelled_job && r.state == JobState::Cancelled));

        client.shutdown().expect("shutdown");
    }
    server.join().expect("server thread").expect("server run");

    // --- 4. A restarted server over the same state dir still knows both
    // jobs, with the completed result intact.
    let (addr, server) = boot(&state_dir);
    {
        let mut client = Client::connect(addr).expect("reconnect");
        let record = client.status(done_job).expect("status after restart");
        assert_eq!(record.state, JobState::Done);
        assert!(record.result.expect("result survives restart").activated > 0);
        let record = client.status(cancelled_job).expect("cancelled status after restart");
        assert_eq!(record.state, JobState::Cancelled);
        client.shutdown().expect("second shutdown");
    }
    server.join().expect("server thread").expect("server run");

    let _ = std::fs::remove_dir_all(&state_dir);
}

#[test]
fn bad_requests_get_one_line_errors() {
    let state_dir = temp_state_dir("errors");
    let (addr, server) = boot(&state_dir);
    {
        let mut client = Client::connect(addr).expect("connect");

        // Unknown job id.
        let err = client.status(999).expect_err("unknown job is an error");
        assert!(err.contains("no such job"), "got: {err}");

        // Unknown preset is rejected at submit time.
        let mut spec = JobSpec::synthetic_repro(4, vec![6], 2, 1);
        spec.preset = "warp-speed".into();
        let err = client.submit(spec).expect_err("bad preset rejected");
        assert!(err.contains("unknown preset"), "got: {err}");

        // Degenerate model shapes are rejected at submit time.
        let mut spec = JobSpec::synthetic_repro(4, vec![6], 2, 1);
        spec.model = ModelSpec::Synthetic { inputs: 0, hidden: vec![], outputs: 2, seed: 1 };
        let err = client.submit(spec).expect_err("empty layer rejected");
        assert!(err.contains("non-empty"), "got: {err}");

        // Errors are in-band responses; the connection keeps working.
        use snn_mtfc::service::{Request, Response};
        let resp = client.request(&Request::Status { job: 1 }).expect("still talking");
        assert!(
            matches!(&resp, Response::Error { message } if message.contains("no such job")),
            "got: {resp:?}"
        );
        let pong = client.request(&Request::Ping).expect("ping after errors");
        assert!(matches!(pong, Response::Pong { .. }));

        client.shutdown().expect("shutdown");
    }
    server.join().expect("server thread").expect("server run");
    let _ = std::fs::remove_dir_all(&state_dir);
}

#[test]
fn metrics_snapshot_reports_job_and_generator_series() {
    use snn_mtfc::obs::metrics::MetricValue;

    let state_dir = temp_state_dir("metrics");
    let (addr, server) = boot(&state_dir);
    {
        let mut client = Client::connect(addr).expect("connect");
        let mut spec = quick_repro_spec(11);
        spec.evaluate_coverage = true;
        let job = client.submit(spec).expect("submit");
        let record = client.watch(job, |_| {}).expect("watch");
        assert_eq!(record.state, JobState::Done, "error: {:?}", record.error);

        // The result carries the per-phase timing breakdown.
        let result = record.result.expect("result");
        let timings = result.timings.expect("timings stamped into the result");
        assert!(timings.generation_ms > 0, "generation took measurable time: {timings:?}");
        assert!(
            timings.generation_ms.saturating_add(timings.fault_sim_ms) <= result.runtime_ms + 1,
            "phases fit inside the total: {timings:?} vs {} ms",
            result.runtime_ms
        );

        // The Metrics request returns a registry snapshot with a
        // non-zero job wall-time histogram and generator counters.
        let snapshot = client.metrics().expect("metrics");
        let find = |name: &str| {
            snapshot
                .metrics
                .iter()
                .find(|m| m.name == name)
                .unwrap_or_else(|| panic!("metric {name} missing from snapshot"))
        };
        match &find("snn_service_job_wall_seconds").value {
            MetricValue::Histogram(h) => {
                assert!(h.count >= 1, "at least one finished job observed");
                assert_eq!(h.buckets.iter().sum::<u64>(), h.count, "buckets sum to count");
            }
            other => panic!("job wall time should be a histogram, got {other:?}"),
        }
        match &find("snn_testgen_iterations_total").value {
            MetricValue::Counter(v) => assert!(*v >= 1, "generator iterations counted"),
            other => panic!("iterations should be a counter, got {other:?}"),
        }
        match &find("snn_faultsim_faults_simulated_total").value {
            MetricValue::Counter(v) => assert!(*v >= 1, "faults simulated counted"),
            other => panic!("faults simulated should be a counter, got {other:?}"),
        }
        match &find("snn_service_jobs_done").value {
            MetricValue::Gauge(v) => assert!(*v >= 1.0, "done-jobs gauge tracks the job"),
            other => panic!("jobs-by-state should be a gauge, got {other:?}"),
        }

        client.shutdown().expect("shutdown");
    }
    server.join().expect("server thread").expect("server run");
    let _ = std::fs::remove_dir_all(&state_dir);
}

#[test]
fn queued_jobs_cancel_without_running() {
    let state_dir = temp_state_dir("queued-cancel");
    // A single-worker server so a second submission must queue.
    let server = Server::bind(ServiceConfig { workers: 1, ..ServiceConfig::loopback(&state_dir) })
        .expect("bind");
    let addr = server.local_addr();
    let handle = std::thread::spawn(move || server.run());
    {
        let mut client = Client::connect(addr).expect("connect");
        // Occupy the only worker with a long job.
        let blocker =
            client.submit(JobSpec::synthetic_repro(6, vec![12], 4, 3)).expect("submit blocker");
        let queued = client.submit(quick_repro_spec(4)).expect("submit queued");
        client.cancel(queued).expect("cancel queued job");
        let record = client.status(queued).expect("status");
        assert_eq!(record.state, JobState::Cancelled);
        assert!(record.error.unwrap().contains("queued"));
        client.cancel(blocker).expect("cancel blocker");
        client.watch(blocker, |_| {}).expect("blocker terminal");
        client.shutdown().expect("shutdown");
    }
    handle.join().expect("server thread").expect("server run");
    let _ = std::fs::remove_dir_all(&state_dir);
}
