//! Integration tests for the paper's comparative claims: the proposed
//! optimized test vs the prior-art baselines, on one shared miniature
//! benchmark.

use rand::SeedableRng;
use snn_mtfc::baselines::{dataset_greedy, random_inputs, BaselineConfig};
use snn_mtfc::datasets::{materialize_inputs, NmnistLike};
use snn_mtfc::faults::{FaultSimConfig, FaultSimulator, FaultUniverse};
use snn_mtfc::model::{LifParams, Network, NetworkBuilder};
use snn_mtfc::testgen::{TestGenConfig, TestGenerator};

fn net_and_dataset() -> (Network, NmnistLike) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(1);
    let net = NetworkBuilder::new_spatial(2, 10, 10, LifParams::default())
        .avg_pool(2)
        .dense(16)
        .dense(10)
        .build(&mut rng);
    let ds = NmnistLike::new(10, 24, 200, 2);
    (net, ds)
}

/// The structural claim behind Table IV: the proposed method spends zero
/// fault-simulation campaigns during generation, the baselines spend one
/// per candidate.
#[test]
fn proposed_method_needs_no_fault_simulation_during_generation() {
    let (net, ds) = net_and_dataset();
    let universe = FaultUniverse::standard(&net);
    let mut rng = rand::rngs::StdRng::seed_from_u64(3);

    // Proposed: generation is pure optimization (type-level: the
    // generator has no access to a simulator), verified afterwards.
    let ours = TestGenerator::new(&net, TestGenConfig::fast()).generate(&mut rng);
    let stimulus = ours.assembled();
    let sim = FaultSimulator::new(&net, FaultSimConfig::default());
    let ours_fc =
        sim.detect(&universe, universe.faults(), std::slice::from_ref(&stimulus)).fault_coverage();

    // Baseline: every candidate costs a campaign.
    let pool = materialize_inputs(&ds, 0..5);
    let cfg = BaselineConfig { target_coverage: 0.95, max_inputs: 5, threads: 1 };
    let greedy = dataset_greedy(&net, &universe, universe.faults(), &pool, &cfg);
    assert_eq!(greedy.fault_sim_campaigns, 5);
    assert!(ours_fc > 0.0);
}

/// Shape of the paper's Table IV: at comparable coverage, the optimized
/// test is much shorter than an accumulation of dataset samples.
#[test]
fn optimized_test_is_shorter_than_baselines_at_comparable_coverage() {
    let (net, ds) = net_and_dataset();
    let universe = FaultUniverse::standard(&net);
    let mut rng = rand::rngs::StdRng::seed_from_u64(4);

    let ours = TestGenerator::new(&net, TestGenConfig::fast()).generate(&mut rng);
    let stimulus = ours.assembled();
    let sim = FaultSimulator::new(&net, FaultSimConfig::default());
    let ours_fc =
        sim.detect(&universe, universe.faults(), std::slice::from_ref(&stimulus)).fault_coverage();

    let pool = materialize_inputs(&ds, 0..12);
    let cfg = BaselineConfig {
        target_coverage: ours_fc, // ask the baseline to match us
        max_inputs: 12,
        threads: 1,
    };
    let greedy = dataset_greedy(&net, &universe, universe.faults(), &pool, &cfg);

    // Either the baseline failed to reach our coverage with the whole
    // pool, or it needed a (much) longer test to do so.
    if greedy.coverage() >= ours_fc {
        assert!(
            greedy.test_steps() >= ours.test_steps() / 2,
            "baseline matched coverage with an implausibly short test: {} vs {} ticks",
            greedy.test_steps(),
            ours.test_steps()
        );
    } else {
        assert!(greedy.coverage() < ours_fc);
    }
}

/// Random inputs improve coverage monotonically but plateau — the greedy
/// saturation behaviour the paper describes for [20].
#[test]
fn random_baseline_saturates() {
    let (net, _) = net_and_dataset();
    let universe = FaultUniverse::standard(&net);
    let mut rng = rand::rngs::StdRng::seed_from_u64(5);
    let cfg = BaselineConfig { target_coverage: 1.0, max_inputs: 25, threads: 1 };
    let r = random_inputs(&net, &universe, universe.faults(), 24, &mut rng, &cfg);
    // Monotone non-decreasing curve with diminishing increments.
    for w in r.coverage_history.windows(2) {
        assert!(w[1] >= w[0]);
    }
    if r.coverage_history.len() >= 4 {
        let first_gain = r.coverage_history[1] - r.coverage_history[0];
        let last = r.coverage_history.len() - 1;
        let last_gain = r.coverage_history[last] - r.coverage_history[last - 1];
        assert!(
            last_gain <= first_gain + 1e-9,
            "late additions should gain no more than early ones"
        );
    }
    // Perfect coverage of the whole universe (incl. benign-invisible
    // faults) is not reachable with a handful of random inputs.
    assert!(r.coverage() < 1.0);
}
