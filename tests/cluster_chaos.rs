//! Chaos test for distributed campaigns: one of two real worker
//! processes is SIGKILLed while it holds a chunk lease, and the
//! campaign must still complete with a verdict digest bit-identical to
//! the single-process path — the expired lease is re-issued under a
//! bumped epoch to the surviving worker, with no fault lost or counted
//! twice.

use snn_mtfc::service::{Client, JobSpec, JobState, ModelSpec, Server, ServiceConfig};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

const WORKER_NAMES: [&str; 2] = ["chaos-a", "chaos-b"];

fn temp_state_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("snn-cluster-chaos-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The campaign under test: big enough that chunks take a few
/// milliseconds each, so a kill observed "holding a lease" usually
/// lands mid-chunk.
fn coverage_spec() -> JobSpec {
    JobSpec {
        model: ModelSpec::Synthetic { inputs: 16, hidden: vec![64], outputs: 10, seed: 5 },
        preset: "fast".into(),
        seed: 5,
        max_iterations: None,
        t_limit_secs: None,
        evaluate_coverage: true,
        threads: 1,
        reliability: None,
        engine: None,
    }
}

/// The single-process reference digest for [`coverage_spec`], computed
/// through the same service code path with no cluster workers.
fn local_reference_digest() -> String {
    let state_dir = temp_state_dir("local");
    let server = Server::bind(ServiceConfig::loopback(&state_dir)).expect("bind local server");
    let addr = server.local_addr();
    let handle = std::thread::spawn(move || server.run());
    let mut client = Client::connect(addr).expect("connect local");
    let job = client.submit(coverage_spec()).expect("submit local");
    let record = client.watch(job, |_| {}).expect("watch local");
    assert_eq!(record.state, JobState::Done, "local error: {:?}", record.error);
    let digest = record
        .result
        .expect("local result")
        .verdict_digest
        .expect("local job carries a verdict digest");
    client.shutdown().expect("shutdown local");
    handle.join().expect("local server thread").expect("local server run");
    let _ = std::fs::remove_dir_all(&state_dir);
    digest
}

fn spawn_worker(addr: std::net::SocketAddr, name: &str) -> Child {
    Command::new(env!("CARGO_BIN_EXE_snn-mtfc"))
        .args(["worker", "--addr", &addr.to_string(), "--name", name, "--threads", "1"])
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn worker process")
}

/// One run of the scenario. `Ok` carries `chunks_reissued`; zero means
/// the kill raced a chunk boundary and the attempt is inconclusive.
fn run_scenario(attempt: usize, reference: &str) -> Result<u64, String> {
    let state_dir = temp_state_dir(&format!("run{attempt}"));
    let server = Server::bind(ServiceConfig {
        workers: 1,
        expect_workers: 2,
        chunk_size: 256,
        lease_ms: 1200,
        ..ServiceConfig::loopback(&state_dir)
    })
    .expect("bind cluster server");
    let addr = server.local_addr();
    let server_thread = std::thread::spawn(move || server.run());

    let mut children: Vec<(String, Child)> =
        WORKER_NAMES.iter().map(|n| (n.to_string(), spawn_worker(addr, n))).collect();

    let mut client = Client::connect(addr).expect("connect");
    let job = client.submit(coverage_spec()).expect("submit");

    // Watch cluster state from a second connection until some worker
    // holds a lease, then SIGKILL exactly that worker.
    let mut status_client = Client::connect(addr).expect("status connect");
    let deadline = Instant::now() + Duration::from_secs(60);
    let killed = loop {
        if Instant::now() > deadline {
            break None;
        }
        let status = status_client.cluster_status().expect("cluster status");
        let holder = status.workers.iter().find(|w| w.lease.is_some()).map(|w| w.name.clone());
        if let Some(name) = holder {
            let slot =
                children.iter_mut().find(|(n, _)| *n == name).expect("lease holder is one of ours");
            slot.1.kill().expect("SIGKILL worker");
            break Some(name);
        }
        std::thread::sleep(Duration::from_millis(2));
    };
    let killed = killed.expect("a worker took a lease within the deadline");

    // The campaign must still complete — the surviving worker picks up
    // the dead worker's chunks after the lease expires.
    let record = client.watch(job, |_| {}).expect("watch");
    assert_eq!(record.state, JobState::Done, "job error after kill: {:?}", record.error);
    let result = record.result.expect("result");
    let digest = result.verdict_digest.expect("digest");
    assert_eq!(
        digest, reference,
        "distributed digest diverged from the local path after killing {killed}"
    );
    let total = result.faults_total.expect("fault total");
    let detected = result.faults_detected.expect("fault detected count");
    assert!(total > 0 && detected <= total, "implausible accounting: {detected}/{total}");

    let status = status_client.cluster_status().expect("final cluster status");
    client.shutdown().expect("shutdown");
    // Server::run joins every connection handler; both clients must be
    // dropped (closing their sockets) before the server thread can exit.
    drop(client);
    drop(status_client);
    server_thread.join().expect("server thread").expect("server run");
    for (_, mut child) in children {
        // The killed child is already dead; the survivor exits on the
        // coordinator's shutdown grant. Reap both.
        let _ = child.kill();
        let _ = child.wait();
    }
    let _ = std::fs::remove_dir_all(&state_dir);
    Ok(status.chunks_reissued)
}

#[test]
fn killing_a_leased_worker_reissues_its_chunks_and_keeps_the_digest_exact() {
    let reference = local_reference_digest();

    // Every attempt must complete with the exact digest; the reissue
    // counter can legitimately be zero if the SIGKILL raced a chunk
    // boundary, so retry the scenario until a reissue is observed.
    const ATTEMPTS: usize = 4;
    for attempt in 0..ATTEMPTS {
        let reissued = run_scenario(attempt, &reference).expect("scenario");
        if reissued > 0 {
            return;
        }
        eprintln!("attempt {attempt}: kill raced a chunk boundary (0 reissues), retrying");
    }
    panic!("no lease reissue observed in {ATTEMPTS} attempts");
}
