//! End-to-end distributed tracing: a coverage campaign over two real
//! worker processes must merge into one coherent span tree in the
//! coordinator's collector — every worker chunk span nested under its
//! synthetic `worker:<name>` wrapper, every wrapper nested under the
//! coordinator's `cluster.campaign` span, and no orphan records.

use snn_mtfc::obs;
use snn_mtfc::service::{Client, JobSpec, JobState, ModelSpec, Server, ServiceConfig};
use std::collections::{BTreeMap, BTreeSet};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::sync::Arc;

const WORKER_NAMES: [&str; 2] = ["trace-a", "trace-b"];

fn temp_state_dir() -> PathBuf {
    let dir = std::env::temp_dir().join(format!("snn-trace-cluster-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn coverage_spec() -> JobSpec {
    JobSpec {
        model: ModelSpec::Synthetic { inputs: 16, hidden: vec![64], outputs: 10, seed: 5 },
        preset: "fast".into(),
        seed: 5,
        max_iterations: None,
        t_limit_secs: None,
        evaluate_coverage: true,
        threads: 1,
        reliability: None,
        engine: None,
    }
}

fn spawn_worker(addr: std::net::SocketAddr, name: &str) -> Child {
    Command::new(env!("CARGO_BIN_EXE_snn-mtfc"))
        .args(["worker", "--addr", &addr.to_string(), "--name", name, "--threads", "1", "--trace"])
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn worker process")
}

#[test]
fn two_worker_campaign_merges_into_one_coherent_tree() {
    // The coordinator runs in this process, so the merged trace lands in
    // a collector installed here.
    let collector = Arc::new(obs::Collector::new());
    obs::trace::install(Arc::clone(&collector));

    let state_dir = temp_state_dir();
    let server = Server::bind(ServiceConfig {
        workers: 1,
        expect_workers: 2,
        chunk_size: 64,
        ..ServiceConfig::loopback(&state_dir)
    })
    .expect("bind server");
    let addr = server.local_addr();
    let server_thread = std::thread::spawn(move || server.run());
    let mut workers: Vec<Child> =
        WORKER_NAMES.iter().map(|name| spawn_worker(addr, name)).collect();

    let mut client = Client::connect(addr).expect("connect");
    let job = client.submit(coverage_spec()).expect("submit");
    let record = client.watch(job, |_| {}).expect("watch");
    assert_eq!(record.state, JobState::Done, "job error: {:?}", record.error);
    client.shutdown().expect("shutdown");
    server_thread.join().expect("server thread").expect("server run");
    for child in &mut workers {
        let _ = child.wait();
    }
    let _ = std::fs::remove_dir_all(&state_dir);

    obs::trace::uninstall();
    let records = collector.finished();
    let by_id: BTreeMap<u64, &obs::SpanRecord> = records.iter().map(|r| (r.id, r)).collect();

    // No orphans anywhere in the merged trace: every parent id resolves.
    assert_eq!(by_id.len(), records.len(), "span ids are unique after adoption");
    for r in &records {
        if let Some(parent) = r.parent {
            assert!(by_id.contains_key(&parent), "orphan span {:?} (parent {parent})", r.name);
        }
    }

    let campaigns: Vec<_> = records.iter().filter(|r| r.name == "cluster.campaign").collect();
    assert_eq!(campaigns.len(), 1, "exactly one campaign root");
    let campaign = campaigns[0];

    // Both workers contributed a wrapper span, parented under the
    // campaign root and carrying its chunk tally as an attribute.
    let wrappers: Vec<_> = records.iter().filter(|r| r.name.starts_with("worker:")).collect();
    let wrapper_names: BTreeSet<&str> = wrappers.iter().map(|r| r.name.as_str()).collect();
    assert_eq!(
        wrapper_names,
        BTreeSet::from(["worker:trace-a", "worker:trace-b"]),
        "both workers appear in the merged trace"
    );
    let wrapper_ids: BTreeSet<u64> = wrappers.iter().map(|r| r.id).collect();
    for w in &wrappers {
        assert_eq!(w.parent, Some(campaign.id), "{} nests under the campaign span", w.name);
    }

    // Every shipped chunk span sits under a wrapper, and each wrapper's
    // `chunks` attribute matches the chunk spans adopted beneath it —
    // the deterministic tree shape the coordinator promises.
    let chunks: Vec<_> = records.iter().filter(|r| r.name == "cluster.chunk").collect();
    assert!(!chunks.is_empty(), "worker chunk spans were shipped back");
    for c in &chunks {
        let parent = c.parent.expect("chunk spans are parented");
        assert!(wrapper_ids.contains(&parent), "cluster.chunk nests under a worker wrapper");
    }
    for w in &wrappers {
        let nested = chunks.iter().filter(|c| c.parent == Some(w.id)).count();
        let tally: usize = w
            .attrs
            .iter()
            .find(|(k, _)| k == "chunks")
            .and_then(|(_, v)| v.parse().ok())
            .expect("wrapper carries a chunks attribute");
        assert_eq!(nested, tally, "{} chunk tally matches its subtree", w.name);
    }

    // Kernel-phase spans from the workers arrive nested inside their
    // chunk's faultsim.campaign span.
    let chunk_ids: BTreeSet<u64> = chunks.iter().map(|r| r.id).collect();
    let sims: Vec<_> = records
        .iter()
        .filter(|r| {
            r.name == "faultsim.campaign" && r.parent.is_some_and(|p| chunk_ids.contains(&p))
        })
        .collect();
    assert!(!sims.is_empty(), "each chunk ran a fault-sim campaign");
    let sim_ids: BTreeSet<u64> = sims.iter().map(|r| r.id).collect();
    let phases: Vec<_> = records
        .iter()
        .filter(|r| r.name.starts_with("phase.") && r.parent.is_some_and(|p| sim_ids.contains(&p)))
        .collect();
    assert!(
        phases.iter().any(|r| r.name == "phase.fault"),
        "worker chunks report per-fault phase spans"
    );
    assert!(
        phases.iter().any(|r| r.name.starts_with("phase.forward.")),
        "worker chunks report per-layer forward phases"
    );
}
