//! Black-box tests of the `snn-mtfc` binary: bad input must produce a
//! one-line `error: …` diagnostic and a nonzero exit code — never a panic.

use std::path::PathBuf;
use std::process::{Command, Output};

fn run(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_snn-mtfc")).args(args).output().expect("binary runs")
}

/// Asserts a failing run: nonzero exit, a single `error:` line on stderr
/// containing `needle`, and no panic backtrace.
fn assert_clean_failure(args: &[&str], needle: &str) {
    let out = run(args);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(!out.status.success(), "{args:?} unexpectedly succeeded");
    assert!(
        stderr.starts_with("error: "),
        "{args:?}: stderr should be a one-line diagnostic, got: {stderr}"
    );
    assert!(stderr.contains(needle), "{args:?}: expected {needle:?} in: {stderr}");
    assert!(!stderr.contains("panicked"), "{args:?} panicked: {stderr}");
    assert_eq!(stderr.trim_end().lines().count(), 1, "{args:?}: multi-line: {stderr}");
}

fn scratch(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("snn-mtfc-cli-{}-{name}", std::process::id()))
}

#[test]
fn help_and_no_args_succeed() {
    assert!(run(&["--help"]).status.success());
    assert!(run(&[]).status.success());
}

#[test]
fn unknown_command_fails_cleanly() {
    assert_clean_failure(&["frobnicate"], "unknown command");
}

#[test]
fn missing_flags_fail_cleanly() {
    assert_clean_failure(&["new"], "missing --input");
    assert_clean_failure(&["new", "--input", "4"], "missing --arch");
    assert_clean_failure(&["info"], "missing model path");
    assert_clean_failure(&["generate"], "missing model path");
    assert_clean_failure(&["verify"], "missing model path");
    assert_clean_failure(&["serve"], "missing --state-dir");
    assert_clean_failure(&["submit"], "--model or --synthetic");
    assert_clean_failure(&["watch"], "missing job id");
    assert_clean_failure(&["cancel"], "missing job id");
}

#[test]
fn malformed_values_fail_cleanly() {
    assert_clean_failure(
        &["new", "--input", "banana", "--arch", "dense:4", "--out", "/dev/null"],
        "bad --input",
    );
    assert_clean_failure(
        &["new", "--input", "4", "--arch", "warp:9", "--out", "/dev/null"],
        "unknown stage kind",
    );
    assert_clean_failure(&["watch", "not-a-number"], "bad job id");
    assert_clean_failure(&["cancel", "-1", "--addr", "127.0.0.1:1"], "bad job id");
}

#[test]
fn missing_and_malformed_files_fail_cleanly() {
    assert_clean_failure(&["info", "/nonexistent/model.snn"], "cannot open");

    // A file that exists but is not a model.
    let bogus = scratch("bogus.snn");
    std::fs::write(&bogus, b"this is not a model file").unwrap();
    assert_clean_failure(&["info", bogus.to_str().unwrap()], "cannot load");
    let _ = std::fs::remove_file(&bogus);
}

#[test]
fn garbage_events_fail_cleanly() {
    // A real (tiny) model plus an unparseable events file.
    let model = scratch("model.snn");
    let out = run(&[
        "new",
        "--input",
        "4",
        "--arch",
        "dense:6,dense:2",
        "--out",
        model.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));

    let events = scratch("garbage.events");
    std::fs::write(&events, "not events at all\n???\n").unwrap();
    let out = run(&["verify", model.to_str().unwrap(), events.to_str().unwrap()]);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(!out.status.success());
    assert!(stderr.starts_with("error: "), "got: {stderr}");
    assert!(!stderr.contains("panicked"), "panicked: {stderr}");

    let _ = std::fs::remove_file(&model);
    let _ = std::fs::remove_file(&events);
}

#[test]
fn analyze_reports_and_gates_on_a_sparse_model() {
    let model = scratch("analyze.snn");
    let out = run(&[
        "new",
        "--input",
        "6",
        "--arch",
        "dense:10,dense:3",
        "--out",
        model.to_str().unwrap(),
        "--sparsity",
        "0.5",
    ]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    assert!(stdout.contains("pruned"), "got: {stdout}");

    let path = model.to_str().unwrap();
    let out = run(&["analyze", path, "--self-check", "--min-collapse", "0.10"]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    assert!(stdout.contains("self-check: ok"), "got: {stdout}");
    assert!(stdout.contains("identical-weight"), "got: {stdout}");

    let out = run(&["analyze", path, "--format", "json"]);
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("\"collapse_fraction\":"));

    let out = run(&["analyze", path, "--format", "sarif"]);
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("sarif-2.1.0"));

    // An impossible gate must fail with a one-line diagnostic.
    assert_clean_failure(&["analyze", path, "--min-collapse", "0.99"], "below the required");

    let _ = std::fs::remove_file(&model);
}

#[test]
fn analyze_rejects_bad_arguments() {
    assert_clean_failure(&["analyze"], "missing model path");
    assert_clean_failure(&["analyze", "/nonexistent.snn"], "cannot open");
}

#[test]
fn service_commands_fail_cleanly_without_a_server() {
    // Port 1 on loopback is never listening.
    assert_clean_failure(&["status", "--addr", "127.0.0.1:1"], "cannot connect");
    assert_clean_failure(
        &["submit", "--synthetic", "4x6x2", "--addr", "127.0.0.1:1"],
        "cannot connect",
    );
    assert_clean_failure(&["shutdown", "--addr", "127.0.0.1:1"], "cannot connect");
}
