//! Black-box tests of the `snn-mtfc` binary: bad input must produce a
//! one-line `error: …` diagnostic and a nonzero exit code — never a panic.

use std::path::PathBuf;
use std::process::{Command, Output};

fn run(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_snn-mtfc")).args(args).output().expect("binary runs")
}

/// Asserts a failing run: nonzero exit, a single `error:` line on stderr
/// containing `needle`, and no panic backtrace.
fn assert_clean_failure(args: &[&str], needle: &str) {
    let out = run(args);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(!out.status.success(), "{args:?} unexpectedly succeeded");
    assert!(
        stderr.starts_with("error: "),
        "{args:?}: stderr should be a one-line diagnostic, got: {stderr}"
    );
    assert!(stderr.contains(needle), "{args:?}: expected {needle:?} in: {stderr}");
    assert!(!stderr.contains("panicked"), "{args:?} panicked: {stderr}");
    assert_eq!(stderr.trim_end().lines().count(), 1, "{args:?}: multi-line: {stderr}");
}

fn scratch(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("snn-mtfc-cli-{}-{name}", std::process::id()))
}

#[test]
fn help_and_no_args_succeed() {
    assert!(run(&["--help"]).status.success());
    assert!(run(&[]).status.success());
}

#[test]
fn unknown_command_fails_cleanly() {
    assert_clean_failure(&["frobnicate"], "unknown command");
}

#[test]
fn missing_flags_fail_cleanly() {
    assert_clean_failure(&["new"], "missing --input");
    assert_clean_failure(&["new", "--input", "4"], "missing --arch");
    assert_clean_failure(&["info"], "missing model path");
    assert_clean_failure(&["generate"], "missing model path");
    assert_clean_failure(&["verify"], "missing model path");
    assert_clean_failure(&["serve"], "missing --state-dir");
    assert_clean_failure(&["submit"], "--model or --synthetic");
    assert_clean_failure(&["watch"], "missing job id");
    assert_clean_failure(&["cancel"], "missing job id");
}

#[test]
fn malformed_values_fail_cleanly() {
    assert_clean_failure(
        &["new", "--input", "banana", "--arch", "dense:4", "--out", "/dev/null"],
        "bad --input",
    );
    assert_clean_failure(
        &["new", "--input", "4", "--arch", "warp:9", "--out", "/dev/null"],
        "unknown stage kind",
    );
    assert_clean_failure(&["watch", "not-a-number"], "bad job id");
    assert_clean_failure(&["cancel", "-1", "--addr", "127.0.0.1:1"], "bad job id");
}

#[test]
fn missing_and_malformed_files_fail_cleanly() {
    assert_clean_failure(&["info", "/nonexistent/model.snn"], "cannot open");

    // A file that exists but is not a model.
    let bogus = scratch("bogus.snn");
    std::fs::write(&bogus, b"this is not a model file").unwrap();
    assert_clean_failure(&["info", bogus.to_str().unwrap()], "cannot load");
    let _ = std::fs::remove_file(&bogus);
}

#[test]
fn garbage_events_fail_cleanly() {
    // A real (tiny) model plus an unparseable events file.
    let model = scratch("model.snn");
    let out = run(&[
        "new",
        "--input",
        "4",
        "--arch",
        "dense:6,dense:2",
        "--out",
        model.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));

    let events = scratch("garbage.events");
    std::fs::write(&events, "not events at all\n???\n").unwrap();
    let out = run(&["verify", model.to_str().unwrap(), events.to_str().unwrap()]);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(!out.status.success());
    assert!(stderr.starts_with("error: "), "got: {stderr}");
    assert!(!stderr.contains("panicked"), "panicked: {stderr}");

    let _ = std::fs::remove_file(&model);
    let _ = std::fs::remove_file(&events);
}

#[test]
fn analyze_reports_and_gates_on_a_sparse_model() {
    let model = scratch("analyze.snn");
    let out = run(&[
        "new",
        "--input",
        "6",
        "--arch",
        "dense:10,dense:3",
        "--out",
        model.to_str().unwrap(),
        "--sparsity",
        "0.5",
    ]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    assert!(stdout.contains("pruned"), "got: {stdout}");

    let path = model.to_str().unwrap();
    let out = run(&["analyze", path, "--self-check", "--min-collapse", "0.10"]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    assert!(stdout.contains("self-check: ok"), "got: {stdout}");
    assert!(stdout.contains("identical-weight"), "got: {stdout}");

    let out = run(&["analyze", path, "--format", "json"]);
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("\"collapse_fraction\":"));

    let out = run(&["analyze", path, "--format", "sarif"]);
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("sarif-2.1.0"));

    // An impossible gate must fail with a one-line diagnostic.
    assert_clean_failure(&["analyze", path, "--min-collapse", "0.99"], "below the required");

    let _ = std::fs::remove_file(&model);
}

#[test]
fn analyze_rejects_bad_arguments() {
    assert_clean_failure(&["analyze"], "missing model path");
    assert_clean_failure(&["analyze", "/nonexistent.snn"], "cannot open");
}

#[test]
fn trace_out_and_profile_render_the_span_tree() {
    let model = scratch("trace-model.snn");
    let out = run(&[
        "new",
        "--input",
        "4",
        "--arch",
        "dense:6,dense:2",
        "--out",
        model.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));

    // generate --trace-out: reports the runtime breakdown and writes a
    // JSONL trace whose profile tree shows both optimization stages.
    let events = scratch("trace.events");
    let trace = scratch("trace.jsonl");
    let out = run(&[
        "generate",
        model.to_str().unwrap(),
        "--preset",
        "fast",
        "--out",
        events.to_str().unwrap(),
        "--trace-out",
        trace.to_str().unwrap(),
    ]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    assert!(stdout.contains("runtimes: generation"), "got: {stdout}");
    assert!(stdout.contains("wrote trace"), "got: {stdout}");

    let out = run(&["profile", trace.to_str().unwrap()]);
    let tree = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    for node in ["TOTAL", "SELF", "generate", "stage1", "stage2"] {
        assert!(tree.contains(node), "profile tree missing {node}: {tree}");
    }

    // verify --trace-out: the fault campaign appears as its own span.
    let vtrace = scratch("verify-trace.jsonl");
    let out = run(&[
        "verify",
        model.to_str().unwrap(),
        events.to_str().unwrap(),
        "--trace-out",
        vtrace.to_str().unwrap(),
    ]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    assert!(stdout.contains("runtimes:"), "got: {stdout}");

    let out = run(&["profile", vtrace.to_str().unwrap()]);
    let tree = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success());
    assert!(tree.contains("faultsim.campaign"), "got: {tree}");

    for p in [&model, &events, &trace, &vtrace] {
        let _ = std::fs::remove_file(p);
    }
}

#[test]
fn profile_rejects_bad_input() {
    assert_clean_failure(&["profile"], "missing trace path");
    assert_clean_failure(&["profile", "/nonexistent/trace.jsonl"], "cannot open");

    let empty = scratch("empty-trace.jsonl");
    std::fs::write(&empty, "").unwrap();
    assert_clean_failure(&["profile", empty.to_str().unwrap()], "no spans");
    let _ = std::fs::remove_file(&empty);
}

#[test]
fn serve_watch_json_and_metrics_roundtrip() {
    use std::io::BufRead;
    let state = scratch("serve-state");
    let mut child = Command::new(env!("CARGO_BIN_EXE_snn-mtfc"))
        .args(["serve", "--state-dir", state.to_str().unwrap(), "--addr", "127.0.0.1:0"])
        .stdout(std::process::Stdio::piped())
        .spawn()
        .expect("server spawns");
    let mut lines = std::io::BufReader::new(child.stdout.take().unwrap()).lines();
    let first = lines.next().expect("listen line").expect("utf8");
    let addr = first
        .strip_prefix("listening on ")
        .and_then(|rest| rest.split_whitespace().next())
        .unwrap_or_else(|| panic!("unexpected listen line: {first}"))
        .to_string();

    // Watch in --json mode: every streamed event is the raw wire
    // envelope with a sequence number and emission timestamp.
    let out = run(&[
        "submit",
        "--synthetic",
        "4x6x2",
        "--preset",
        "fast",
        "--coverage",
        "--watch",
        "--json",
        "--addr",
        &addr,
    ]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let job_id = stdout
        .lines()
        .find_map(|l| l.strip_prefix("submitted job "))
        .expect("submit echoes the job id")
        .to_string();
    let events: Vec<&str> = stdout.lines().filter(|l| l.starts_with('{')).collect();
    assert!(!events.is_empty(), "no JSON event lines in: {stdout}");
    for line in &events {
        assert!(
            line.contains("\"seq\":")
                && line.contains("\"at_ms\":")
                && line.contains("\"payload\":"),
            "not a sequenced envelope: {line}"
        );
    }

    // Without --json the same stream renders as human one-liners.
    let out = run(&["watch", &job_id, "--addr", &addr]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    assert!(stdout.contains(&format!("job {job_id}: done")), "got: {stdout}");
    assert!(stdout.contains("timings:"), "record line reports the phase breakdown: {stdout}");

    // The metrics endpoint serves the registry in Prometheus text format
    // with non-zero job and generator series.
    let out = run(&["metrics", "--addr", &addr]);
    let metrics = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    assert!(
        metrics.contains("# TYPE snn_service_job_wall_seconds histogram"),
        "missing job wall-time histogram: {metrics}"
    );
    assert!(metrics.contains("snn_service_job_wall_seconds_count 1"), "got: {metrics}");
    for counter in ["snn_testgen_iterations_total", "snn_faultsim_faults_simulated_total"] {
        let value = metrics
            .lines()
            .find_map(|l| l.strip_prefix(&format!("{counter} ")))
            .unwrap_or_else(|| panic!("missing {counter}: {metrics}"));
        assert_ne!(value.trim(), "0", "{counter} must be non-zero after a coverage job");
    }
    // The cluster health series are pre-registered by the coordinator so
    // the dump exposes them even before any worker connects.
    assert!(
        metrics.contains("# TYPE snn_cluster_leases_in_flight gauge"),
        "missing in-flight lease gauge: {metrics}"
    );
    assert!(
        metrics.contains("# TYPE snn_cluster_heartbeat_gap_seconds histogram"),
        "missing heartbeat-gap histogram: {metrics}"
    );

    assert!(run(&["shutdown", "--addr", &addr]).status.success());
    child.wait().expect("server exits");
    let _ = std::fs::remove_dir_all(&state);
}

#[test]
fn service_commands_fail_cleanly_without_a_server() {
    // Port 1 on loopback is never listening.
    assert_clean_failure(&["status", "--addr", "127.0.0.1:1"], "cannot connect");
    assert_clean_failure(
        &["submit", "--synthetic", "4x6x2", "--addr", "127.0.0.1:1"],
        "cannot connect",
    );
    assert_clean_failure(&["shutdown", "--addr", "127.0.0.1:1"], "cannot connect");
    assert_clean_failure(&["cluster-status", "--addr", "127.0.0.1:1"], "cannot connect");
    assert_clean_failure(&["worker", "--addr", "127.0.0.1:1"], "worker failed");
}

#[test]
fn cluster_commands_drive_a_distributed_campaign() {
    use std::io::BufRead;
    let state = scratch("cluster-state");
    let mut server = Command::new(env!("CARGO_BIN_EXE_snn-mtfc"))
        .args([
            "serve",
            "--state-dir",
            state.to_str().unwrap(),
            "--addr",
            "127.0.0.1:0",
            "--expect-workers",
            "1",
            "--chunk-size",
            "128",
        ])
        .stdout(std::process::Stdio::piped())
        .spawn()
        .expect("server spawns");
    let mut lines = std::io::BufReader::new(server.stdout.take().unwrap()).lines();
    let first = lines.next().expect("listen line").expect("utf8");
    let addr = first
        .strip_prefix("listening on ")
        .and_then(|rest| rest.split_whitespace().next())
        .unwrap_or_else(|| panic!("unexpected listen line: {first}"))
        .to_string();

    // Before any worker arrives the cluster is empty.
    let out = run(&["cluster-status", "--addr", &addr]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    assert!(
        String::from_utf8_lossy(&out.stdout).contains("cluster: 0 worker(s)"),
        "got: {}",
        String::from_utf8_lossy(&out.stdout)
    );

    let worker = Command::new(env!("CARGO_BIN_EXE_snn-mtfc"))
        .args(["worker", "--addr", &addr, "--name", "cli-w0", "--threads", "1"])
        .stdout(std::process::Stdio::piped())
        .spawn()
        .expect("worker spawns");

    // The coverage job shards onto the worker and completes.
    let out = run(&[
        "submit",
        "--synthetic",
        "8x16x4",
        "--preset",
        "fast",
        "--coverage",
        "--watch",
        "--addr",
        &addr,
    ]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    assert!(stdout.contains("fault coverage"), "coverage missing from: {stdout}");

    // The status views agree: the worker exists, completed chunks, and
    // the JSON form carries the same accounting fields.
    let out = run(&["cluster-status", "--addr", &addr]);
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    assert!(text.contains("cluster: 1 worker(s)"), "got: {text}");
    assert!(text.contains("cli-w0"), "worker name missing: {text}");
    let out = run(&["cluster-status", "--addr", &addr, "--json"]);
    let json = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    assert!(json.contains("\"chunks_completed\":") && json.contains("\"cli-w0\""), "got: {json}");

    // Shutdown reaches the worker via its next lease request; it exits
    // zero with a final report.
    assert!(run(&["shutdown", "--addr", &addr]).status.success());
    server.wait().expect("server exits");
    let worker_out = worker.wait_with_output().expect("worker exits");
    assert!(worker_out.status.success(), "worker exited nonzero");
    let report = String::from_utf8_lossy(&worker_out.stdout);
    assert!(report.contains("worker cli-w0 done:"), "got: {report}");
    let _ = std::fs::remove_dir_all(&state);
}
