//! End-to-end integration tests across all workspace crates: the full
//! train → enumerate faults → generate test → verify coverage pipeline of
//! the paper, at a miniature scale so the suite stays fast.

#![allow(clippy::float_cmp)] // tests assert exact spike values

use rand::SeedableRng;
use snn_mtfc::datasets::{materialize, materialize_inputs, NmnistLike, SpikeDataset};
use snn_mtfc::faults::{
    criticality, CoverageReport, FaultSimConfig, FaultSimulator, FaultUniverse,
};
use snn_mtfc::model::train::{evaluate, TrainConfig, Trainer};
use snn_mtfc::model::{LifParams, Network, NetworkBuilder, RecordOptions};
use snn_mtfc::testgen::{activity_map, TestGenConfig, TestGenerator};
use snn_tensor::Shape;

fn tiny_trained_net(seed: u64) -> (Network, NmnistLike) {
    let ds = NmnistLike::new(12, 24, 300, seed);
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut net = NetworkBuilder::new_spatial(2, 12, 12, LifParams::default())
        .avg_pool(2)
        .dense(20)
        .dense(10)
        .build(&mut rng);
    let train = materialize(&ds, 0..60);
    let mut trainer = Trainer::new(&net, TrainConfig::default());
    for _ in 0..3 {
        for batch in train.chunks(10) {
            trainer.train_batch(&mut net, batch);
        }
    }
    (net, ds)
}

#[test]
fn full_pipeline_produces_verifiable_coverage() {
    let (net, ds) = tiny_trained_net(11);
    let universe = FaultUniverse::standard(&net);
    assert_eq!(universe.len(), 2 * net.neuron_count() + 3 * net.synapse_count());

    let mut rng = rand::rngs::StdRng::seed_from_u64(12);
    let test = TestGenerator::new(&net, TestGenConfig::fast()).generate(&mut rng);
    assert!(!test.chunks.is_empty());
    let stimulus = test.assembled();
    assert!(stimulus.is_binary(), "test stimulus must be a spike tensor");

    let sim = FaultSimulator::new(&net, FaultSimConfig::default());
    let campaign = sim.detect(&universe, universe.faults(), std::slice::from_ref(&stimulus));
    let fc = campaign.fault_coverage();
    assert!(fc > 0.3, "optimized test coverage {fc} suspiciously low");

    // Labels + coverage report compose.
    let inputs = materialize_inputs(&ds, 60..70);
    let labels = criticality::classify(
        &net,
        &universe,
        universe.faults(),
        &inputs,
        criticality::CriticalityConfig { threads: 0, max_samples: Some(4) },
    );
    let report = CoverageReport::compute(universe.faults(), &labels.critical, &campaign.per_fault);
    assert_eq!(report.overall().total, universe.len());
    assert_eq!(report.overall().detected, campaign.detected_count());
    // The method optimizes for fault detection: critical coverage should
    // not trail overall coverage by much.
    assert!(report.critical_neuron.fc() >= report.benign_neuron.fc() * 0.8);
}

#[test]
fn optimized_test_beats_a_single_dataset_sample_on_activation() {
    let (net, ds) = tiny_trained_net(21);
    let mut rng = rand::rngs::StdRng::seed_from_u64(22);
    let test = TestGenerator::new(&net, TestGenConfig::fast()).generate(&mut rng);
    let stimulus = test.assembled();

    let opt_map = activity_map(&net, &net.forward(&stimulus, RecordOptions::spikes_only()), 1.0);
    let (sample, _) = ds.sample(0);
    let sample_map = activity_map(&net, &net.forward(&sample, RecordOptions::spikes_only()), 1.0);
    // The paper's Fig. 8 claim: optimized ≫ random sample.
    assert!(
        opt_map.fraction() >= sample_map.fraction(),
        "optimized {:.2} < sample {:.2}",
        opt_map.fraction(),
        sample_map.fraction()
    );
}

#[test]
fn detection_is_consistent_between_campaign_and_manual_forward() {
    let (net, _) = tiny_trained_net(31);
    let universe = FaultUniverse::standard(&net);
    let mut rng = rand::rngs::StdRng::seed_from_u64(32);
    let stimulus = snn_tensor::init::bernoulli(&mut rng, Shape::d2(30, net.input_features()), 0.3);

    let sim = FaultSimulator::new(&net, FaultSimConfig::default());
    let campaign = sim.detect(&universe, universe.faults(), std::slice::from_ref(&stimulus));

    // Re-check 20 outcomes by brute force (clone + patch + full forward).
    let baseline = net.forward(&stimulus, RecordOptions::spikes_only());
    for fault in universe.faults().iter().step_by(universe.len() / 20) {
        let outcome = &campaign.per_fault[fault.id];
        let injection = snn_mtfc::faults::Injection::for_fault(&net, &universe, fault)
            .expect("universe faults are well-formed");
        let faulty_out = match injection {
            snn_mtfc::faults::Injection::Weight { at, value } => {
                let mut patched = net.clone();
                patched.set_weight(at, value);
                patched.forward(&stimulus, RecordOptions::spikes_only())
            }
            snn_mtfc::faults::Injection::Neuron(map) => {
                net.forward_faulty(&stimulus, RecordOptions::spikes_only(), &map)
            }
        };
        let distance = baseline.output_distance(&faulty_out);
        assert_eq!(
            outcome.detected,
            distance > 0.0,
            "fault {} campaign/manual disagreement",
            fault.id
        );
        assert!(
            (outcome.distance - distance).abs() < 1e-4,
            "fault {} distance mismatch: {} vs {distance}",
            fault.id,
            outcome.distance
        );
    }
}

#[test]
fn training_then_testing_keeps_functionality() {
    // Generating a test must not mutate the network (it is read-only).
    let (net, ds) = tiny_trained_net(41);
    let test_set = materialize(&ds, 60..90);
    let acc_before = evaluate(&net, &test_set);
    let mut rng = rand::rngs::StdRng::seed_from_u64(42);
    let _ = TestGenerator::new(&net, TestGenConfig::fast()).generate(&mut rng);
    let acc_after = evaluate(&net, &test_set);
    assert_eq!(acc_before, acc_after);
}

#[test]
fn eq7_eq8_assembly_matches_simulated_reset_behaviour() {
    // After each chunk the zero gap must fully reset all membranes: the
    // response to {I, 0, I} must contain the response to I twice.
    let (net, _) = tiny_trained_net(51);
    let mut rng = rand::rngs::StdRng::seed_from_u64(52);
    let mut cfg = TestGenConfig::fast();
    cfg.max_iterations = 2;
    let test = TestGenerator::new(&net, cfg).generate(&mut rng);
    if test.chunks.len() < 2 {
        return; // single-chunk run: nothing to check
    }
    let t0 = test.chunks[0].shape().dim(0);
    let assembled = test.assembled();
    let full_trace = net.forward(&assembled, RecordOptions::spikes_only());
    let chunk_trace = net.forward(&test.chunks[0], RecordOptions::spikes_only());

    // First T0 ticks of the assembled response equal the chunk response.
    let full_out = full_trace.output().as_slice();
    let chunk_out = chunk_trace.output().as_slice();
    let classes = net.output_features();
    assert_eq!(&full_out[..t0 * classes], chunk_out);
}
